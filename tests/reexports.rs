//! Smoke test for the workspace-level re-export facade (`tkdc-repro`):
//! every subsystem must be reachable through one `use` of this crate, the
//! way the README's downstream-user story assumes.

use tkdc_repro::{baselines, common, data, index, kernel, linalg, tkdc};

#[test]
fn facade_reaches_every_subsystem() {
    // common
    let mut rng = common::Rng::seed_from(1);
    let mut m = common::Matrix::with_cols(2);
    for _ in 0..300 {
        m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
            .unwrap();
    }
    // kernel
    let h = kernel::scotts_rule(&m, 1.0).unwrap();
    assert_eq!(h.len(), 2);
    // linalg
    let pca = linalg::Pca::fit(&m, 1).unwrap();
    assert_eq!(pca.n_components(), 1);
    // index
    let tree = index::KdTree::build(&m, 16, index::SplitRule::TrimmedMidpoint).unwrap();
    assert_eq!(tree.len(), 300);
    // core
    let clf = tkdc::Classifier::fit(&m, &tkdc::Params::default()).unwrap();
    assert!(clf.threshold() > 0.0);
    // baselines
    use baselines::DensityEstimator;
    let naive = baselines::NaiveKde::fit(&m, kernel::KernelKind::Gaussian, 1.0).unwrap();
    assert!(naive.density(&[0.0, 0.0]).unwrap() > 0.0);
    // data
    let g = data::gauss::generate(10, 2, 3);
    assert_eq!(g.rows(), 10);
}
