//! Integration test of the §5 related-work comparison: every detector
//! (tKDC, kNN distance, LOF, DBSCAN, one-class SVM) must find a planted
//! far outlier, and the statistical-interpretability distinction the
//! paper draws must be visible in the outputs.

use tkdc::{Classifier, Label, Params};
use tkdc_alternatives::{
    dbscan, DbscanLabel, DbscanParams, KnnOutlierModel, LofModel, OneClassSvm, SvmParams,
};
use tkdc_common::{Matrix, Rng};

/// A two-cluster body plus one unmistakable outlier (row index returned).
fn planted_task(seed: u64) -> (Matrix, usize) {
    let mut rng = Rng::seed_from(seed);
    let mut m = Matrix::with_cols(2);
    for _ in 0..400 {
        m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
            .unwrap();
    }
    for _ in 0..400 {
        m.push_row(&[rng.normal(7.0, 1.0), rng.normal(7.0, 1.0)])
            .unwrap();
    }
    m.push_row(&[20.0, -10.0]).unwrap();
    (m, 800)
}

#[test]
fn every_detector_flags_the_planted_outlier() {
    let (data, idx) = planted_task(1);
    let q = data.row(idx).to_vec();

    // tKDC.
    let clf = Classifier::fit(&data, &Params::default().with_seed(2)).unwrap();
    assert_eq!(clf.classify(&q).unwrap(), Label::Low, "tkdc");

    // kNN distance: the planted point has the top score.
    let knn = KnnOutlierModel::fit(&data, 10).unwrap();
    let t = knn.threshold_for_rate(0.01).unwrap();
    assert!(knn.score(&q).unwrap() > t, "knn");

    // LOF.
    let lof = LofModel::fit(&data, 10).unwrap();
    assert!(lof.score(&q).unwrap() > 2.0, "lof");
    assert!(lof.score(&[0.0, 0.0]).unwrap() < 1.5, "lof inlier");

    // DBSCAN: outlier is noise, clusters found.
    let (labels, clusters) = dbscan(
        &data,
        &DbscanParams {
            eps: 0.3,
            min_pts: 5,
        },
    )
    .unwrap();
    assert!(clusters >= 2, "dbscan clusters {clusters}");
    assert_eq!(labels[idx], DbscanLabel::Noise, "dbscan");

    // One-class SVM.
    let svm = OneClassSvm::fit(&data, &SvmParams::default()).unwrap();
    assert!(!svm.is_inlier(&q).unwrap(), "ocsvm");
    assert!(svm.is_inlier(&[0.0, 0.0]).unwrap(), "ocsvm inlier");
}

#[test]
fn only_tkdc_produces_normalized_densities() {
    // The interpretability claim: tKDC's threshold is a quantile of a
    // normalized density (values integrate to 1, so they live on a known
    // scale), while the alternatives emit scale-free scores.
    let (data, _) = planted_task(3);
    let clf = Classifier::fit(&data, &Params::default().with_seed(5)).unwrap();
    // Numerically integrate the classifier's exact density over a wide
    // box: it must approach 1 (a probability density).
    let (mins, maxs) = data.column_bounds();
    let steps = 60;
    let dx = (maxs[0] - mins[0] + 8.0) / steps as f64;
    let dy = (maxs[1] - mins[1] + 8.0) / steps as f64;
    let mut integral = 0.0;
    for i in 0..steps {
        let x = mins[0] - 4.0 + (i as f64 + 0.5) * dx;
        for j in 0..steps {
            let y = mins[1] - 4.0 + (j as f64 + 0.5) * dy;
            integral += clf.exact_density(&[x, y]).unwrap() * dx * dy;
        }
    }
    assert!(
        (integral - 1.0).abs() < 0.02,
        "tKDC densities must integrate to 1, got {integral}"
    );

    // LOF scores sit on a relative scale with no such property: the
    // typical inlier value is ≈1 regardless of the data's actual density.
    let lof = LofModel::fit(&data, 10).unwrap();
    let typical = lof.score(&[0.0, 0.0]).unwrap();
    assert!((0.5..2.0).contains(&typical));
    // Scaling all coordinates by 1000 leaves LOF unchanged (scores carry
    // no absolute density information), while true densities shrink by
    // 1000² — the distinction §5 draws.
    let mut scaled = Matrix::with_cols(2);
    for row in data.iter_rows() {
        scaled
            .push_row(&[row[0] * 1000.0, row[1] * 1000.0])
            .unwrap();
    }
    let lof_scaled = LofModel::fit(&scaled, 10).unwrap();
    let typical_scaled = lof_scaled.score(&[0.0, 0.0]).unwrap();
    assert!(
        (typical - typical_scaled).abs() < 0.3,
        "LOF is scale-free: {typical} vs {typical_scaled}"
    );
    let clf_scaled = Classifier::fit(&scaled, &Params::default().with_seed(5)).unwrap();
    assert!(
        clf_scaled.threshold() < clf.threshold() / 1e4,
        "tKDC thresholds track absolute density: {} vs {}",
        clf_scaled.threshold(),
        clf.threshold()
    );
}

#[test]
fn detectors_agree_on_rankings() {
    // Detectors disagree on absolute values but should broadly agree on
    // *who* the most anomalous points are.
    let (data, idx) = planted_task(7);
    let knn = KnnOutlierModel::fit(&data, 10).unwrap();
    let lof = LofModel::fit(&data, 10).unwrap();
    let clf = Classifier::fit(&data, &Params::default().with_seed(9)).unwrap();

    let q = data.row(idx);
    let knn_rank = data
        .iter_rows()
        .filter(|r| knn.score(r).unwrap() > knn.score(q).unwrap())
        .count();
    let lof_rank = data
        .iter_rows()
        .filter(|r| lof.score(r).unwrap() > lof.score(q).unwrap())
        .count();
    assert!(knn_rank == 0, "planted point must top the kNN ranking");
    assert!(lof_rank <= 5, "planted point near the top of LOF ranking");
    let b = {
        let mut scratch = tkdc::QueryScratch::new();
        clf.bound_density_with(q, &mut scratch).unwrap()
    };
    assert!(
        b.upper < clf.threshold(),
        "tKDC certifies the density is sub-threshold"
    );
}
