//! NaN/±inf robustness of the quantile machinery.
//!
//! The L1 lint (`partial_cmp().unwrap()` bans) exists because a single
//! poisoned density used to be able to panic the threshold bootstrap
//! mid-flight. These properties pin the contract the sweep established:
//! order statistics and threshold estimation either return an error or a
//! result under IEEE 754 total order — they never panic, whatever mix of
//! NaN and ±inf the input carries.

use proptest::prelude::*;
use tkdc::threshold::bound_threshold;
use tkdc::{BootstrapParams, Params};
use tkdc_common::{order, Matrix};

/// Bitwise membership check, so NaN and -0.0 count as themselves.
fn is_member(xs: &[f64], v: f64) -> bool {
    xs.iter().any(|x| x.to_bits() == v.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Quickselect must terminate and hand back an element of the input
    /// for *any* bit pattern, NaN and infinities included.
    #[test]
    fn quickselect_total_on_poisoned_input(
        xs in proptest::collection::vec(any::<f64>(), 1..64),
        k_seed in any::<u64>(),
    ) {
        let k = (k_seed as usize) % xs.len();
        let mut work = xs.clone();
        let v = order::quickselect(&mut work, k);
        prop_assert!(is_member(&xs, v), "quickselect returned {v} not in input");
    }

    /// On finite input quickselect agrees with a full total_cmp sort.
    #[test]
    fn quickselect_matches_sort_on_finite_input(
        xs in proptest::collection::vec(-1e12f64..1e12, 1..64),
        k_seed in any::<u64>(),
    ) {
        let k = (k_seed as usize) % xs.len();
        let mut work = xs.clone();
        let v = order::quickselect(&mut work, k);
        let mut sorted = xs;
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(v.to_bits(), sorted[k].to_bits());
    }

    /// The p-quantile either errors (empty input / bad p) or returns a
    /// member of the sample — no panic on poisoned data.
    #[test]
    fn quantile_never_panics_on_poisoned_input(
        xs in proptest::collection::vec(any::<f64>(), 0..64),
        p in 0.0f64..=1.0,
    ) {
        match order::quantile(&xs, p) {
            Ok(v) => prop_assert!(is_member(&xs, v)),
            Err(_) => prop_assert!(xs.is_empty()),
        }
    }

    /// The order-statistic CI ranks the bootstrap indexes into its sorted
    /// density sample must always be in bounds: `l <= u < s`. An
    /// out-of-range rank would turn threshold estimation into an
    /// index-out-of-bounds panic.
    #[test]
    fn quantile_ci_ranks_stay_in_bounds(
        s in 1usize..500,
        p in 0.0f64..=1.0,
        delta in 0.0001f64..0.9999,
    ) {
        let (l, u) = order::quantile_ci_ranks(s, p, delta).unwrap();
        prop_assert!(l <= u, "l={l} > u={u}");
        prop_assert!(u < s, "u={u} out of bounds for s={s}");
    }

    /// Threshold estimation over data containing NaN/±inf coordinates
    /// must come back with `Ok` or `Err`, never unwind. (Whether the
    /// bounds are *useful* on poisoned data is a different question —
    /// soundness of control flow is the property here.)
    #[test]
    fn bound_threshold_never_panics_on_poisoned_data(
        mut values in proptest::collection::vec(any::<f64>(), 10..60),
        d in 1usize..=2,
        seed in any::<u64>(),
    ) {
        let n = values.len() / d;
        values.truncate(n * d);
        let data = Matrix::from_vec(values, n, d).unwrap();
        let params = Params {
            seed,
            bootstrap: BootstrapParams {
                r0: 4,
                s0: 8,
                max_retries: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        // Ok or Err are both acceptable; reaching this line is the test.
        let _ = bound_threshold(&data, &params);
    }
}
