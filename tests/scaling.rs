//! Empirical validation of the paper's runtime analysis (§3.8 and
//! Appendix A): per-query work grows sublinearly in the training size —
//! `O(n^{(d-1)/d})` for `d > 1` and `O(log n)` for `d = 1` — measured in
//! kernel evaluations (machine-independent, unlike wall clock).

use tkdc::{Classifier, Params, QueryScratch};
use tkdc_common::{Matrix, Rng};
use tkdc_data::gauss;

/// Mean kernel evaluations per query on a gauss dataset of size n.
fn kernels_per_query(n: usize, d: usize, seed: u64) -> f64 {
    let data = gauss::generate(n, d, seed);
    let clf = Classifier::fit(&data, &Params::default().with_seed(seed)).unwrap();
    let mut rng = Rng::seed_from(seed ^ 0xAB);
    let queries = data.sample_rows(400.min(n), &mut rng);
    let mut scratch = QueryScratch::new();
    for q in queries.iter_rows() {
        clf.classify_with(q, &mut scratch).unwrap();
    }
    scratch.stats.kernels_per_query()
}

#[test]
fn work_grows_sublinearly_in_n_2d() {
    // Quadrupling n should multiply per-query kernel work by far less
    // than 4 (theory for d=2: at most 2).
    let small = kernels_per_query(5_000, 2, 3);
    let large = kernels_per_query(20_000, 2, 3);
    let ratio = large / small.max(1.0);
    assert!(
        ratio < 3.0,
        "4x data should not give ~4x work: {small} -> {large} (ratio {ratio})"
    );
}

#[test]
fn one_dimensional_work_is_nearly_flat() {
    // d = 1 is O(log n): per-query work should barely move across 16x n.
    let small = kernels_per_query(4_000, 1, 5);
    let large = kernels_per_query(64_000, 1, 5);
    let ratio = large / small.max(1.0);
    assert!(
        ratio < 2.0,
        "16x data in 1-d should stay near-flat: {small} -> {large} (ratio {ratio})"
    );
}

#[test]
fn work_is_small_fraction_of_n() {
    // The headline claim: classification touches a vanishing fraction of
    // the dataset.
    let n = 30_000;
    let kpq = kernels_per_query(n, 2, 7);
    assert!(
        kpq < n as f64 / 50.0,
        "per-query kernels {kpq} should be <2% of n={n}"
    );
}

#[test]
fn higher_dimensions_do_more_work() {
    // The (d-1)/d exponent: more dimensions ⇒ weaker pruning.
    let d2 = kernels_per_query(8_000, 2, 11);
    let d8 = kernels_per_query(8_000, 8, 11);
    assert!(
        d8 > d2,
        "8-d should require more kernel work than 2-d: {d8} vs {d2}"
    );
}

#[test]
fn near_query_fraction_shrinks_with_n() {
    // Lemma 1 / Appendix A: the probability that a query is "near" (needs
    // leaf-level kernel evaluations because the index bounds cannot
    // classify it) is proportional to n^{-1/d}. Far queries terminate on
    // a threshold rule; near queries end in tolerance/exhaustion.
    // p = 0.25 puts a substantial fraction of the data near the
    // threshold so the near/far split is measurable at laptop n.
    let near_fraction = |n: usize| -> f64 {
        let data = gauss::generate(n, 2, 21);
        let clf = Classifier::fit(&data, &Params::default().with_p(0.25).with_seed(21)).unwrap();
        let mut rng = Rng::seed_from(0xCAFE);
        let queries = data.sample_rows(1500.min(n), &mut rng);
        let mut scratch = QueryScratch::new();
        for q in queries.iter_rows() {
            clf.classify_with(q, &mut scratch).unwrap();
        }
        let s = scratch.stats;
        (s.tolerance + s.exhausted) as f64 / s.queries as f64
    };
    let small = near_fraction(4_000);
    let large = near_fraction(32_000);
    // Theory at d=2: ratio 8^{-1/2} ≈ 0.35; allow generous noise slack
    // but require a real decrease.
    assert!(
        large < small * 0.9,
        "near fraction should shrink with n: {small} -> {large}"
    );
}

#[test]
fn single_point_and_tiny_datasets() {
    // Degenerate sizes must train and classify without panicking.
    for n in [1usize, 2, 5, 20] {
        let data = gauss::generate(n, 2, 13);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let _ = clf.classify(&[0.0, 0.0]).unwrap();
        let _ = clf.classify(&[100.0, 100.0]).unwrap();
    }
}

#[test]
fn constant_column_dataset() {
    // A constant column (zero variance) exercises the bandwidth
    // fallback; everything must still work.
    let mut rng = Rng::seed_from(17);
    let mut data = Matrix::with_cols(3);
    for _ in 0..1000 {
        data.push_row(&[rng.normal(0.0, 1.0), 42.0, rng.normal(0.0, 2.0)])
            .unwrap();
    }
    let clf = Classifier::fit(&data, &Params::default()).unwrap();
    assert_eq!(clf.classify(&[0.0, 42.0, 0.0]).unwrap(), tkdc::Label::High);
    assert_eq!(clf.classify(&[0.0, 42.0, 50.0]).unwrap(), tkdc::Label::Low);
}

#[test]
fn duplicate_heavy_dataset() {
    // Many exact duplicates stress tree splitting and the grid cache.
    let mut rng = Rng::seed_from(19);
    let mut data = Matrix::with_cols(2);
    for _ in 0..500 {
        data.push_row(&[1.0, 1.0]).unwrap();
    }
    for _ in 0..500 {
        data.push_row(&[rng.normal(0.0, 3.0), rng.normal(0.0, 3.0)])
            .unwrap();
    }
    let clf = Classifier::fit(&data, &Params::default()).unwrap();
    // The duplicated point is by far the densest spot.
    assert_eq!(clf.classify(&[1.0, 1.0]).unwrap(), tkdc::Label::High);
    assert_eq!(clf.classify(&[30.0, -30.0]).unwrap(), tkdc::Label::Low);
}
