//! Property-based tests over the core invariants:
//!
//! * kernel monotonicity and positivity for arbitrary bandwidths,
//! * k-d tree partition correctness for arbitrary point clouds,
//! * density bounds sandwiching the exact density for arbitrary queries,
//! * classification agreeing with the exact oracle outside the ε-band,
//! * batch statistics decomposing exactly: any split of a batch, run
//!   under any `ExecPolicy`, merges to the whole batch's `QueryStats`,
//! * quantile estimates matching full sorts.

use tkdc_sync::OnceLock;

use proptest::prelude::*;
use tkdc::bound::DensityBounder;
use tkdc::{Classifier, ExecPolicy, Optimizations, Params, QueryScratch};
use tkdc_common::order;
use tkdc_common::Matrix;
use tkdc_index::{KdTree, SplitRule};
use tkdc_kernel::{Kernel, KernelKind};

/// Strategy: a small point cloud in up to 3 dimensions.
fn cloud(max_n: usize) -> impl Strategy<Value = (usize, Vec<f64>)> {
    (1usize..=3).prop_flat_map(move |d| {
        proptest::collection::vec(-50.0f64..50.0, d * 5..=d * max_n).prop_map(move |mut v| {
            let n = v.len() / d;
            v.truncate(n * d);
            (d, v)
        })
    })
}

fn naive_density(data: &Matrix, kernel: &Kernel, x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for row in data.iter_rows() {
        acc += kernel.eval_pair(x, row);
    }
    acc / data.rows() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_positive_and_monotone(
        h in proptest::collection::vec(0.01f64..10.0, 1..4),
        u1 in 0.0f64..100.0,
        u2 in 0.0f64..100.0,
    ) {
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            let k = Kernel::new(kind, h.clone()).unwrap();
            let (lo, hi) = if u1 < u2 { (u1, u2) } else { (u2, u1) };
            prop_assert!(k.eval_scaled_sq(lo) >= k.eval_scaled_sq(hi));
            prop_assert!(k.eval_scaled_sq(hi) >= 0.0);
            // Bit-identical: max_value is defined as the kernel at zero.
            prop_assert!(k.eval_scaled_sq(0.0).to_bits() == k.max_value().to_bits());
        }
    }

    #[test]
    fn kdtree_partitions_all_points((d, flat) in cloud(40)) {
        let n = flat.len() / d;
        let data = Matrix::from_vec(flat, n, d).unwrap();
        for rule in [SplitRule::TrimmedMidpoint, SplitRule::Median] {
            let tree = KdTree::build(&data, 4, rule).unwrap();
            prop_assert_eq!(tree.len(), n);
            // Sum of per-coordinate values is preserved (multiset check).
            let orig: f64 = data.as_slice().iter().sum();
            let reordered: f64 = tree
                .node_points(tree.root())
                .flat_map(|r| r.iter().copied())
                .sum();
            prop_assert!((orig - reordered).abs() < 1e-6 * orig.abs().max(1.0));
            // Every node's points stay inside its bounding box, counts sum.
            let mut stack = vec![tree.root()];
            while let Some(id) = stack.pop() {
                let lo = tree.box_lo(id);
                let hi = tree.box_hi(id);
                for p in tree.node_points(id) {
                    for c in 0..d {
                        prop_assert!(p[c] >= lo[c] && p[c] <= hi[c]);
                    }
                }
                if let Some((l, r)) = tree.children(id) {
                    prop_assert_eq!(tree.count(l) + tree.count(r), tree.count(id));
                    stack.push(l);
                    stack.push(r);
                }
            }
        }
    }

    #[test]
    fn bounds_sandwich_exact_density(
        (d, flat) in cloud(30),
        qseed in proptest::collection::vec(-60.0f64..60.0, 3),
        t_exp in -6.0f64..0.0,
    ) {
        let n = flat.len() / d;
        let data = Matrix::from_vec(flat, n, d).unwrap();
        let tree = KdTree::build(&data, 4, SplitRule::TrimmedMidpoint).unwrap();
        let h = vec![1.5; d];
        let kernel = Kernel::new(KernelKind::Gaussian, h).unwrap();
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let mut scratch = QueryScratch::new();
        let q = &qseed[..d];
        let t = 10f64.powf(t_exp);
        let b = bounder.bound_density(q, t, t, &mut scratch);
        let exact = naive_density(&data, &kernel, q);
        // Allow small floating drift relative to the kernel scale.
        let slack = 1e-9 * kernel.max_value();
        prop_assert!(b.lower <= exact + slack, "lower {} > exact {}", b.lower, exact);
        prop_assert!(b.upper >= exact - slack, "upper {} < exact {}", b.upper, exact);
    }

    #[test]
    fn classification_agrees_with_oracle_outside_band(
        (d, flat) in cloud(30),
        qseed in proptest::collection::vec(-60.0f64..60.0, 3),
    ) {
        let n = flat.len() / d;
        let data = Matrix::from_vec(flat, n, d).unwrap();
        let tree = KdTree::build(&data, 4, SplitRule::TrimmedMidpoint).unwrap();
        let kernel = Kernel::new(KernelKind::Gaussian, vec![2.0; d]).unwrap();
        let eps = 0.01;
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), eps);
        let mut scratch = QueryScratch::new();
        let q = &qseed[..d];
        let exact = naive_density(&data, &kernel, q);
        // The running add/subtract bound accumulation drifts on the order
        // of f64 epsilon relative to K(0) (the paper's bounds are likewise
        // "exact up to floating point precision"), so the guarantee only
        // holds for thresholds above that noise floor.
        let drift_floor = 1e-9 * kernel.max_value();
        // Pick a threshold near the exact density to stress the rules,
        // plus thresholds decisively above and below.
        for t in [exact * 0.5, exact * 2.0, exact.max(1e-300)] {
            if t < drift_floor {
                continue;
            }
            let b = bounder.bound_density(q, t, t, &mut scratch);
            let high = b.midpoint() > t;
            if exact > t * (1.0 + eps) {
                prop_assert!(high, "exact {} > t(1+ε) {} but LOW", exact, t);
            }
            if exact < t * (1.0 - eps) {
                prop_assert!(!high, "exact {} < t(1−ε) {} but HIGH", exact, t);
            }
        }
    }

    /// A weighted density with integer weights is the same measure as the
    /// unweighted density over the dataset with each point duplicated
    /// `w_i` times — the exhausted (exact) traversal over the weighted
    /// tree must match the naive duplicated-point sum bit-tolerantly.
    #[test]
    fn weighted_density_equals_duplicated_points(
        (d, flat) in cloud(20),
        wseed in proptest::collection::vec(1u32..=4, 60),
        qseed in proptest::collection::vec(-60.0f64..60.0, 3),
    ) {
        let n = flat.len() / d;
        let data = Matrix::from_vec(flat, n, d).unwrap();
        let weights: Vec<f64> = (0..n).map(|i| f64::from(wseed[i % wseed.len()])).collect();
        let mut duplicated = Matrix::with_cols(d);
        for i in 0..n {
            for _ in 0..wseed[i % wseed.len()] {
                duplicated.push_row(data.row(i)).unwrap();
            }
        }
        let tree = KdTree::build_weighted(&data, &weights, 4, SplitRule::TrimmedMidpoint).unwrap();
        let kernel = Kernel::new(KernelKind::Gaussian, vec![1.5; d]).unwrap();
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let mut scratch = QueryScratch::new();
        let q = &qseed[..d];
        // t_lo = 0 and t_hi = ∞ disable every pruning rule, so the
        // traversal runs to exhaustion and the bounds collapse to the
        // exact weighted density.
        let b = bounder.bound_density(q, 0.0, f64::INFINITY, &mut scratch);
        let exact = naive_density(&duplicated, &kernel, q);
        let slack = 1e-9 * kernel.max_value();
        prop_assert!(
            (b.midpoint() - exact).abs() <= slack,
            "weighted {} vs duplicated {}", b.midpoint(), exact
        );
        prop_assert!(b.upper - b.lower <= slack, "traversal did not exhaust");
    }

    /// Coreset construction preserves total mass: compacting `n`
    /// unit-weight points yields weights summing to `n` (up to rounding),
    /// under both compactors.
    #[test]
    fn coreset_weights_sum_to_input_count(
        (d, flat) in cloud(40),
        eps in 0.05f64..0.5,
        seed in any::<u64>(),
    ) {
        use tkdc_coreset::{CompactorKind, CoresetConfig, StreamingCoreset};
        let n = flat.len() / d;
        let data = Matrix::from_vec(flat, n, d).unwrap();
        for kind in [CompactorKind::Grid, CompactorKind::Sample] {
            let cfg = CoresetConfig { eps, kind, seed, chunk_capacity: None };
            let mut sc = StreamingCoreset::new(d, cfg).unwrap();
            sc.push_matrix(&data).unwrap();
            let cs = sc.finish().unwrap();
            let total: f64 = cs.weights.iter().sum();
            prop_assert!(
                (total - n as f64).abs() <= 1e-9 * n as f64,
                "{:?}: weights sum {} vs {} points in", kind, total, n
            );
            prop_assert!(cs.weights.iter().all(|&w| w > 0.0 && w.is_finite()));
            prop_assert_eq!(cs.stats.points_in, n as u64);
        }
    }

    #[test]
    fn quantile_matches_full_sort(
        mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        p in 0.0f64..=1.0,
    ) {
        let q = order::quantile(&xs, p).unwrap();
        xs.sort_by(f64::total_cmp);
        let rank = ((xs.len() as f64 * p).ceil() as usize).clamp(1, xs.len());
        // Bit-identical: quickselect returns an element of the input.
        prop_assert_eq!(q.to_bits(), xs[rank - 1].to_bits());
    }

    #[test]
    fn radius_query_equals_linear_scan(
        (d, flat) in cloud(30),
        qseed in proptest::collection::vec(-60.0f64..60.0, 3),
        radius in 0.1f64..30.0,
    ) {
        let n = flat.len() / d;
        let data = Matrix::from_vec(flat, n, d).unwrap();
        let tree = KdTree::build(&data, 4, SplitRule::Median).unwrap();
        let inv_h = vec![1.0; d];
        let q = &qseed[..d];
        let mut count = 0usize;
        tree.for_each_in_scaled_radius(q, &inv_h, radius, |_| count += 1);
        let expected = data
            .iter_rows()
            .filter(|row| {
                let mut acc = 0.0;
                for c in 0..d {
                    let z = q[c] - row[c];
                    acc += z * z;
                }
                acc <= radius * radius
            })
            .count();
        prop_assert_eq!(count, expected);
    }
}

/// One fitted classifier + query pool shared by the stats-merge
/// property (fitting per proptest case would dominate the runtime).
fn stats_fixture() -> &'static (Classifier, Matrix) {
    static FIXTURE: OnceLock<(Classifier, Matrix)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = tkdc_common::Rng::seed_from(77);
        let mut data = Matrix::with_cols(2);
        for _ in 0..1500 {
            data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        let clf = Classifier::fit(&data, &Params::default().with_seed(77)).unwrap();
        let mut queries = Matrix::with_cols(2);
        for _ in 0..90 {
            queries
                .push_row(&[rng.normal(0.0, 2.0), rng.normal(0.0, 2.0)])
                .unwrap();
        }
        (clf, queries)
    })
}

/// One fitted classifier per backend plus a shared query pool for the
/// backend-equivalence and bound-coverage properties (fitting per
/// proptest case would dominate the runtime). δ is widened to 0.1 so
/// the probabilistic backends' advertised miss rate is large enough to
/// measure over a 150-query pool.
fn backend_fixture() -> &'static (Vec<Classifier>, Matrix, Matrix) {
    static FIXTURE: OnceLock<(Vec<Classifier>, Matrix, Matrix)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        use tkdc::{BackendSpec, HbeParams, RffParams};
        let mut rng = tkdc_common::Rng::seed_from(99);
        let mut data = Matrix::with_cols(2);
        for _ in 0..1200 {
            data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        let base = Params::default().with_seed(99).with_delta(0.1);
        let clfs = [
            BackendSpec::Tree,
            BackendSpec::Hbe(HbeParams::default()),
            BackendSpec::Rff(RffParams::default()),
        ]
        .into_iter()
        .map(|spec| Classifier::fit(&data, &base.clone().with_backend(spec)).unwrap())
        .collect();
        let mut queries = Matrix::with_cols(2);
        for _ in 0..150 {
            queries
                .push_row(&[rng.normal(0.0, 1.5), rng.normal(0.0, 1.5)])
                .unwrap();
        }
        (clfs, data, queries)
    })
}

/// The probabilistic backends' interval must cover the exact density at
/// (roughly) the advertised `1 − δ` rate. Everything is seeded, so the
/// observed miss rate is deterministic; the cap leaves slack for the
/// small-sample normal approximation behind the interval width.
#[test]
fn estimated_backend_bounds_cover_exact_density() {
    let (clfs, data, queries) = backend_fixture();
    for clf in &clfs[1..] {
        let (bounds, _) = clf
            .bound_density_batch_with(queries, ExecPolicy::Serial)
            .unwrap();
        let mut misses = 0usize;
        for (i, b) in bounds.iter().enumerate() {
            assert!(
                b.lower <= b.upper,
                "{}: inverted interval",
                clf.backend_name()
            );
            let exact = naive_density(data, clf.kernel(), queries.row(i));
            let slack = 1e-12 * clf.kernel().max_value();
            if exact < b.lower - slack || exact > b.upper + slack {
                misses += 1;
            }
        }
        let miss_rate = misses as f64 / bounds.len() as f64;
        assert!(
            miss_rate <= 0.30,
            "{}: exact density escaped the 1 − δ interval on {:.1}% of queries (δ = 0.1)",
            clf.backend_name(),
            100.0 * miss_rate
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tree backend reached through the `DensityBackend` trait must
    /// stay schedule-invariant: labels and merged stats are identical
    /// for every thread count, bit for bit.
    #[test]
    fn tree_backend_via_trait_thread_invariant(threads in 1usize..=8) {
        let (clfs, _, queries) = backend_fixture();
        let tree = &clfs[0];
        prop_assert_eq!(tree.backend_name(), "tree");
        let (serial_labels, serial_stats) = tree
            .classify_batch_with(queries, ExecPolicy::Serial)
            .unwrap();
        let (labels, stats) = tree
            .classify_batch_with(queries, ExecPolicy::Parallel { threads: Some(threads) })
            .unwrap();
        prop_assert_eq!(&labels, &serial_labels, "labels diverged at {} threads", threads);
        prop_assert_eq!(stats, serial_stats, "stats diverged at {} threads", threads);
    }

    /// Same property for the probabilistic backends: the per-query seed
    /// derivation makes their estimates schedule-invariant too.
    #[test]
    fn estimated_backends_thread_invariant(threads in 2usize..=8) {
        let (clfs, _, queries) = backend_fixture();
        for clf in &clfs[1..] {
            let (serial_labels, serial_stats) = clf
                .classify_batch_with(queries, ExecPolicy::Serial)
                .unwrap();
            let (labels, stats) = clf
                .classify_batch_with(queries, ExecPolicy::Parallel { threads: Some(threads) })
                .unwrap();
            prop_assert_eq!(&labels, &serial_labels, "{}: labels diverged", clf.backend_name());
            prop_assert_eq!(stats, serial_stats, "{}: stats diverged", clf.backend_name());
        }
    }

    /// `QueryStats` must be an exact decomposition: splitting a batch at
    /// any point and merging the two halves' stats reproduces the whole
    /// batch's stats, under every execution policy — including across
    /// policies, since per-query work is schedule-independent.
    #[test]
    fn split_batch_stats_merge_to_whole(
        split_frac in 0.0f64..1.0,
        threads in 1usize..5,
    ) {
        let (clf, queries) = stats_fixture();
        let n = queries.rows();
        let split = ((split_frac * n as f64) as usize).min(n); // CAST: in [0, n]
        let mut first = Matrix::with_cols(queries.cols());
        let mut rest = Matrix::with_cols(queries.cols());
        for i in 0..n {
            let target = if i < split { &mut first } else { &mut rest };
            target.push_row(queries.row(i)).unwrap();
        }
        let (_, whole) = clf
            .classify_batch_with(queries, ExecPolicy::Serial)
            .unwrap();
        for policy in [
            ExecPolicy::Serial,
            ExecPolicy::Parallel { threads: Some(threads) },
            ExecPolicy::StaticChunked { threads: Some(threads) },
        ] {
            let (_, a) = clf.classify_batch_with(&first, policy).unwrap();
            let (_, b) = clf.classify_batch_with(&rest, policy).unwrap();
            let mut merged = a;
            merged.merge(&b);
            prop_assert_eq!(merged, whole, "policy {:?}, split {}", policy, split);
        }
    }
}
