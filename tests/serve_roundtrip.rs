//! End-to-end tests for the `tkdc-serve` daemon: an in-process server
//! on an ephemeral port, driven through the client library.
//!
//! Covers the full request surface (Ping/Classify/Density/Stats/
//! Shutdown), label equivalence with the local batch engine, and the
//! failure paths — over-capacity rejection, idle-timeout disconnect,
//! malformed frames — all of which must fail with protocol errors
//! rather than hangs.

use std::net::TcpStream;
use std::time::Duration;

use tkdc::{Classifier, ExecPolicy, Params};
use tkdc_common::error::Error;
use tkdc_common::{Matrix, Rng};
use tkdc_serve::protocol::{read_response, write_request, Request};
use tkdc_serve::{Client, ErrorCode, Response, ServeConfig, Server};

/// Small 2-d gaussian blob with a few planted outliers.
fn training_data(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let mut m = Matrix::with_cols(2);
    for _ in 0..n {
        m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
            .unwrap();
    }
    m.push_row(&[25.0, 25.0]).unwrap();
    m
}

fn fitted(seed: u64) -> Classifier {
    let data = training_data(600, seed);
    Classifier::fit(&data, &Params::default().with_seed(seed)).unwrap()
}

fn query_set(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let mut m = Matrix::with_cols(2);
    for _ in 0..n {
        m.push_row(&[rng.normal(0.0, 1.5), rng.normal(0.0, 1.5)])
            .unwrap();
    }
    m
}

fn spawn_server(config: ServeConfig, clf: Classifier) -> (String, tkdc_serve::ServerHandle) {
    let server = Server::bind(config, clf).unwrap();
    let addr = server.local_addr().unwrap().to_string();
    (addr, server.spawn())
}

#[test]
fn full_round_trip_matches_local_engine() {
    let clf = fitted(7);
    let queries = query_set(64, 11);
    let (local_labels, _) = clf
        .classify_batch_with(&queries, ExecPolicy::Serial)
        .unwrap();
    let (local_bounds, _) = clf
        .bound_density_batch_with(&queries, ExecPolicy::Serial)
        .unwrap();

    let (addr, handle) = spawn_server(ServeConfig::default(), clf);
    let mut client = Client::connect_with_timeout(&addr, Duration::from_secs(10)).unwrap();
    client.ping().unwrap();

    let served_labels = client.classify(&queries).unwrap();
    assert_eq!(served_labels, local_labels);

    let served_bounds = client.density(&queries).unwrap();
    assert_eq!(served_bounds.len(), local_bounds.len());
    for (served, local) in served_bounds.iter().zip(&local_bounds) {
        // Bit-identical: the engine guarantees thread-count-invariant
        // results, and f64 round-trips exactly through the wire format.
        assert!(served.0.to_bits() == local.lower.to_bits());
        assert!(served.1.to_bits() == local.upper.to_bits());
        assert!(served.0 <= served.1);
    }

    // Input-shaped failures are BadInput protocol errors, and the
    // connection stays usable afterwards.
    let wrong_dims = Matrix::from_rows(&[[1.0, 2.0, 3.0]]).unwrap();
    let err = client.classify(&wrong_dims).unwrap_err();
    assert!(matches!(err, Error::Protocol { .. }), "got {err:?}");
    client.ping().unwrap();

    let stats = client.stats().unwrap();
    assert!(stats.requests_total >= 5);
    assert_eq!(stats.classifies, 2);
    assert_eq!(stats.densities, 1);
    assert_eq!(stats.points_classified, 64);
    assert_eq!(stats.points_bounded, 64);
    assert_eq!(stats.errors_total, 1);
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.active_connections, 1);
    let recorded: u64 = stats.latency_buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(recorded, stats.requests_total);
    assert!(stats.latency_quantile_us(0.99) >= stats.latency_quantile_us(0.5));
    // Model provenance travels in the Stats frame.
    assert_eq!(stats.backend, "tree");
    assert_eq!(stats.bound_kind, "certified");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn estimated_backend_serves_and_reports_provenance() {
    let data = training_data(600, 19);
    let params = Params::default()
        .with_seed(19)
        .with_backend(tkdc::BackendSpec::Hbe(tkdc::HbeParams::default()));
    let clf = Classifier::fit(&data, &params).unwrap();
    let queries = query_set(32, 23);
    let (local_labels, _) = clf
        .classify_batch_with(&queries, ExecPolicy::Serial)
        .unwrap();

    let (addr, handle) = spawn_server(ServeConfig::default(), clf);
    let mut client = Client::connect_with_timeout(&addr, Duration::from_secs(10)).unwrap();
    let served_labels = client.classify(&queries).unwrap();
    assert_eq!(served_labels, local_labels);

    let stats = client.stats().unwrap();
    assert_eq!(stats.backend, "hbe");
    assert_eq!(stats.bound_kind, "probabilistic");

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn over_capacity_connection_rejected_with_protocol_error() {
    let (addr, handle) = spawn_server(
        ServeConfig {
            max_conns: 1,
            ..ServeConfig::default()
        },
        fitted(13),
    );
    let timeout = Duration::from_secs(10);

    // First client occupies the only slot (the ping guarantees its
    // handler is registered before the second connection arrives).
    let mut first = Client::connect_with_timeout(&addr, timeout).unwrap();
    first.ping().unwrap();

    let mut second = Client::connect_with_timeout(&addr, timeout).unwrap();
    let err = second.ping().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("OverCapacity"), "unexpected error: {msg}");

    // Dropping the first client frees the slot (its handler sees EOF);
    // a new client must then get through and can drain the server.
    drop(first);
    let mut third = loop {
        let mut c = Client::connect_with_timeout(&addr, timeout).unwrap();
        match c.ping() {
            Ok(()) => break c,
            Err(_) => tkdc_sync::thread::sleep(Duration::from_millis(20)),
        }
    };
    let stats = third.stats().unwrap();
    assert!(stats.rejected_over_capacity >= 1);
    third.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn idle_connection_times_out_instead_of_hanging() {
    let (addr, handle) = spawn_server(
        ServeConfig {
            timeout: Duration::from_millis(150),
            ..ServeConfig::default()
        },
        fitted(17),
    );

    // Connect and send nothing: the server must push a Timeout error
    // frame and close, well before our own 5-second guard expires.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match read_response(&mut stream).unwrap() {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("expected a Timeout error frame, got {other:?}"),
    }
    // The connection is closed afterwards: EOF, not a hang.
    assert!(read_response(&mut stream).unwrap().is_none());

    let mut client = Client::connect_with_timeout(&addr, Duration::from_secs(10)).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.timeouts, 1);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn malformed_and_mismatched_frames_get_error_responses() {
    let (addr, handle) = spawn_server(ServeConfig::default(), fitted(19));
    let timeout = Duration::from_secs(5);

    // Garbage opcode: the decoder rejects it and the server answers
    // with a Malformed error frame before closing.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(timeout)).unwrap();
    use std::io::Write as _;
    let mut frame = Vec::new();
    frame.extend_from_slice(&6u32.to_le_bytes());
    frame.push(tkdc_serve::PROTOCOL_VERSION);
    frame.push(250); // unknown opcode
    frame.extend_from_slice(&[0; 4]);
    stream.write_all(&frame).unwrap();
    match read_response(&mut stream).unwrap() {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error frame, got {other:?}"),
    }

    // Wrong protocol version: rejected as UnsupportedVersion.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(timeout)).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(&2u32.to_le_bytes());
    frame.push(tkdc_serve::PROTOCOL_VERSION + 1);
    frame.push(3); // Stats opcode
    stream.write_all(&frame).unwrap();
    match read_response(&mut stream).unwrap() {
        Some(Response::Error { code, .. }) => {
            assert_eq!(code, ErrorCode::UnsupportedVersion)
        }
        other => panic!("expected an UnsupportedVersion error frame, got {other:?}"),
    }

    let mut client = Client::connect_with_timeout(&addr, timeout).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Regression for the drain protocol (the model twin lives in
/// `tests/model_check.rs` as `serve_drain_*`): a `Shutdown` racing
/// in-flight `Classify` requests must resolve every one of them with a
/// complete, well-formed outcome — full `Labels` or an explicit
/// `ShuttingDown` frame — and the drain must join every handler rather
/// than hang or silently drop responses.
#[test]
fn concurrent_shutdown_drains_inflight_classifies_without_dropping() {
    let clf = fitted(31);
    let queries = query_set(48, 37);
    let (addr, handle) = spawn_server(
        ServeConfig {
            timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
        clf,
    );

    // Register four handlers (the ping round trip pins each one past
    // accept), then put a Classify in flight on every connection
    // *before* the drain starts.
    let mut streams = Vec::new();
    for nonce in 0..4u64 {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        write_request(&mut s, &Request::Ping { nonce }).unwrap();
        assert!(matches!(
            read_response(&mut s).unwrap(),
            Some(Response::Pong { .. })
        ));
        write_request(
            &mut s,
            &Request::Classify {
                points: queries.clone(),
            },
        )
        .unwrap();
        streams.push(s);
    }

    let mut shut = Client::connect_with_timeout(&addr, Duration::from_secs(10)).unwrap();
    shut.shutdown().unwrap();
    // The drain must terminate: run() joins every handler thread.
    handle.join().unwrap();

    let mut answered = 0;
    for mut s in streams {
        match read_response(&mut s).unwrap_or(None) {
            Some(Response::Labels(labels)) => {
                assert_eq!(labels.len(), 48, "torn Labels response");
                answered += 1;
            }
            Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::ShuttingDown),
            // A close without a frame is tolerated only for the narrow
            // TCP-reset race: the handler saw the flag before reading
            // the request and its drain notice was discarded by the
            // peer's RST handling.
            None => {}
            other => panic!("unexpected frame during drain: {other:?}"),
        }
    }
    // The requests were all written before Shutdown was sent, so the
    // overwhelmingly normal path is "answered in full"; wholesale
    // drops mean the drain broke.
    assert!(answered >= 1, "every in-flight classify was dropped");
}

/// End-to-end sweep of the observability sinks: the Prometheus
/// endpoint, the windowed latency view in the `Stats` frame, the span
/// trace, and the slow-query log — all on one served workload.
#[test]
fn observability_sinks_capture_spans_metrics_and_slowlog() {
    let clf = fitted(41);
    let queries = query_set(40, 43);
    let dir = std::env::temp_dir();
    let span_path = dir.join(format!("tkdc_serve_spans_{}.json", std::process::id()));
    let slow_path = dir.join(format!("tkdc_serve_slow_{}.jsonl", std::process::id()));
    // Bind directly (not through spawn_server) so the ephemeral metrics
    // port can be read off the Server value before spawning.
    let server = Server::bind(
        ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            span_out: Some(span_path.clone()),
            slow_log: Some(slow_path.clone()),
            slow_ms: Some(0), // log every request
            ..ServeConfig::default()
        },
        clf,
    )
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let metrics_addr = server.metrics_addr().expect("metrics endpoint bound");
    let handle = server.spawn();

    let mut client = Client::connect_with_timeout(&addr, Duration::from_secs(10)).unwrap();
    client.ping().unwrap();
    for _ in 0..3 {
        let labels = client.classify(&queries).unwrap();
        assert_eq!(labels.len(), 40);
    }
    client.density(&queries).unwrap();

    // Scrape the Prometheus endpoint while the server is live.
    let scrape = {
        use std::io::{Read as _, Write as _};
        let mut s = TcpStream::connect(metrics_addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    assert!(scrape.starts_with("HTTP/1.1 200 OK\r\n"), "{scrape}");
    for series in [
        "tkdc_serve_classifies{",
        "tkdc_engine_queries{",
        "tkdc_engine_kernel_evals{",
        "tkdc_labels_high{",
        "tkdc_serve_request_latency_us_bucket{",
        "tkdc_serve_request_latency_window_us_bucket{",
        "tkdc_pool_tasks_run{",
        "tkdc_pool_utilization{",
    ] {
        assert!(
            scrape.contains(series),
            "scrape missing {series}:\n{scrape}"
        );
    }
    assert!(scrape.contains("backend=\"tree\""));
    assert!(scrape.contains("bound_kind=\"certified\""));
    assert!(scrape.contains("worker=\"submitter\""));

    // The Stats frame carries the windowed view (v2 protocol).
    let stats = client.stats().unwrap();
    let windowed: u64 = stats.window_latency_buckets.iter().map(|&(_, c)| c).sum();
    assert!(windowed >= 5, "window missed recent requests: {windowed}");
    assert!(stats.window_seconds >= 1);
    assert!(stats.window_latency_quantile_us(0.99) >= stats.window_latency_quantile_us(0.5));

    client.shutdown().unwrap();
    handle.join().unwrap();

    // Span trace: Chrome trace_event JSON with serve + classify stages.
    let trace = std::fs::read_to_string(&span_path).unwrap();
    assert!(trace.contains("\"traceEvents\""), "{trace}");
    for stage in ["serve.request", "serve.exec", "classify.traversal"] {
        assert!(trace.contains(stage), "span trace missing {stage}");
    }

    // Slow log (threshold 0 = every request): one JSON line per request
    // with a span breakdown.
    let slow = std::fs::read_to_string(&slow_path).unwrap();
    let lines: Vec<&str> = slow.lines().collect();
    assert!(lines.len() >= 5, "slow log too short:\n{slow}");
    assert!(lines
        .iter()
        .all(|l| l.starts_with("{\"schema\":\"tkdc-slowlog/v1\"")));
    assert!(slow.contains("\"op\":\"classify\""));
    assert!(slow.contains("\"points\":40"));
    assert!(slow.contains("\"name\":\"serve.request\""));

    std::fs::remove_file(&span_path).ok();
    std::fs::remove_file(&slow_path).ok();
}

#[test]
fn shutdown_drains_and_new_work_is_refused() {
    let clf = fitted(23);
    let queries = query_set(32, 29);
    // A short server-side read timeout bounds how long the drain waits
    // for the parked (idle) connection below.
    let (addr, handle) = spawn_server(
        ServeConfig {
            timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
        clf,
    );
    let timeout = Duration::from_secs(10);

    // A parked second connection must be released by the drain (it gets
    // a ShuttingDown frame within one read-timeout tick) rather than
    // blocking shutdown forever.
    let parked = tkdc_sync::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut stream = TcpStream::connect(&addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            write_request(&mut stream, &Request::Ping { nonce: 1 }).unwrap();
            // Consume the pong, then wait: the next frame is the drain
            // notice (or EOF if the server closed first).
            assert!(matches!(
                read_response(&mut stream).unwrap(),
                Some(Response::Pong { nonce: 1 })
            ));
            matches!(
                read_response(&mut stream).unwrap_or(None),
                None | Some(Response::Error {
                    code: ErrorCode::ShuttingDown,
                    ..
                })
            )
        }
    });

    let mut client = Client::connect_with_timeout(&addr, timeout).unwrap();
    let labels = client.classify(&queries).unwrap();
    assert_eq!(labels.len(), 32);
    client.shutdown().unwrap();
    handle.join().unwrap();
    assert!(
        parked.join().unwrap(),
        "parked connection saw an unexpected frame"
    );

    // The daemon is gone: new connections must fail, not hang.
    let sock: std::net::SocketAddr = addr.parse().unwrap();
    assert!(TcpStream::connect_timeout(&sock, Duration::from_secs(2)).is_err());
}
