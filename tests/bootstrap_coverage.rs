//! Statistical validation of the threshold bootstrap's probabilistic
//! guarantee: with probability at least `1 − δ`, the returned bounds
//! bracket the exact quantile threshold `t(p)` (paper §3.5–3.6).

use tkdc::threshold::bound_threshold;
use tkdc::Params;
use tkdc_baselines::{DensityEstimator, NaiveKde};
use tkdc_common::{Matrix, Rng};
use tkdc_kernel::KernelKind;

fn blob(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let mut m = Matrix::with_cols(2);
    for _ in 0..n {
        m.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
            .unwrap();
    }
    m
}

#[test]
fn bounds_cover_exact_threshold_across_seeds() {
    // δ = 0.05 per run; over 25 independent runs the expected number of
    // misses is ~1.25, so requiring ≥ 21 hits gives a test with
    // negligible flake probability while still catching systematic
    // coverage failures.
    let trials = 25;
    let n = 700;
    let p = 0.05;
    let mut hits = 0;
    for trial in 0..trials {
        let data = blob(n, 1000 + trial);
        let mut params = Params::default().with_p(p).with_seed(trial * 7 + 1);
        params.delta = 0.05;
        let (bounds, _) = bound_threshold(&data, &params).unwrap();

        // Exact t(p) from naive densities.
        let kde = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let exact = kde.estimate_threshold(&data, p).unwrap();

        // Allow the ±ε slack Problem 1 grants the estimates.
        let eps = params.epsilon;
        if exact >= bounds.lower * (1.0 - 2.0 * eps) && exact <= bounds.upper * (1.0 + 2.0 * eps) {
            hits += 1;
        }
    }
    assert!(
        hits >= 21,
        "bootstrap bounds covered the exact threshold only {hits}/{trials} times"
    );
}

#[test]
fn bounds_tighten_with_smaller_p_spread() {
    // The CI width is driven by the order-statistic spread; for the same
    // data, bounds at p=0.5 (densely populated quantile region) are
    // relatively tighter than at p=0.01 (sparse tail).
    let data = blob(3000, 5);
    let (tail, _) = bound_threshold(&data, &Params::default().with_p(0.01).with_seed(2)).unwrap();
    let (median, _) = bound_threshold(&data, &Params::default().with_p(0.5).with_seed(2)).unwrap();
    let rel = |b: tkdc::ThresholdBounds| (b.upper - b.lower) / b.lower.max(1e-300);
    assert!(
        rel(median) < rel(tail),
        "median-quantile CI should be relatively tighter: {} vs {}",
        rel(median),
        rel(tail)
    );
}
