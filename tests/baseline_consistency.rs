//! Integration tests: every algorithm of Table 2 must agree on
//! classification for points clearly away from the threshold, and their
//! density estimates must honor their advertised error models.

use tkdc::{Classifier, ExecPolicy, Label, Params};
use tkdc_baselines::{BinnedKde, DensityEstimator, NaiveKde, NocutKde, RadialKde};
use tkdc_common::{Matrix, Rng};
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;

fn tmy3_4d(n: usize, seed: u64) -> Matrix {
    DatasetSpec {
        kind: DatasetKind::Tmy3,
        n,
        seed,
    }
    .generate()
    .unwrap()
    .prefix_columns(4)
    .unwrap()
}

#[test]
fn all_estimators_agree_on_clear_points() {
    let data = tmy3_4d(1800, 21);
    let p = 0.02;

    let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
    let t = naive.estimate_threshold(&data, p).unwrap();

    let nocut = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.01).unwrap();
    let sklearn = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.1).unwrap();
    let rkde = RadialKde::fit_with_error_bound(&data, KernelKind::Gaussian, 1.0, 0.01, t).unwrap();
    let binned = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
    let tkdc = Classifier::fit(&data, &Params::default().with_p(p).with_seed(31)).unwrap();

    let mut clear = 0;
    for i in 0..data.rows() {
        let x = data.row(i);
        let exact = naive.density(x).unwrap();
        // Only test points decisively away from both thresholds.
        if exact > 2.0 * t.max(tkdc.threshold()) || exact < 0.5 * t.min(tkdc.threshold()) {
            clear += 1;
            let expected_high = exact > t;
            assert_eq!(nocut.density(x).unwrap() > t, expected_high, "nocut @ {i}");
            assert_eq!(
                sklearn.density(x).unwrap() > t,
                expected_high,
                "sklearn @ {i}"
            );
            assert_eq!(rkde.density(x).unwrap() > t, expected_high, "rkde @ {i}");
            // Binned has no guarantee, so give it a wider corridor: only
            // check points 4x away from the threshold.
            if exact > 4.0 * t || exact < 0.25 * t {
                assert_eq!(
                    binned.density(x).unwrap() > t,
                    expected_high,
                    "binned @ {i}"
                );
            }
            let label = tkdc.classify(x).unwrap();
            assert_eq!(label == Label::High, expected_high, "tkdc @ {i}");
        }
    }
    assert!(clear > data.rows() / 2, "test must cover many clear points");
}

#[test]
fn approximation_errors_ordered_by_guarantee() {
    // nocut(ε=0.01) must be at least as accurate as sklearn(ε=0.1).
    let data = tmy3_4d(1200, 33);
    let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
    let tight = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.01).unwrap();
    let loose = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.1).unwrap();
    let mut rng = Rng::seed_from(3);
    let mut err_tight = 0.0;
    let mut err_loose = 0.0;
    for _ in 0..40 {
        let i = rng.next_below(data.rows() as u64) as usize;
        let x = data.row(i);
        let exact = naive.density(x).unwrap();
        err_tight += (tight.density(x).unwrap() - exact).abs() / exact.max(1e-300);
        err_loose += (loose.density(x).unwrap() - exact).abs() / exact.max(1e-300);
        // Each respects its own bound.
        assert!((tight.density(x).unwrap() - exact).abs() <= 0.01 * exact + 1e-12);
        assert!((loose.density(x).unwrap() - exact).abs() <= 0.1 * exact + 1e-12);
    }
    assert!(
        err_tight <= err_loose + 1e-9,
        "tight {err_tight} vs loose {err_loose}"
    );
}

#[test]
fn work_ordering_matches_paper() {
    // On a moderate dataset, kernel evaluations per query should order:
    // tkdc << nocut <= simple.
    let data = tmy3_4d(6000, 37);
    let p = 0.01;

    let tkdc = Classifier::fit(&data, &Params::default().with_p(p).with_seed(41)).unwrap();
    let mut scratch = tkdc::QueryScratch::new();
    for i in 0..200 {
        tkdc.classify_with(data.row(i), &mut scratch).unwrap();
    }
    let tkdc_kpq = scratch.stats.kernels_per_query();

    let nocut = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.01).unwrap();
    nocut.reset_kernel_evals();
    for i in 0..200 {
        nocut.density(data.row(i)).unwrap();
    }
    let nocut_kpq = nocut.kernel_evals() as f64 / 200.0;

    assert!(
        tkdc_kpq < nocut_kpq,
        "tkdc {tkdc_kpq} should beat nocut {nocut_kpq}"
    );
    assert!(
        nocut_kpq <= data.rows() as f64,
        "nocut {nocut_kpq} should not exceed naive {}",
        data.rows()
    );
    assert!(
        tkdc_kpq < data.rows() as f64 / 10.0,
        "tkdc {tkdc_kpq} should be an order of magnitude under naive"
    );
}

#[test]
fn epanechnikov_kernel_full_pipeline() {
    // Extension: the compact-support kernel must work end to end.
    let data = tmy3_4d(1500, 43);
    let mut params = Params::default().with_seed(47);
    params.kernel = KernelKind::Epanechnikov;
    let clf = Classifier::fit(&data, &params).unwrap();
    let (labels, _) = clf.classify_batch_with(&data, ExecPolicy::Serial).unwrap();
    let low = labels.iter().filter(|&&l| l == Label::Low).count();
    let frac = low as f64 / labels.len() as f64;
    assert!((frac - 0.01).abs() < 0.03, "LOW fraction {frac}");
}
