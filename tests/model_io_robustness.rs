//! Property-based robustness tests for model persistence: no byte-level
//! corruption of a serialized model may cause a panic or a silently
//! wrong load — every mutation either round-trips to a *valid* model or
//! returns an error.

use proptest::prelude::*;
use tkdc::model_io::{load_model_from, save_model_to, FORMAT_VERSION};
use tkdc::{Classifier, ExecPolicy, Params};
use tkdc_common::error::Error;
use tkdc_common::{Matrix, Rng};

fn reference_model_bytes() -> Vec<u8> {
    let mut rng = Rng::seed_from(4242);
    let mut data = Matrix::with_cols(2);
    for _ in 0..300 {
        data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
            .unwrap();
    }
    let clf = Classifier::fit(&data, &Params::default().with_seed(7)).unwrap();
    let mut buf = Vec::new();
    save_model_to(&clf, &mut buf).unwrap();
    buf
}

/// Wrong magic bytes must be rejected with a clear `Parse`-class error,
/// never a panic or a silent misread.
#[test]
fn wrong_magic_is_a_parse_error() {
    let mut bytes = reference_model_bytes();
    bytes[..4].copy_from_slice(b"NOPE");
    let err = load_model_from(bytes.as_slice()).unwrap_err();
    assert!(
        matches!(err, Error::Parse { line: 0, .. }),
        "expected Parse, got {err:?}"
    );
    let msg = err.to_string();
    assert!(msg.contains("magic"), "unhelpful message: {msg}");
}

/// A header from one format version in the future must be refused with
/// a message that names both versions, not misread field-by-field.
#[test]
fn future_format_version_is_a_parse_error() {
    let mut bytes = reference_model_bytes();
    // Layout: 4-byte magic, then u32 LE version.
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let err = load_model_from(bytes.as_slice()).unwrap_err();
    assert!(
        matches!(err, Error::Parse { line: 0, .. }),
        "expected Parse, got {err:?}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("{}", FORMAT_VERSION + 1))
            && msg.contains(&FORMAT_VERSION.to_string()),
        "message should name both versions: {msg}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_never_panics(cut in 0usize..100_000) {
        let bytes = reference_model_bytes();
        let cut = cut % (bytes.len() + 1);
        // Either loads (cut == len) or errors; must never panic.
        let result = load_model_from(&bytes[..cut]);
        if cut == bytes.len() {
            prop_assert!(result.is_ok());
        } else {
            // A strict prefix is missing data; loading may only succeed
            // if the format were self-terminating earlier, which it is
            // not — expect an error.
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn byte_flips_never_panic(offset in 0usize..100_000, xor in 1u8..=255) {
        let mut bytes = reference_model_bytes();
        let len = bytes.len();
        let offset = offset % len;
        bytes[offset] ^= xor;
        // Must not panic. If it loads, the classifier must still answer
        // queries without panicking (the mutation hit a benign field,
        // e.g. a point coordinate).
        if let Ok(clf) = load_model_from(bytes.as_slice()) {
            let _ = clf.classify(&[0.0, 0.0]);
        }
    }

    #[test]
    fn appended_garbage_is_ignored_or_rejected(extra in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = reference_model_bytes();
        bytes.extend_from_slice(&extra);
        // The reader consumes exactly the encoded structure; trailing
        // bytes are simply unread. Loading must succeed and match the
        // clean model's behaviour.
        let clf = load_model_from(bytes.as_slice()).unwrap();
        let clean = load_model_from(reference_model_bytes().as_slice()).unwrap();
        // Bit-identical: same bytes decode to the same threshold.
        prop_assert_eq!(clf.threshold().to_bits(), clean.threshold().to_bits());
    }

    /// fit → save → load → classify: the round-tripped model must label
    /// arbitrary query sets identically to the original, through the
    /// unified batch API under both scheduling policies.
    #[test]
    fn round_tripped_model_labels_identically(
        seed in any::<u64>(),
        n_queries in 1usize..120,
        spread in 0.5f64..4.0,
    ) {
        let mut rng = Rng::seed_from(seed);
        let mut data = Matrix::with_cols(2);
        for _ in 0..250 {
            data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]).unwrap();
        }
        let clf = Classifier::fit(&data, &Params::default().with_seed(seed ^ 0xA5)).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        let loaded = load_model_from(buf.as_slice()).unwrap();

        let mut queries = Matrix::with_cols(2);
        for _ in 0..n_queries {
            queries.push_row(&[rng.normal(0.0, spread), rng.normal(0.0, spread)]).unwrap();
        }
        let (original, _) = clf
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        let (reloaded, _) = loaded
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        prop_assert_eq!(&original, &reloaded);
        let (reloaded_par, _) = loaded
            .classify_batch_with(&queries, ExecPolicy::with_threads(4))
            .unwrap();
        prop_assert_eq!(&original, &reloaded_par);
    }
}
