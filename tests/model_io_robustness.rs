//! Property-based robustness tests for model persistence: no byte-level
//! corruption of a serialized model may cause a panic or a silently
//! wrong load — every mutation either round-trips to a *valid* model or
//! returns an error.

use proptest::prelude::*;
use tkdc::model_io::{load_model_from, save_model_to};
use tkdc::{Classifier, Params};
use tkdc_common::{Matrix, Rng};

fn reference_model_bytes() -> Vec<u8> {
    let mut rng = Rng::seed_from(4242);
    let mut data = Matrix::with_cols(2);
    for _ in 0..300 {
        data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
            .unwrap();
    }
    let clf = Classifier::fit(&data, &Params::default().with_seed(7)).unwrap();
    let mut buf = Vec::new();
    save_model_to(&clf, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn truncation_never_panics(cut in 0usize..100_000) {
        let bytes = reference_model_bytes();
        let cut = cut % (bytes.len() + 1);
        // Either loads (cut == len) or errors; must never panic.
        let result = load_model_from(&bytes[..cut]);
        if cut == bytes.len() {
            prop_assert!(result.is_ok());
        } else {
            // A strict prefix is missing data; loading may only succeed
            // if the format were self-terminating earlier, which it is
            // not — expect an error.
            prop_assert!(result.is_err());
        }
    }

    #[test]
    fn byte_flips_never_panic(offset in 0usize..100_000, xor in 1u8..=255) {
        let mut bytes = reference_model_bytes();
        let len = bytes.len();
        let offset = offset % len;
        bytes[offset] ^= xor;
        // Must not panic. If it loads, the classifier must still answer
        // queries without panicking (the mutation hit a benign field,
        // e.g. a point coordinate).
        if let Ok(clf) = load_model_from(bytes.as_slice()) {
            let _ = clf.classify(&[0.0, 0.0]);
        }
    }

    #[test]
    fn appended_garbage_is_ignored_or_rejected(extra in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut bytes = reference_model_bytes();
        bytes.extend_from_slice(&extra);
        // The reader consumes exactly the encoded structure; trailing
        // bytes are simply unread. Loading must succeed and match the
        // clean model's behaviour.
        let clf = load_model_from(bytes.as_slice()).unwrap();
        let clean = load_model_from(reference_model_bytes().as_slice()).unwrap();
        prop_assert_eq!(clf.threshold(), clean.threshold());
    }
}
