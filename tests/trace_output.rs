//! Golden tests for the observability layer (`tkdc-obs` + the `obs`
//! feature of `tkdc`):
//!
//! * traces are identical at every thread count and every schedule
//!   (sampling is by query index, never by a shared counter),
//! * a fully-sampled trace stream's counters sum exactly to the batch's
//!   returned `QueryStats`,
//! * a trace's final bounds are bit-identical to what
//!   `bound_density_with` returns for the same query,
//! * tracing (on, sampled, or off) never changes labels, bounds, or
//!   statistics relative to the untraced entry points,
//! * the JSONL serialization carries the `tkdc-trace/v1` schema tag on
//!   every line.

use tkdc_sync::OnceLock;

use tkdc::{Classifier, ExecPolicy, Params, QueryScratch, TraceWriter, TRACE_SCHEMA};
use tkdc_common::{Matrix, Rng};

/// One fitted classifier + a query mix (dense core, ε-band shell, far
/// tail) shared by every test in this file. Fixed seed: the goldens
/// below compare exact bit patterns.
fn fixture() -> &'static (Classifier, Matrix) {
    static FIXTURE: OnceLock<(Classifier, Matrix)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut rng = Rng::seed_from(42);
        let mut data = Matrix::with_cols(2);
        for _ in 0..2000 {
            data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
        let clf = Classifier::fit(&data, &Params::default().with_seed(42)).unwrap();
        let mut queries = Matrix::with_cols(2);
        for i in 0..120 {
            let row = match i % 3 {
                0 => [rng.normal(0.0, 0.3), rng.normal(0.0, 0.3)], // dense
                1 => [rng.normal(0.0, 2.2), rng.normal(0.0, 2.2)], // near band
                _ => [rng.uniform(8.0, 12.0), rng.uniform(8.0, 12.0)], // tail
            };
            queries.push_row(&row).unwrap();
        }
        (clf, queries)
    })
}

#[test]
fn traces_are_thread_invariant_and_sum_to_query_stats() {
    let (clf, queries) = fixture();
    let (ref_labels, ref_stats) = clf
        .classify_batch_with(queries, ExecPolicy::Serial)
        .unwrap();

    let mut reference_traces = None;
    for policy in [
        ExecPolicy::Serial,
        ExecPolicy::with_threads(2),
        ExecPolicy::with_threads(4),
        ExecPolicy::StaticChunked { threads: Some(3) },
    ] {
        let (labels, stats, traces) = clf.classify_batch_traced(queries, policy, 1).unwrap();
        assert_eq!(labels, ref_labels, "{policy:?}: labels diverged");
        assert_eq!(stats, ref_stats, "{policy:?}: stats diverged");
        assert_eq!(traces.len(), queries.rows());
        // Sorted by query index, one trace per query.
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.query, i as u64);
        }
        // A fully-sampled stream's counters are an exact decomposition
        // of the batch aggregate.
        let kernels: u64 = traces.iter().map(|t| t.kernel_evals).sum();
        let nodes: u64 = traces.iter().map(|t| t.nodes_expanded).sum();
        let bounds: u64 = traces.iter().map(|t| t.bound_evals).sum();
        assert_eq!(kernels, stats.kernel_evals, "{policy:?}: kernel_evals");
        assert_eq!(nodes, stats.nodes_expanded, "{policy:?}: nodes_expanded");
        assert_eq!(bounds, stats.bound_evals, "{policy:?}: bound_evals");
        // Per-cause trace counts match the per-cause stats counters.
        let count = |cause: &str| traces.iter().filter(|t| t.cause == cause).count() as u64;
        assert_eq!(count("grid"), stats.grid_prunes);
        assert_eq!(count("threshold_high"), stats.threshold_high);
        assert_eq!(count("threshold_low"), stats.threshold_low);
        assert_eq!(count("tolerance"), stats.tolerance);
        assert_eq!(count("exhausted"), stats.exhausted);
        // Compare serialized lines: the derived `PartialEq` treats the
        // NaN ("no upper bound") of grid traces as unequal to itself,
        // while the JSONL form encodes it canonically as `null`.
        let lines: Vec<String> = traces.iter().map(|t| t.to_json_line()).collect();
        match &reference_traces {
            None => reference_traces = Some(lines),
            Some(reference) => {
                assert_eq!(&lines, reference, "{policy:?}: traces diverged");
            }
        }
    }
}

#[test]
fn sampling_selects_every_nth_query_at_any_thread_count() {
    let (clf, queries) = fixture();
    for policy in [ExecPolicy::Serial, ExecPolicy::with_threads(4)] {
        let (_, _, traces) = clf.classify_batch_traced(queries, policy, 7).unwrap();
        let indices: Vec<u64> = traces.iter().map(|t| t.query).collect();
        let expected: Vec<u64> = (0..queries.rows() as u64).filter(|i| i % 7 == 0).collect();
        assert_eq!(indices, expected, "{policy:?}");
    }
}

#[test]
#[allow(clippy::float_cmp)] // bit-exactness is the property under test
fn tracing_off_or_sampled_changes_no_results() {
    let (clf, queries) = fixture();
    let policy = ExecPolicy::with_threads(2);
    let (ref_labels, ref_stats) = clf.classify_batch_with(queries, policy).unwrap();
    // every = 0: tracer armed but inert.
    let (labels, stats, traces) = clf.classify_batch_traced(queries, policy, 0).unwrap();
    assert_eq!(labels, ref_labels);
    assert_eq!(stats, ref_stats);
    assert!(traces.is_empty());
    // Sparse sampling: same results, fewer traces.
    let (labels, stats, _) = clf.classify_batch_traced(queries, policy, 13).unwrap();
    assert_eq!(labels, ref_labels);
    assert_eq!(stats, ref_stats);

    let (ref_bounds, ref_bstats) = clf.bound_density_batch_with(queries, policy).unwrap();
    let (bounds, bstats, _) = clf.bound_density_batch_traced(queries, policy, 13).unwrap();
    assert_eq!(bstats, ref_bstats);
    for (a, b) in bounds.iter().zip(&ref_bounds) {
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
        assert_eq!(a.cause, b.cause);
    }
}

#[test]
fn trace_final_bounds_match_bound_density_bitwise() {
    let (clf, queries) = fixture();
    let (bounds, _, traces) = clf
        .bound_density_batch_traced(queries, ExecPolicy::with_threads(4), 1)
        .unwrap();
    assert_eq!(traces.len(), bounds.len());
    let mut scratch = QueryScratch::new();
    for (i, trace) in traces.iter().enumerate() {
        // Against the batch's own returned bounds...
        assert_eq!(trace.lower.to_bits(), bounds[i].lower.to_bits());
        assert_eq!(trace.upper.to_bits(), bounds[i].upper.to_bits());
        assert_eq!(trace.cause, bounds[i].cause.as_str());
        // ...and against an independent single-query run.
        let single = clf
            .bound_density_with(queries.row(i), &mut scratch)
            .unwrap();
        assert_eq!(trace.lower.to_bits(), single.lower.to_bits());
        assert_eq!(trace.upper.to_bits(), single.upper.to_bits());
        // The last step's bounds equal the final bounds (before any
        // clamp the final lower/upper only tighten monotonically).
        if let Some(last) = trace.steps.last() {
            assert!(last.lower <= last.upper || last.upper.is_nan());
        }
        assert_eq!(trace.nodes_expanded, trace.steps.len() as u64);
    }
}

#[test]
fn jsonl_stream_is_schema_tagged_and_line_per_query() {
    let (clf, queries) = fixture();
    let (_, _, traces) = clf
        .classify_batch_traced(queries, ExecPolicy::Serial, 1)
        .unwrap();
    let mut writer = TraceWriter::new(Vec::new());
    writer.write_all(&traces).unwrap();
    let text = String::from_utf8(writer.into_inner()).unwrap();
    assert_eq!(text.lines().count(), queries.rows());
    for line in text.lines() {
        assert!(
            line.starts_with("{\"schema\":\"tkdc-trace/v1\""),
            "untagged line: {line}"
        );
        assert!(line.ends_with('}'));
        assert!(
            !line.contains("NaN") && !line.contains("inf"),
            "bad float token: {line}"
        );
    }
    assert_eq!(TRACE_SCHEMA, "tkdc-trace/v1");
}
