//! Model-checked concurrency harnesses (`cargo xtask model-check`).
//!
//! Compiled only under `--cfg tkdc_model_check`, where the `tkdc-sync`
//! facade swaps `std` primitives for the vendored loom-style checker
//! (`vendor/loom`): every harness below runs under **all** thread
//! interleavings (and weak-memory value choices) the bounded DFS
//! reaches, not just the ones a wall-clock test happens to hit.
//!
//! Layout per checked unit:
//! * a harness over the *real* code (engine `run_batch`/`WorkQueue`,
//!   serve `Metrics`, obs `Registry`, the serve drain protocol), which
//!   must be violation-free, and
//! * a `seeded_*` twin carrying a deliberate bug (dropped join,
//!   weakened orderings, non-atomic counter) that the checker **must**
//!   flag — proving the harness has teeth, per ISSUE 6's acceptance
//!   criteria.
#![cfg(tkdc_model_check)]

use tkdc_sync::atomic::{AtomicBool, Ordering};
use tkdc_sync::check::{Builder, RaceCell, Violation};
use tkdc_sync::thread;
use tkdc_sync::{Arc, Condvar, Mutex};

use tkdc::engine::{run_batch, Pool, WorkQueue};

// ---------------------------------------------------------------------
// Engine: work-stealing cursor + index-order reassembly
// ---------------------------------------------------------------------

/// The all-Relaxed cursor protocol of `WorkQueue` plus `run_batch`'s
/// join-then-reassemble step: output and summed worker state must be
/// identical to the serial run under every interleaving.
#[test]
fn engine_cursor_run_batch_matches_serial() {
    let mut b = Builder::new();
    // The full tree for two workers over three guided-grain pulls is
    // large; a preemption bound of 2 (the CHESS sweet spot) keeps the
    // run in seconds while still covering every two-switch schedule.
    b.preemption_bound = Some(2);
    b.max_iterations = 50_000;
    let report = b.check(|| {
        let work = |i: usize, acc: &mut u64| -> tkdc_common::error::Result<usize> {
            *acc += 1;
            Ok(i * 10)
        };
        let (out, states) = run_batch(3, 2, || 0u64, work).unwrap();
        assert_eq!(out, vec![0, 10, 20]);
        assert_eq!(states.iter().sum::<u64>(), 3);
    });
    assert!(
        report.violation.is_none(),
        "engine run_batch violation: {:?}",
        report.violation
    );
}

/// Two threads pulling from one `WorkQueue` must partition the index
/// space exactly — no index dropped, none handed out twice — in every
/// interleaving of the Relaxed load/CAS pairs.
#[test]
fn engine_cursor_ranges_are_disjoint_and_cover() {
    let report = Builder::new().check(|| {
        let q = Arc::new(WorkQueue::new(2, 2));
        let puller = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(r) = q.next_range() {
                    got.extend(r);
                }
                got
            })
        };
        let mut mine = Vec::new();
        while let Some(r) = q.next_range() {
            mine.extend(r);
        }
        let other = puller.join().unwrap();
        let mut all: Vec<usize> = mine.into_iter().chain(other).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1], "indices dropped or duplicated");
    });
    assert!(
        report.violation.is_none(),
        "work queue violation: {:?}",
        report.violation
    );
    assert!(report.complete, "exploration should finish for 2x2 queue");
}

/// Seeded bug (engine): `run_batch` publishes worker segments by
/// *joining* each worker before reading its output. This twin drops the
/// join — the checker must report the resulting write/read race,
/// proving the harness would catch a lost-join regression.
#[test]
fn seeded_engine_dropped_join_is_detected() {
    let report = Builder::new().check(|| {
        let segment = Arc::new(RaceCell::new(Vec::<usize>::new()));
        let worker = {
            let segment = Arc::clone(&segment);
            thread::spawn(move || segment.with_mut(|s| s.push(1)))
        };
        // BUG under test: reading the segment without `worker.join()`.
        let n = segment.with(|s| s.len());
        assert!(n <= 1);
        drop(worker);
    });
    assert!(
        matches!(report.violation, Some(Violation::DataRace { .. })),
        "dropped join must surface as a data race, got {:?}",
        report.violation
    );
}

// ---------------------------------------------------------------------
// Engine: persistent pool park/unpark protocol
// ---------------------------------------------------------------------

/// The pool's full lifecycle under every interleaving: worker spawn,
/// condvar park, job publication + wakeup, chunked deque stealing,
/// completion signalling on `done_cv`, and the shutdown/join drain in
/// `Drop`. Results must match the serial run and no schedule may
/// deadlock — this is the harness that makes `ExecPolicy::Parallel`'s
/// new scheduler model-checkable, per the tentpole's requirement that
/// the pool stay on the `tkdc-sync` facade.
#[test]
fn pool_park_unpark_batch_matches_serial() {
    let mut b = Builder::new();
    // Submitter + one lazily spawned worker over a 2-item batch: the
    // interesting schedules are notify-before-park, park-before-notify,
    // and the steal/own race on the two deque slots. A preemption bound
    // of 2 covers each with a tractable tree.
    b.preemption_bound = Some(2);
    b.max_iterations = 50_000;
    let report = b.check(|| {
        let pool = Pool::new();
        let (out, states) = pool
            .run_batch(
                2,
                2,
                || 0u64,
                |i, acc: &mut u64| {
                    *acc += 1;
                    Ok(i * 10)
                },
            )
            .unwrap();
        assert_eq!(out, vec![0, 10]);
        assert_eq!(states.iter().sum::<u64>(), 2);
        // Drop drains: shutdown flag + notify_all + join of the parked
        // worker must terminate in every schedule.
        drop(pool);
    });
    assert!(
        report.violation.is_none(),
        "pool park/unpark violation: {:?}",
        report.violation
    );
}

/// Seeded bug (pool): the park protocol with the wakeup torn off. The
/// real worker loop re-checks "is there a new job / shutdown?" while
/// *holding the state mutex* and parks atomically via `Condvar::wait`,
/// so a submission can never slip between check and park. This twin
/// parks with a naked `wait` (no predicate) against a submitter that
/// fires `notify_one` without publishing under the mutex — the notify
/// can land before the worker is a waiter, the wakeup is lost, and the
/// checker must find the deadlocked schedule.
#[test]
fn seeded_pool_dropped_wakeup_is_detected() {
    let report = Builder::new().check(|| {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let submitter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                // BUG under test: no job flag, no mutex — just notify.
                pair.1.notify_one();
            })
        };
        let guard = pair.0.lock().unwrap();
        // BUG under test: parking without re-checking a predicate.
        drop(pair.1.wait(guard).unwrap());
        submitter.join().unwrap();
    });
    assert!(
        matches!(report.violation, Some(Violation::Deadlock { .. })),
        "lost wakeup must surface as a deadlock, got {:?}",
        report.violation
    );
}

// ---------------------------------------------------------------------
// Engine: pool telemetry counters
// ---------------------------------------------------------------------

/// Pool telemetry under every interleaving of a 2-item batch with a
/// concurrent snapshot reader: a mid-flight `telemetry()` may be stale
/// but never torn (the counters are facade atomics — a plain-field
/// regression would surface as a data race), and once the batch
/// returns the totals are thread-invariant: `tasks_run` grew by
/// exactly the batch size no matter which participant ran what, and
/// stolen chunks never exceed chunks executed.
#[test]
fn pool_telemetry_counters_are_exact_and_untorn() {
    let mut b = Builder::new();
    // Submitter + lazy worker + one reader thread; bound as in
    // `pool_park_unpark_batch_matches_serial`.
    b.preemption_bound = Some(2);
    b.max_iterations = 50_000;
    let report = b.check(|| {
        let pool = Arc::new(Pool::new());
        let reader = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                let t = pool.telemetry();
                // Monotone counters observed mid-flight are bounded by
                // the batch about to complete.
                assert!(t.total().tasks_run <= 2, "telemetry invented work");
            })
        };
        let (out, states) = pool
            .run_batch(
                2,
                2,
                || 0u64,
                |i, acc: &mut u64| {
                    *acc += 1;
                    Ok(i * 10)
                },
            )
            .unwrap();
        assert_eq!(out, vec![0, 10]);
        assert_eq!(states.iter().sum::<u64>(), 2);
        reader.join().unwrap();
        let total = pool.telemetry().total();
        assert_eq!(total.tasks_run, 2, "each item counted exactly once");
        assert!(
            total.chunks_stolen <= total.tasks_run,
            "stolen chunks exceed executed items"
        );
        drop(pool);
    });
    assert!(
        report.violation.is_none(),
        "pool telemetry violation: {:?}",
        report.violation
    );
}

// ---------------------------------------------------------------------
// Serve: Metrics snapshot vs concurrent increment
// ---------------------------------------------------------------------

/// A snapshot racing two increments may be stale but never torn for a
/// single counter, and after join it is exact — the contract
/// `Metrics::snapshot` documents.
#[test]
fn serve_metrics_snapshot_vs_increment() {
    let report = Builder::new().check(|| {
        let m = Arc::new(tkdc_serve::Metrics::new());
        let writer = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                m.requests_total.inc();
                m.requests_total.inc();
            })
        };
        let mid = m.snapshot().requests_total;
        assert!(mid <= 2, "snapshot invented counts: {mid}");
        writer.join().unwrap();
        assert_eq!(m.snapshot().requests_total, 2, "counts lost after join");
    });
    assert!(
        report.violation.is_none(),
        "metrics violation: {:?}",
        report.violation
    );
}

/// Seeded bug (serve/obs counters): the twin of a `Counter` whose
/// increment is *not* atomic (read-modify-write on plain shared data).
/// The checker must flag it — this is exactly the regression the
/// atomics protect against.
#[test]
fn seeded_nonatomic_counter_is_detected() {
    let report = Builder::new().check(|| {
        let counter = Arc::new(RaceCell::new(0u64));
        let writer = {
            let counter = Arc::clone(&counter);
            thread::spawn(move || counter.with_mut(|v| *v += 1))
        };
        counter.with_mut(|v| *v += 1); // BUG under test: unsynchronized RMW
        writer.join().unwrap();
    });
    assert!(
        matches!(report.violation, Some(Violation::DataRace { .. })),
        "non-atomic increment must surface as a data race, got {:?}",
        report.violation
    );
}

// ---------------------------------------------------------------------
// Obs: Registry get-or-create merge
// ---------------------------------------------------------------------

/// Two threads racing `counter("hits")` must converge on **one** metric
/// (the mutexed get-or-create path) and lose no increments.
#[test]
fn registry_concurrent_get_or_create_merges() {
    let report = Builder::new().check(|| {
        let r = Arc::new(tkdc_obs::Registry::new());
        let other = {
            let r = Arc::clone(&r);
            thread::spawn(move || r.counter("hits").inc())
        };
        r.counter("hits").inc();
        other.join().unwrap();
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("hits".to_string(), 2)],
            "registration raced into duplicate entries or lost a count"
        );
    });
    assert!(
        report.violation.is_none(),
        "registry violation: {:?}",
        report.violation
    );
    assert!(
        report.complete,
        "exploration should finish for the registry"
    );
}

// ---------------------------------------------------------------------
// Serve: graceful-drain protocol
// ---------------------------------------------------------------------

/// Model twin of `Server::run`'s drain (`tests/serve_roundtrip.rs`
/// pins the wall-clock version): the initiator publishes state *before*
/// flipping `shutdown` with `Release`; a handler that observes the flag
/// with `Acquire` must also observe that state. This is the edge that
/// makes "never drop an in-flight response" provable.
fn drain_protocol_harness() {
    let config = Arc::new(RaceCell::new(0u32));
    let shutdown = Arc::new(AtomicBool::new(false));
    let handler = {
        let config = Arc::clone(&config);
        let shutdown = Arc::clone(&shutdown);
        thread::spawn(move || {
            if shutdown.load(Ordering::Acquire) {
                // Saw the drain: the initiator's prior writes must be
                // visible (reading them must not race).
                config.with(|v| assert_eq!(*v, 7, "drain state not published"));
            }
        })
    };
    config.with_mut(|v| *v = 7);
    shutdown.store(true, Ordering::Release);
    handler.join().unwrap();
}

#[test]
fn serve_drain_flag_publishes_initiator_state() {
    let report = Builder::new().check(drain_protocol_harness);
    assert!(
        report.violation.is_none(),
        "drain protocol violation: {:?}",
        report.violation
    );
    assert!(report.complete, "exploration should finish for the drain");
}

/// Seeded bug (serve): downgrade every ordering in the drain protocol
/// to `Relaxed` (the checker's `weaken_orderings` knob — equivalent to
/// editing `Release`/`Acquire` to `Relaxed` in `server.rs`). The same
/// harness must now race, proving it guards the orderings and not just
/// the interleaving.
#[test]
fn seeded_weakened_drain_ordering_is_detected() {
    let mut b = Builder::new();
    b.weaken_orderings = true;
    let report = b.check(drain_protocol_harness);
    assert!(
        matches!(report.violation, Some(Violation::DataRace { .. })),
        "weakened drain orderings must surface as a data race, got {:?}",
        report.violation
    );
}
