//! Cross-crate integration tests: full tKDC pipeline against exact-KDE
//! ground truth on multiple synthetic datasets and dimensionalities.

use tkdc::{Classifier, ExecPolicy, Label, Params};
use tkdc_baselines::{DensityEstimator, NaiveKde};
use tkdc_common::stats::BinaryScore;
use tkdc_common::Matrix;
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;

/// Exact ground truth: below-threshold labels from naive densities.
///
/// Note the Eq. 1 asymmetry: the self-contribution `f₀` is subtracted
/// only when *estimating* the threshold; classification (Algorithm 1)
/// compares the raw density against `t`.
fn ground_truth(data: &Matrix, p: f64) -> (Vec<bool>, Vec<f64>, f64) {
    let kde = NaiveKde::fit(data, KernelKind::Gaussian, 1.0).unwrap();
    let t = kde.estimate_threshold(data, p).unwrap();
    let densities: Vec<f64> = data.iter_rows().map(|x| kde.density(x).unwrap()).collect();
    let labels = densities.iter().map(|&d| d < t).collect();
    (labels, densities, t)
}

/// F1 of tKDC's LOW class vs ground truth, excluding the ε-band where
/// Problem 1 leaves behaviour undefined.
fn banded_f1(data: &Matrix, p: f64, eps: f64, seed: u64) -> (f64, usize) {
    let (truth, densities, t) = ground_truth(data, p);
    let params = Params::default().with_p(p).with_seed(seed);
    let clf = Classifier::fit(data, &params).unwrap();
    let (labels, _) = clf.classify_batch_with(data, ExecPolicy::Serial).unwrap();
    // Keep only points clearly outside the ±εt ambiguity band around
    // BOTH the exact threshold and the estimated threshold.
    let t_est = clf.threshold();
    let band = |d: f64| (d - t).abs() > 3.0 * eps * t && (d - t_est).abs() > 3.0 * eps * t_est;
    let mut truth_k = Vec::new();
    let mut pred_k = Vec::new();
    for i in 0..data.rows() {
        if band(densities[i]) {
            truth_k.push(truth[i]);
            pred_k.push(labels[i] == Label::Low);
        }
    }
    let kept = truth_k.len();
    (BinaryScore::from_labels(&truth_k, &pred_k).f1(), kept)
}

#[test]
fn tkdc_matches_ground_truth_on_gauss_2d() {
    let data = DatasetSpec {
        kind: DatasetKind::Gauss { d: 2 },
        n: 3000,
        seed: 1,
    }
    .generate()
    .unwrap();
    let (f1, kept) = banded_f1(&data, 0.01, 0.01, 11);
    assert!(kept > 2500, "band should exclude few points, kept {kept}");
    assert!(f1 > 0.99, "F1 {f1}");
}

#[test]
fn tkdc_matches_ground_truth_on_tmy3_4d() {
    let data = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n: 2500,
        seed: 2,
    }
    .generate()
    .unwrap()
    .prefix_columns(4)
    .unwrap();
    let (f1, kept) = banded_f1(&data, 0.01, 0.01, 13);
    assert!(kept > 2000, "kept {kept}");
    assert!(f1 > 0.99, "F1 {f1}");
}

#[test]
fn tkdc_matches_ground_truth_on_shuttle_9d() {
    let data = DatasetSpec {
        kind: DatasetKind::Shuttle,
        n: 2000,
        seed: 3,
    }
    .generate()
    .unwrap();
    let (f1, kept) = banded_f1(&data, 0.01, 0.01, 17);
    assert!(kept > 1500, "kept {kept}");
    assert!(f1 > 0.98, "F1 {f1}");
}

#[test]
fn tkdc_handles_larger_p() {
    let data = DatasetSpec {
        kind: DatasetKind::Home,
        n: 2000,
        seed: 4,
    }
    .generate()
    .unwrap()
    .prefix_columns(4)
    .unwrap();
    let (f1, _) = banded_f1(&data, 0.25, 0.01, 19);
    assert!(f1 > 0.97, "F1 {f1}");
}

#[test]
fn low_fraction_tracks_p_across_datasets() {
    for (kind, seed) in [
        (DatasetKind::Gauss { d: 2 }, 5u64),
        (DatasetKind::Galaxy, 6),
        (DatasetKind::Iris, 7),
    ] {
        let data = DatasetSpec {
            kind,
            n: 4000,
            seed,
        }
        .generate()
        .unwrap();
        let p = 0.05;
        let clf = Classifier::fit(&data, &Params::default().with_p(p).with_seed(seed)).unwrap();
        let (labels, _) = clf.classify_batch_with(&data, ExecPolicy::Serial).unwrap();
        let low = labels.iter().filter(|&&l| l == Label::Low).count();
        let frac = low as f64 / labels.len() as f64;
        assert!(
            (frac - p).abs() < 0.025,
            "{kind:?}: LOW fraction {frac} vs p {p}"
        );
    }
}

#[test]
fn moderate_dimension_hep_works() {
    // 16-d prefix of hep: no grid, pure tree pruning.
    let data = DatasetSpec {
        kind: DatasetKind::Hep,
        n: 1500,
        seed: 8,
    }
    .generate()
    .unwrap()
    .prefix_columns(16)
    .unwrap();
    let clf = Classifier::fit(&data, &Params::default().with_seed(23)).unwrap();
    assert!(!clf.grid_enabled());
    let (labels, stats) = clf.classify_batch_with(&data, ExecPolicy::Serial).unwrap();
    let low = labels.iter().filter(|&&l| l == Label::Low).count();
    assert!((low as f64 / labels.len() as f64 - 0.01).abs() < 0.02);
    assert!(stats.queries == 1500);
}

#[test]
fn pca_reduced_mnist_pipeline() {
    // The full paper pipeline for mnist: generate images → PCA → tKDC.
    let data = DatasetSpec {
        kind: DatasetKind::Mnist { pca_dims: Some(16) },
        n: 1200,
        seed: 9,
    }
    .generate()
    .unwrap();
    assert_eq!(data.cols(), 16);
    // PCA output needs a larger bandwidth to avoid underflow (appendix).
    let params = Params::default().with_bandwidth_factor(3.0).with_seed(29);
    let clf = Classifier::fit(&data, &params).unwrap();
    let (labels, _) = clf.classify_batch_with(&data, ExecPolicy::Serial).unwrap();
    let low = labels.iter().filter(|&&l| l == Label::Low).count();
    let frac = low as f64 / labels.len() as f64;
    assert!((frac - 0.01).abs() < 0.03, "LOW fraction {frac}");
}
