//! Property-based tests over the `tkdc-obs` observability primitives:
//!
//! * windowed histograms: the sliding-window view is always a subset of
//!   the cumulative total, and rotation never invents events,
//! * bucket quantiles: monotone in `q` and bounded by the bucket range,
//! * bucket merges: commutative, associative, and count-preserving,
//! * span streams: enter/exit records stay balanced and pair into
//!   complete spans even when the instrumented code panics mid-span.

use proptest::prelude::*;
use tkdc_obs::span::{complete_spans, SpanPhase, SpanSink, STAGES};
use tkdc_obs::{merge_buckets, quantile_from_buckets, WindowedHistogram, HISTOGRAM_BUCKETS};
use tkdc_sync::Arc;

fn count(buckets: &[(f64, u64)]) -> u64 {
    buckets.iter().map(|&(_, c)| c).sum()
}

/// Strategy: a bucket snapshot with the histogram's bound layout.
fn buckets() -> impl Strategy<Value = Vec<(f64, u64)>> {
    proptest::collection::vec(0u64..40, HISTOGRAM_BUCKETS..=HISTOGRAM_BUCKETS).prop_map(|counts| {
        let template = WindowedHistogram::new(1, 1).total_buckets();
        template
            .iter()
            .zip(counts)
            .map(|(&(upper, _), c)| (upper, c))
            .collect()
    })
}

/// Enters `names` as nested spans (guards unwind LIFO) then panics.
fn nest_and_panic(sink: &Arc<SpanSink>, names: &[&'static str]) {
    match names.split_first() {
        Some((first, rest)) => {
            let _guard = sink.enter(first);
            nest_and_panic(sink, rest);
        }
        None => panic!("unwind through the open spans"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every event lands in the cumulative total; the window view can
    /// only miss events (expiry, rotation), never add them — at any
    /// probe time, including far past the last recording.
    #[test]
    fn window_count_never_exceeds_total(
        slots in 1usize..8,
        slot_millis in 1u64..400,
        // One u64 per event, unpacked into (ms, us) below — the
        // vendored proptest has no tuple strategies.
        raw_events in proptest::collection::vec(0u64..15_000_000_000, 0..80),
        probe_offset in 0u64..10_000,
    ) {
        let h = WindowedHistogram::new(slots, slot_millis);
        let mut events: Vec<(u64, u64)> = raw_events
            .iter()
            .map(|&v| (v % 5_000, v / 5_000))
            .collect();
        events.sort_unstable();
        for &(ms, us) in &events {
            h.record_at_ms(ms, u128::from(us));
        }
        prop_assert_eq!(count(&h.total_buckets()), events.len() as u64);
        let last = events.last().map_or(0, |&(ms, _)| ms);
        for probe in [0, last, last + probe_offset] {
            let w = h.window_buckets_at(probe);
            prop_assert!(count(&w) <= events.len() as u64);
            // Per-bucket subset, not just in aggregate.
            for (&(_, wc), &(_, tc)) in w.iter().zip(&h.total_buckets()) {
                prop_assert!(wc <= tc);
            }
        }
        // A probe a full window past the last event sees nothing.
        let expired = last + slot_millis.saturating_mul(slots as u64 + 1);
        prop_assert_eq!(count(&h.window_buckets_at(expired)), 0);
    }

    /// Quantiles are monotone in `q` and always land on a bucket bound.
    #[test]
    fn quantile_monotone_and_on_bucket_bounds(
        b in buckets(),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let (vlo, vhi) = (quantile_from_buckets(&b, lo), quantile_from_buckets(&b, hi));
        prop_assert!(vlo <= vhi, "q{lo} -> {vlo} > q{hi} -> {vhi}");
        if count(&b) > 0 {
            prop_assert!(b.iter().any(|&(upper, _)| upper.total_cmp(&vlo).is_eq()));
            prop_assert!(vhi <= quantile_from_buckets(&b, 1.0));
        } else {
            prop_assert!(vlo.total_cmp(&0.0).is_eq());
        }
    }

    /// Merging is commutative and count-preserving, and merging a
    /// window snapshot into a total snapshot never lowers a quantile
    /// below either input's minimum.
    #[test]
    fn merge_commutes_and_preserves_counts(a in buckets(), b in buckets(), q in 0.0f64..=1.0) {
        let ab = merge_buckets(&a, &b);
        let ba = merge_buckets(&b, &a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(count(&ab), count(&a) + count(&b));
        for ((&(_, ca), &(_, cb)), &(_, cm)) in a.iter().zip(&b).zip(&ab) {
            prop_assert_eq!(ca + cb, cm);
        }
        if count(&a) > 0 && count(&b) > 0 {
            let qm = quantile_from_buckets(&ab, q);
            let (qa, qb) = (quantile_from_buckets(&a, q), quantile_from_buckets(&b, q));
            prop_assert!(qm >= qa.min(qb) && qm <= qa.max(qb));
        }
    }

    /// A panic unwinding through any depth of open spans still records
    /// one exit per enter, in nesting order, so the stream reconstructs
    /// into exactly `depth` complete spans.
    #[test]
    fn span_stream_stays_balanced_under_panic(depth in 1usize..6, offset in 0usize..STAGES.len()) {
        let names: Vec<&'static str> = (0..depth)
            .map(|i| STAGES[(offset + i) % STAGES.len()])
            .collect();
        let sink = Arc::new(SpanSink::new());
        let sink2 = Arc::clone(&sink);
        let names2 = names.clone();
        let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            nest_and_panic(&sink2, &names2);
        }));
        prop_assert!(unwound.is_err());
        let records = sink.take();
        prop_assert_eq!(records.len(), 2 * depth);
        let enters = records.iter().filter(|r| r.ph == SpanPhase::Enter).count();
        prop_assert_eq!(enters, depth);
        let complete = complete_spans(&records);
        prop_assert_eq!(complete.len(), depth, "every enter pairs with its unwind exit");
        // Nesting survives: depth-sorted spans carry the entry order.
        let mut by_depth = complete.clone();
        by_depth.sort_by_key(|s| s.depth);
        for (i, span) in by_depth.iter().enumerate() {
            prop_assert_eq!(span.depth as usize, i);
            prop_assert_eq!(span.name, names[i]);
        }
    }
}
