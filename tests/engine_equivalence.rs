//! Property tests for the work-stealing engine's determinism contract:
//!
//! * serial and work-stolen batch classification produce identical labels
//!   and identical merged `QueryStats` totals for any thread count —
//!   across *every* scheduler: the persistent pool
//!   (`ExecPolicy::Parallel`), per-batch scoped spawn
//!   (`ExecPolicy::ScopedSpawn`), and static chunking
//!   (`ExecPolicy::StaticChunked`),
//! * repeated batches through the same classifier's pool (the serve
//!   request pattern) are stable — reuse changes nothing,
//! * `bound_threshold` returns bit-identical `ThresholdBounds` (and an
//!   identical diagnostics trajectory) for any thread count and seed.
//!
//! The shared classifier is fitted once (`OnceLock`): the properties vary
//! the *queries* and the *thread count*, not the model.

use tkdc_sync::OnceLock;

use proptest::prelude::*;
use tkdc::threshold::{bound_threshold, bound_threshold_with};
use tkdc::{Classifier, ExecPolicy, Params};
use tkdc_common::{Matrix, Rng};

fn gaussian_blob(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let mut m = Matrix::with_cols(d);
    let mut row = vec![0.0; d];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.normal(0.0, 1.0);
        }
        m.push_row(&row).unwrap();
    }
    m
}

fn shared_classifier() -> &'static Classifier {
    static CLF: OnceLock<Classifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let data = gaussian_blob(3000, 2, 211);
        Classifier::fit(&data, &Params::default()).expect("fit")
    })
}

fn shared_bootstrap_data() -> &'static Matrix {
    static DATA: OnceLock<Matrix> = OnceLock::new();
    DATA.get_or_init(|| gaussian_blob(1200, 2, 223))
}

/// Weighted fixture: a coreset-like model (non-uniform weights, ε > 0)
/// whose classify path produces all three labels including `Unknown`.
fn shared_weighted() -> &'static (Matrix, Vec<f64>, Classifier) {
    static W: OnceLock<(Matrix, Vec<f64>, Classifier)> = OnceLock::new();
    W.get_or_init(|| {
        let data = gaussian_blob(800, 2, 227);
        let mut rng = Rng::seed_from(229);
        let weights: Vec<f64> = (0..data.rows())
            .map(|_| 1.0 + 3.0 * rng.next_f64())
            .collect();
        let clf = Classifier::fit_weighted(&data, &weights, 0.02, &Params::default())
            .expect("weighted fit");
        (data, weights, clf)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn batch_labels_and_stats_thread_invariant(
        seed in any::<u64>(),
        spread in 0.5f64..4.0,
        n_queries in 16usize..200,
    ) {
        let clf = shared_classifier();
        let queries = {
            let mut rng = Rng::seed_from(seed);
            let mut m = Matrix::with_cols(2);
            for _ in 0..n_queries {
                m.push_row(&[rng.normal(0.0, spread), rng.normal(0.0, spread)]).unwrap();
            }
            m
        };
        let (serial, s_stats) = clf
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .expect("serial");
        for threads in [1usize, 2, 4, 8] {
            let (parallel, p_stats) = clf
                .classify_batch_with(&queries, ExecPolicy::with_threads(threads))
                .expect("parallel");
            prop_assert_eq!(&serial, &parallel, "labels diverged at {} threads", threads);
            prop_assert_eq!(s_stats, p_stats, "stats diverged at {} threads", threads);
            let (chunked, c_stats) = clf
                .classify_batch_with(&queries, ExecPolicy::StaticChunked { threads: Some(threads) })
                .expect("static");
            prop_assert_eq!(&serial, &chunked, "static labels diverged at {} threads", threads);
            prop_assert_eq!(s_stats, c_stats, "static stats diverged at {} threads", threads);
            let (scoped, sc_stats) = clf
                .classify_batch_with(&queries, ExecPolicy::ScopedSpawn { threads: Some(threads) })
                .expect("scoped");
            prop_assert_eq!(&serial, &scoped, "scoped labels diverged at {} threads", threads);
            prop_assert_eq!(s_stats, sc_stats, "scoped stats diverged at {} threads", threads);
        }
    }

    /// Pool reuse is invisible in the results: the same classifier (and
    /// therefore the same parked worker pool) answering the same batch
    /// three times in a row — the `tkdc-serve` request pattern — returns
    /// identical labels and statistics every time, and they match a
    /// fresh scoped-spawn run.
    #[test]
    fn pool_reuse_is_result_invariant(
        seed in any::<u64>(),
        spread in 0.5f64..4.0,
        n_queries in 32usize..200,
    ) {
        let clf = shared_classifier();
        let queries = {
            let mut rng = Rng::seed_from(seed);
            let mut m = Matrix::with_cols(2);
            for _ in 0..n_queries {
                m.push_row(&[rng.normal(0.0, spread), rng.normal(0.0, spread)]).unwrap();
            }
            m
        };
        let (scoped, sc_stats) = clf
            .classify_batch_with(&queries, ExecPolicy::ScopedSpawn { threads: Some(4) })
            .expect("scoped");
        for batch in 0..3 {
            let (pooled, p_stats) = clf
                .classify_batch_with(&queries, ExecPolicy::with_threads(4))
                .expect("pooled");
            prop_assert_eq!(&scoped, &pooled, "pool batch {} diverged from scoped", batch);
            prop_assert_eq!(sc_stats, p_stats, "pool stats {} diverged from scoped", batch);
        }
    }

    /// The weighted-fit density pass runs through the same work-stealing
    /// engine; its threshold (a weighted quantile over index-ordered
    /// densities) must be bit-identical for every thread count, and the
    /// ε-folded classify path — `Unknown`s included — thread-invariant.
    #[test]
    fn weighted_fit_and_classify_thread_invariant(
        seed in any::<u64>(),
        spread in 0.5f64..4.0,
        n_queries in 16usize..120,
    ) {
        let (data, weights, clf1) = shared_weighted();
        for threads in [2usize, 4, 8] {
            let clft = Classifier::fit_weighted_with(
                data, weights, 0.02, &Params::default(), ExecPolicy::with_threads(threads),
            ).expect("weighted fit");
            // Bit-identical: f64 equality is the contract under test.
            prop_assert_eq!(
                clf1.threshold().to_bits(),
                clft.threshold().to_bits(),
                "weighted threshold diverged at {} threads", threads
            );
        }
        let queries = {
            let mut rng = Rng::seed_from(seed);
            let mut m = Matrix::with_cols(2);
            for _ in 0..n_queries {
                m.push_row(&[rng.normal(0.0, spread), rng.normal(0.0, spread)]).unwrap();
            }
            m
        };
        let (serial, s_stats) = clf1
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .expect("serial");
        for threads in [2usize, 4, 8] {
            let (parallel, p_stats) = clf1
                .classify_batch_with(&queries, ExecPolicy::with_threads(threads))
                .expect("parallel");
            prop_assert_eq!(&serial, &parallel, "weighted labels diverged at {} threads", threads);
            prop_assert_eq!(s_stats, p_stats, "weighted stats diverged at {} threads", threads);
        }
    }

    #[test]
    fn bound_threshold_bit_identical_across_threads(seed in any::<u64>()) {
        let data = shared_bootstrap_data();
        let params = Params::default().with_seed(seed);
        let (serial, s_report) = bound_threshold(data, &params).expect("serial");
        for threads in [2usize, 4, 8] {
            let (parallel, p_report) =
                bound_threshold_with(data, &params, ExecPolicy::with_threads(threads))
                    .expect("parallel");
            // Bit-identical: f64 equality through the PartialEq derive.
            prop_assert_eq!(serial, parallel, "bounds diverged at {} threads", threads);
            prop_assert_eq!(&s_report.rounds, &p_report.rounds);
            prop_assert_eq!(s_report.backoffs, p_report.backoffs);
            prop_assert_eq!(s_report.stats, p_report.stats);
        }
    }
}
