#![forbid(unsafe_code)]
//! Workspace-level re-exports for examples and integration tests.
pub use tkdc;
pub use tkdc_baselines as baselines;
pub use tkdc_common as common;
pub use tkdc_data as data;
pub use tkdc_index as index;
pub use tkdc_kernel as kernel;
pub use tkdc_linalg as linalg;
