#!/usr/bin/env python3
"""Validate tkdc observability artifacts in CI (stdlib only).

Three independent checks, each enabled by its flag:

  --prom FILE      Prometheus text exposition scraped from the serve
                   daemon's `--metrics-addr` endpoint: every sample is
                   `tkdc_`-prefixed and typed, the required serve /
                   engine / pool series are present, and histogram
                   buckets are cumulative with `+Inf` matching `_count`.
  --perfetto FILE  Chrome trace_event JSON written by `--span-out
                   FILE.json`: a non-empty `traceEvents` array of
                   complete ("X") events whose names come from the
                   closed span-stage vocabulary.
  --slowlog FILE   `tkdc-slowlog/v1` JSONL written by `--slow-log`:
                   every line carries op/points/elapsed_us plus a span
                   breakdown drawn from the same stage vocabulary.

Exits non-zero with one message per problem found.
"""

import argparse
import json
import re
import sys

# Mirrors STAGES in crates/obs/src/span.rs. Duplicated because this
# script must run before anything is built; the obs unit tests keep the
# Rust constant sorted, and CI runs this script over real span output,
# so a one-sided edit fails the obs-smoke job.
STAGES = {
    "classify.dispatch",
    "classify.leaf_sum",
    "classify.reassembly",
    "classify.traversal",
    "fit.backend_build",
    "fit.bootstrap",
    "fit.threshold",
    "fit.tree_build",
    "serve.exec",
    "serve.request",
}

SLOWLOG_SCHEMA = "tkdc-slowlog/v1"

# Series every serve scrape must carry (crates/serve/src/server.rs
# renders them unconditionally, so absence means the exposition broke).
REQUIRED_PROM = [
    "tkdc_serve_requests_total",
    "tkdc_serve_classifies",
    "tkdc_serve_points_classified",
    "tkdc_engine_queries",
    "tkdc_engine_kernel_evals",
    "tkdc_labels_high",
    "tkdc_serve_request_latency_us_bucket",
    "tkdc_serve_request_latency_us_count",
    "tkdc_serve_request_latency_window_us_bucket",
    "tkdc_pool_tasks_run",
    "tkdc_pool_busy_ns",
    "tkdc_pool_utilization",
]

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[^ ]+)$"
)


def check_prom(path, errors):
    text = open(path, encoding="utf-8").read()
    typed = set()
    samples = []  # (name, labels_str, value)
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"{path}:{lineno}: malformed TYPE line: {line!r}")
            else:
                typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"{path}:{lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        if not name.startswith("tkdc_"):
            errors.append(f"{path}:{lineno}: sample without tkdc_ prefix: {name}")
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"{path}:{lineno}: non-numeric value: {line!r}")
            continue
        samples.append((name, m.group("labels") or "", value))

    names = {n for n, _, _ in samples}
    for required in REQUIRED_PROM:
        if required not in names:
            errors.append(f"{path}: required series missing: {required}")
    for name, _, _ in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            errors.append(f"{path}: sample {name} has no # TYPE line")

    # Histogram sanity: within each label set, buckets are cumulative
    # (non-decreasing in le order) and the +Inf bucket equals _count.
    buckets = {}
    counts = {}
    for name, labels, value in samples:
        if name.endswith("_bucket"):
            le = None
            rest = []
            for part in labels.split(","):
                if part.startswith('le="'):
                    le = part[4:-1]
                else:
                    rest.append(part)
            if le is None:
                errors.append(f"{path}: bucket sample without le label: {name}")
                continue
            le_val = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault((name[: -len("_bucket")], ",".join(rest)), []).append(
                (le_val, value)
            )
        elif name.endswith("_count"):
            counts[(name[: -len("_count")], labels)] = value
    for (hist, labels), series in buckets.items():
        series.sort(key=lambda p: p[0])
        last = 0.0
        for le, value in series:
            if value < last:
                errors.append(
                    f"{path}: {hist}{{{labels}}} bucket le={le} decreases ({value} < {last})"
                )
            last = value
        if series[-1][0] != float("inf"):
            errors.append(f"{path}: {hist}{{{labels}}} has no +Inf bucket")
        elif (hist, labels) in counts and series[-1][1] != counts[(hist, labels)]:
            errors.append(
                f"{path}: {hist}{{{labels}}} +Inf bucket {series[-1][1]} "
                f"!= _count {counts[(hist, labels)]}"
            )
    if not samples:
        errors.append(f"{path}: empty exposition")
    return len(samples)


def check_perfetto(path, errors):
    try:
        doc = json.load(open(path, encoding="utf-8"))
    except ValueError as e:
        errors.append(f"{path}: invalid JSON: {e}")
        return 0
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        errors.append(f"{path}: no traceEvents array")
        return 0
    if not events:
        errors.append(f"{path}: traceEvents is empty")
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if ev.get("ph") != "X":
            errors.append(f"{where}: ph must be X, got {ev.get('ph')!r}")
        if ev.get("name") not in STAGES:
            errors.append(f"{where}: unknown stage {ev.get('name')!r}")
        if ev.get("cat") != "tkdc":
            errors.append(f"{where}: cat must be tkdc")
        for field in ("pid", "tid", "ts", "dur"):
            v = ev.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                errors.append(f"{where}: bad {field}: {v!r}")
    return len(events)


def check_slowlog(path, errors):
    lines = 0
    for lineno, line in enumerate(open(path, encoding="utf-8"), 1):
        if not line.strip():
            continue
        lines += 1
        where = f"{path}:{lineno}"
        try:
            entry = json.loads(line)
        except ValueError as e:
            errors.append(f"{where}: invalid JSON: {e}")
            continue
        if entry.get("schema") != SLOWLOG_SCHEMA:
            errors.append(f"{where}: schema must be {SLOWLOG_SCHEMA}")
        if not isinstance(entry.get("op"), str) or not entry["op"]:
            errors.append(f"{where}: missing op")
        for field in ("points", "elapsed_us"):
            v = entry.get(field)
            if not isinstance(v, int) or v < 0:
                errors.append(f"{where}: bad {field}: {v!r}")
        spans = entry.get("spans")
        if not isinstance(spans, list):
            errors.append(f"{where}: spans must be a list")
            continue
        for span in spans:
            if span.get("name") not in STAGES:
                errors.append(f"{where}: unknown span stage {span.get('name')!r}")
            dur = span.get("dur_us")
            if not isinstance(dur, int) or dur < 0:
                errors.append(f"{where}: bad dur_us: {dur!r}")
    if lines == 0:
        errors.append(f"{path}: empty slow-query log")
    return lines


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--prom", help="Prometheus text exposition to validate")
    ap.add_argument("--perfetto", help="Chrome trace_event JSON to validate")
    ap.add_argument("--slowlog", help="tkdc-slowlog/v1 JSONL to validate")
    args = ap.parse_args()
    if not (args.prom or args.perfetto or args.slowlog):
        ap.error("nothing to check: pass --prom, --perfetto, and/or --slowlog")

    errors = []
    checked = []
    if args.prom:
        n = check_prom(args.prom, errors)
        checked.append(f"{n} prometheus samples")
    if args.perfetto:
        n = check_perfetto(args.perfetto, errors)
        checked.append(f"{n} trace events")
    if args.slowlog:
        n = check_slowlog(args.slowlog, errors)
        checked.append(f"{n} slowlog lines")

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"obs_check: FAILED ({len(errors)} problems)", file=sys.stderr)
        return 1
    print(f"obs_check: ok ({', '.join(checked)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
