#!/usr/bin/env python3
"""CI gate over the backend accuracy-vs-throughput sweep.

Validates `BENCH_backend.json` (schema `tkdc-bench-backend/v1`, written
by the `bench_backend` binary) and cross-checks it against
`BENCH_batch.json`:

1. **Tree parity.** The tree rows of the backend sweep are supposed to
   be *the same fits* the batch baseline records: same generator, same
   sizes, same seed, default bandwidth. For every dataset present in
   both files at `bandwidth_factor == 1.0`, the quantile threshold must
   be bit-equal — any drift means the trait refactor changed tree
   behavior, which the design forbids. (The d64 sweep widens the
   bandwidth and is excluded by construction.) The check only runs when
   the two files were produced at the same `scale` and `seed`;
   otherwise the fits differ legitimately and the gate says so.

2. **Self-consistency.** Every tree row must be certified with zero
   self-disagreement and unit self-speedup; estimated rows must carry
   probabilistic bound kinds.

3. **The headline claim.** At d = 64 the hashing estimator must reach
   `--speedup` (default 5x) times the tree's throughput while
   disagreeing on at most `--disagreement` (default 1%) of labels.
   Absolute qps is machine-specific; the *ratio* is measured on one
   machine inside one file, so it is safe to gate on.

Usage:
    backend_gate.py [--backend BENCH_backend.json]
                    [--batch BENCH_batch.json]
                    [--speedup 5.0] [--disagreement 0.01]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"backend_gate: FAIL: {msg}")
    return 1


def load(path, schema):
    with open(path) as f:
        r = json.load(f)
    if r.get("schema") != schema:
        raise SystemExit(
            f"backend_gate: FAIL: {path}: expected schema {schema}, got {r.get('schema')}"
        )
    return r


def gate_tree_parity(backend, batch):
    if backend.get("scale") != batch.get("scale") or backend.get("seed") != batch.get("seed"):
        print(
            "backend_gate: note: skipping tree parity — "
            f"backend sweep at scale={backend.get('scale')} seed={backend.get('seed')}, "
            f"batch baseline at scale={batch.get('scale')} seed={batch.get('seed')}"
        )
        return 0
    batch_thresholds = {d["name"]: d["threshold"] for d in batch["datasets"]}
    rc = 0
    checked = 0
    for ds in backend["datasets"]:
        if ds.get("bandwidth_factor") != 1.0 or ds["name"] not in batch_thresholds:
            continue
        tree = [b for b in ds["backends"] if b["backend"] == "tree"]
        if not tree:
            rc |= fail(f"{ds['name']}: no tree row")
            continue
        got, want = tree[0]["threshold"], batch_thresholds[ds["name"]]
        checked += 1
        if got != want:
            rc |= fail(
                f"{ds['name']}: tree threshold {got!r} != batch baseline {want!r} "
                "(the trait refactor must not change tree fits)"
            )
        else:
            print(f"backend_gate: {ds['name']}: tree threshold matches batch baseline ({got})")
    if checked == 0:
        rc |= fail("no dataset overlapped the batch baseline at bandwidth_factor == 1.0")
    return rc


def gate_rows(backend):
    rc = 0
    for ds in backend["datasets"]:
        names = [b["backend"] for b in ds["backends"]]
        for want in ("tree", "hbe", "rff"):
            if want not in names:
                rc |= fail(f"{ds['name']}: missing {want} row")
        for b in ds["backends"]:
            tag = f"{ds['name']}/{b['backend']}"
            if b["backend"] == "tree":
                if b["bound_kind"] != "certified":
                    rc |= fail(f"{tag}: tree must be certified, got {b['bound_kind']!r}")
                if b["label_disagreement"] != 0.0:
                    rc |= fail(f"{tag}: tree disagrees with itself ({b['label_disagreement']})")
                if b["speedup_vs_tree"] != 1.0:
                    rc |= fail(f"{tag}: tree self-speedup is {b['speedup_vs_tree']}, not 1.0")
            elif b["bound_kind"] != "probabilistic":
                rc |= fail(f"{tag}: estimated row must be probabilistic, got {b['bound_kind']!r}")
    return rc


def gate_headline(backend, speedup, disagreement):
    d64 = [d for d in backend["datasets"] if d.get("d") == 64]
    if not d64:
        return fail("no d=64 dataset in the sweep")
    rc = 0
    for ds in d64:
        hbe = [b for b in ds["backends"] if b["backend"] == "hbe"]
        if not hbe:
            rc |= fail(f"{ds['name']}: no hbe row")
            continue
        h = hbe[0]
        ok_speed = h["speedup_vs_tree"] >= speedup
        ok_acc = h["label_disagreement"] <= disagreement
        print(
            f"backend_gate: {ds['name']}: hbe {h['speedup_vs_tree']:.2f}x tree qps "
            f"(required {speedup:.1f}x) at {100 * h['label_disagreement']:.3f}% disagreement "
            f"(cap {100 * disagreement:.1f}%) "
            f"{'ok' if ok_speed and ok_acc else 'FAIL'}"
        )
        if not (ok_speed and ok_acc):
            rc |= 1
    return rc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--backend", default="BENCH_backend.json")
    ap.add_argument("--batch", default="BENCH_batch.json")
    ap.add_argument("--speedup", type=float, default=5.0)
    ap.add_argument("--disagreement", type=float, default=0.01)
    args = ap.parse_args()
    backend = load(args.backend, "tkdc-bench-backend/v1")
    batch = load(args.batch, "tkdc-bench-batch/v2")
    rc = gate_tree_parity(backend, batch)
    rc |= gate_rows(backend)
    rc |= gate_headline(backend, args.speedup, args.disagreement)
    if rc:
        sys.exit(1)
    print("backend_gate: ok")


if __name__ == "__main__":
    main()
