#!/usr/bin/env python3
"""CI perf gate over the two committed benchmark baselines.

Two checks, both against *fresh* JSON produced earlier in the same CI
job (same machine — absolute numbers are never compared across
machines):

1. **Pool scaling** (`BENCH_batch.json`, schema `tkdc-bench-batch/v2`):
   on the `"large"` dataset configuration, the persistent pool's
   4-thread speedup must reach `0.9 * min(4, threads_available)`. On a
   1-core runner that degenerates to "parallel dispatch costs at most
   10% over serial" — the pool must never make things worse; on a
   4-core runner it demands real scaling.

2. **SoA leaf kernels** (`BENCH_leaf_sum.json`, schema
   `tkdc-bench-leaf-sum/v1`): `sum_block_soa` must not be slower than
   the per-point `eval_pair` fold at any (kernel, d, leaf) cell — the
   dimension-major layout has to pay for its 2x point storage
   everywhere, not just at the flattering corner. A small noise
   allowance (default 5%) absorbs criterion jitter on shared runners.

Usage:
    perf_gate.py [--batch BENCH_batch.json] [--leaf BENCH_leaf_sum.json]
                 [--threads N] [--factor 0.9] [--noise 0.05]

`--threads` overrides the thread count checked in the batch gate
(default 4, the acceptance point).
"""

import argparse
import json
import re
import sys


def fail(msg):
    print(f"perf_gate: FAIL: {msg}")
    return 1


def gate_batch(path, threads, factor):
    with open(path) as f:
        r = json.load(f)
    if r.get("schema") != "tkdc-bench-batch/v2":
        return fail(f"{path}: expected schema tkdc-bench-batch/v2, got {r.get('schema')}")
    avail = r["threads_available"]
    required = factor * min(threads, avail)
    if r.get("degraded"):
        print(
            f"perf_gate: note: degraded run ({avail} hardware thread(s) < requested) — "
            f"the bar degenerates to {required:.2f}x"
        )
    rc = 0
    large = [d for d in r["datasets"] if d.get("config") == "large"]
    if not large:
        return fail(f"{path}: no dataset with config == 'large'")
    for ds in large:
        points = [p for p in ds["parallel"] if p["threads"] == threads]
        if not points:
            rc |= fail(f"{ds['name']}: no parallel point at threads={threads}")
            continue
        for p in points:
            speedup = p["pool_speedup"]
            verdict = "ok" if speedup >= required else "FAIL"
            print(
                f"perf_gate: {ds['name']} pool {threads}-thread speedup {speedup:.3f}x "
                f"(required {required:.2f}x, {avail} thread(s) available) {verdict}"
            )
            if speedup < required:
                rc |= 1
    return rc


LEAF_CELL = re.compile(r"^(?P<group>leaf_sum_\w+_d\d+)/(?P<bench>\w+)/(?P<leaf>\d+)$")


def gate_leaf(path, noise):
    with open(path) as f:
        r = json.load(f)
    if r.get("schema") != "tkdc-bench-leaf-sum/v1":
        return fail(f"{path}: expected schema tkdc-bench-leaf-sum/v1, got {r.get('schema')}")
    cells = {}
    for label, secs in r["benches"].items():
        m = LEAF_CELL.match(label)
        if m:
            cells.setdefault((m.group("group"), m.group("leaf")), {})[m.group("bench")] = secs
    rc = 0
    checked = 0
    for (group, leaf), benches in sorted(cells.items()):
        if "sum_block_soa" not in benches or "eval_pair" not in benches:
            rc |= fail(f"{group}/{leaf}: missing sum_block_soa or eval_pair row")
            continue
        soa, ep = benches["sum_block_soa"], benches["eval_pair"]
        checked += 1
        if soa > ep * (1.0 + noise):
            rc |= fail(
                f"{group} leaf={leaf}: sum_block_soa {soa * 1e9:.1f} ns slower than "
                f"eval_pair {ep * 1e9:.1f} ns (allowed noise {noise:.0%})"
            )
    if checked == 0:
        rc |= fail(f"{path}: no (kernel, d, leaf) cells found")
    else:
        print(f"perf_gate: SoA vs eval_pair checked at {checked} cells")
    return rc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--batch", default="BENCH_batch.json")
    ap.add_argument("--leaf", default="BENCH_leaf_sum.json")
    ap.add_argument("--threads", type=int, default=4)
    ap.add_argument("--factor", type=float, default=0.9)
    ap.add_argument("--noise", type=float, default=0.05)
    args = ap.parse_args()
    rc = gate_batch(args.batch, args.threads, args.factor)
    rc |= gate_leaf(args.leaf, args.noise)
    if rc:
        sys.exit(1)
    print("perf_gate: ok")


if __name__ == "__main__":
    main()
