#!/usr/bin/env python3
"""Parse and compare `leaf_sum` criterion runs.

The vendored criterion harness prints one line per benchmark:

    <label padded to 60 cols> time: <Duration debug, e.g. 1.234µs>

`parse` turns that stream into `tkdc-bench-leaf-sum/v1` JSON; `compare`
gates a fresh run against a baseline run (the CI obs-smoke job uses a
2% aggregate-regression threshold). Absolute times are machine-specific:
compare runs from the same machine (CI compares two same-job runs; the
committed BENCH_leaf_sum.json is the recorded trajectory for this repo's
reference machine, not a cross-machine contract).

Usage:
    leaf_sum_report.py parse [--out FILE]            # criterion stdout on stdin
    leaf_sum_report.py compare BASE FRESH [--tolerance 0.02]
"""

import argparse
import json
import re
import sys

SCHEMA = "tkdc-bench-leaf-sum/v1"
LINE = re.compile(r"^(?P<label>\S+)\s+time:\s+(?P<num>[0-9.]+)(?P<unit>ns|µs|us|ms|s)\s*$")
UNIT_S = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}


def parse(stdin, out_path):
    benches = {}
    for raw in stdin:
        m = LINE.match(raw.strip())
        if not m:
            continue
        benches[m.group("label")] = float(m.group("num")) * UNIT_S[m.group("unit")]
    if not benches:
        sys.exit("leaf_sum_report: no benchmark lines found on stdin")
    report = {
        "schema": SCHEMA,
        "benches": benches,
        "total_s": sum(benches.values()),
    }
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if out_path:
        with open(out_path, "w") as f:
            f.write(text)
        print(f"wrote {out_path} ({len(benches)} benchmarks)")
    else:
        sys.stdout.write(text)


def load(path):
    with open(path) as f:
        r = json.load(f)
    if r.get("schema") != SCHEMA:
        sys.exit(f"{path}: expected schema {SCHEMA}, got {r.get('schema')}")
    return r


def compare(base_path, fresh_path, tolerance):
    base, fresh = load(base_path), load(fresh_path)
    if set(base["benches"]) != set(fresh["benches"]):
        sys.exit(
            "benchmark sets differ: "
            f"only-base={sorted(set(base['benches']) - set(fresh['benches']))} "
            f"only-fresh={sorted(set(fresh['benches']) - set(base['benches']))}"
        )
    for label in sorted(base["benches"]):
        b, f = base["benches"][label], fresh["benches"][label]
        print(f"{label:<60} {b * 1e9:10.1f} ns -> {f * 1e9:10.1f} ns  ({f / b:6.3f}x)")
    ratio = fresh["total_s"] / base["total_s"]
    print(f"aggregate: {base['total_s'] * 1e6:.2f} µs -> {fresh['total_s'] * 1e6:.2f} µs ({ratio:.4f}x)")
    if ratio > 1.0 + tolerance:
        sys.exit(f"FAIL: aggregate regression {ratio:.4f}x exceeds 1 + {tolerance}")
    print(f"ok: within the {tolerance:.0%} regression budget")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    p = sub.add_parser("parse")
    p.add_argument("--out")
    c = sub.add_parser("compare")
    c.add_argument("base")
    c.add_argument("fresh")
    c.add_argument("--tolerance", type=float, default=0.02)
    args = ap.parse_args()
    if args.cmd == "parse":
        parse(sys.stdin, args.out)
    else:
        compare(args.base, args.fresh, args.tolerance)


if __name__ == "__main__":
    main()
