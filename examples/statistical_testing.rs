//! Density bounds for statistical testing — the paper's third use case:
//! bounding the probability density of an observation yields p-value-like
//! evidence for whether it came from the training distribution.
//!
//! Fits classifiers at a ladder of quantile levels and reports, for each
//! new observation, the largest quantile level whose density region still
//! contains it — a conservative tail probability under the fitted KDE.
//!
//! Run with: `cargo run --release --example statistical_testing`

use tkdc::{Classifier, Label, Params, QueryScratch};
use tkdc_common::{Matrix, Rng};
use tkdc_data::hep;

fn main() {
    // "Background" process: the hep analog's first four channels.
    let background = hep::generate(30_000, 42).prefix_columns(4).expect("prefix");
    println!(
        "background sample: n = {}, d = {}\n",
        background.rows(),
        background.cols()
    );

    // Quantile ladder: each classifier answers "is this observation's
    // density above the p-quantile of background densities?"
    let ladder = [0.001, 0.01, 0.05, 0.25, 0.5];
    let classifiers: Vec<Classifier> = ladder
        .iter()
        .map(|&p| Classifier::fit(&background, &Params::default().with_p(p)).expect("fit"))
        .collect();

    // Observations: some background-like draws, some shifted "signal"
    // events that should land in the density tail.
    let mut rng = Rng::seed_from(7);
    let mut observations = Matrix::with_cols(4);
    let mut kinds = Vec::new();
    for i in 0..8 {
        let base = background.row(rng.next_below(background.rows() as u64) as usize);
        if i < 4 {
            observations.push_row(base).unwrap();
            kinds.push("background-like");
        } else {
            // Shift progressively further from the bulk.
            let shift = 2.0 + i as f64;
            let row: Vec<f64> = base.iter().map(|&v| v + shift).collect();
            observations.push_row(&row).unwrap();
            kinds.push("shifted signal");
        }
    }

    println!("observation tail levels (largest p whose density region still contains it):");
    let mut scratch = QueryScratch::new();
    for (i, obs) in observations.iter_rows().enumerate() {
        // The observation's density quantile lies between the largest
        // ladder level that classifies it HIGH and the next one up.
        let mut level = 0.0f64;
        for (&p, clf) in ladder.iter().zip(&classifiers) {
            if clf.classify_with(obs, &mut scratch).unwrap() == Label::High {
                level = p;
            }
        }
        let verdict = if level < 0.01 {
            "REJECT at 1% (density tail)"
        } else {
            "consistent with background"
        };
        println!(
            "  obs {i} ({:>15}): density above the p={level:<5} region -> {verdict}",
            kinds[i]
        );
    }

    println!(
        "\n{} ladder classifications used {:.1} kernel evals each (naive: {})",
        scratch.stats.queries,
        scratch.stats.kernels_per_query(),
        background.rows()
    );

    // ---- Certified log-likelihood ratios (the §2.1 physics use case) ---
    // Fit a second model on a "signal" process and bound the LLR of each
    // observation: the optimal Neyman–Pearson statistic, with certified
    // intervals instead of point estimates.
    let signal: Matrix = {
        let mut m = Matrix::with_cols(4);
        for row in hep::generate(30_000, 77)
            .prefix_columns(4)
            .expect("prefix")
            .iter_rows()
        {
            let shifted: Vec<f64> = row.iter().map(|&v| v + 1.2).collect();
            m.push_row(&shifted).expect("push");
        }
        m
    };
    let sig_clf = Classifier::fit(&signal, &Params::default()).expect("fit");
    let bg_clf = &classifiers[2]; // p = 0.05 background model
    println!("\ncertified log-likelihood ratios ln f_sig/f_bg on labeled draws:");
    let mut correct = 0usize;
    let mut tested = 0usize;
    for (label, source) in [("bg ", &background), ("sig", &signal)] {
        for trial in 0..4 {
            let obs = source.row(100 + trial * 37);
            let llr =
                tkdc::llr_bounds_with_rtol(&sig_clf, bg_clf, obs, 0.05, &mut scratch).expect("llr");
            let verdict = if llr.favors_numerator() {
                "certified SIGNAL"
            } else if llr.favors_denominator() {
                "certified BACKGROUND"
            } else {
                "inconclusive interval"
            };
            tested += 1;
            if (label == "sig" && llr.favors_numerator())
                || (label == "bg " && llr.favors_denominator())
            {
                correct += 1;
            }
            println!(
                "  true {label} draw {trial}: LLR in [{:+8.2}, {:+8.2}] -> {verdict}",
                llr.lower, llr.upper
            );
        }
    }
    println!("{correct}/{tested} draws certified toward their true source");
}
