//! Quickstart: fit a tKDC classifier and classify points by density.
//!
//! Run with: `cargo run --release --example quickstart`

use tkdc::{Classifier, Label, Params, QueryScratch};
use tkdc_common::{Matrix, Rng};

fn main() {
    // 1. Some 2-d data: two Gaussian blobs of different weight.
    let mut rng = Rng::seed_from(7);
    let mut data = Matrix::with_cols(2);
    for i in 0..20_000 {
        if i % 4 == 0 {
            data.push_row(&[rng.normal(4.0, 0.5), rng.normal(4.0, 0.5)])
                .unwrap();
        } else {
            data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)])
                .unwrap();
        }
    }

    // 2. Fit: p = 0.01 classifies the densest 99% of the distribution as
    //    HIGH and the 1% low-density tail as LOW, with multiplicative
    //    error ε = 0.01 around the threshold.
    let params = Params::default();
    let clf = Classifier::fit(&data, &params).expect("training failed");
    println!(
        "fitted on {} points, threshold t(p) = {:.6}",
        clf.n_train(),
        clf.threshold()
    );
    println!(
        "bootstrap rounds: {:?}, grid cache: {}",
        clf.fit_report().bootstrap.rounds,
        clf.grid_enabled()
    );

    // 3. Classify some queries, reusing one scratch across calls.
    let mut scratch = QueryScratch::new();
    for q in [[0.0, 0.0], [4.0, 4.0], [2.0, 2.0], [8.0, -8.0]] {
        let label = clf.classify_with(&q, &mut scratch).unwrap();
        let bounds = clf.bound_density_with(&q, &mut scratch).unwrap();
        println!(
            "query {q:>12?} -> {label:?}  (density in [{:.2e}, {:.2e}])",
            bounds.lower, bounds.upper
        );
    }

    // 4. Inspect how much work the pruning saved.
    let stats = scratch.stats;
    println!(
        "\n{} queries used {:.0} kernel evaluations each on average \
         (naive would use {} each)",
        stats.queries,
        stats.kernels_per_query(),
        clf.n_train()
    );
    assert_eq!(clf.classify(&[0.0, 0.0]).unwrap(), Label::High);
}
