//! Region-boundary visualization on iris-like sepal measurements — the
//! paper's Fig. 2a scenario: density contours separate the two dominant
//! modes of the sepal distribution and give a biologist intuition about
//! cluster shape.
//!
//! Classifies a grid at several quantile levels and renders nested ASCII
//! contours (darker glyph = higher density region).
//!
//! Run with: `cargo run --release --example contours_iris`

use tkdc::{Classifier, Label, Params, QueryScratch};
use tkdc_data::iris;

fn main() {
    let data = iris::generate(30_000, 42);
    println!("iris sepal analog, n = {}\n", data.rows());

    // Fit one classifier per contour level. Each level p marks the
    // region containing the densest (1-p) fraction of the distribution.
    let levels = [0.1, 0.35, 0.7];
    let glyphs = ['-', '+', '#']; // increasing density
    let classifiers: Vec<Classifier> = levels
        .iter()
        .map(|&p| Classifier::fit(&data, &Params::default().with_p(p)).expect("fit"))
        .collect();
    for (p, clf) in levels.iter().zip(&classifiers) {
        println!("level p = {p}: t(p) = {:.4}", clf.threshold());
    }

    let (mins, maxs) = data.column_bounds();
    let (w, h) = (66usize, 26usize);
    let mut scratch = QueryScratch::new();
    println!("\nsepal width (x) vs sepal length (y) density contours:");
    println!("  ('#' densest region, '+' middle, '-' outer, ' ' below all levels)");
    for row in 0..h {
        let y = maxs[1] - (maxs[1] - mins[1]) * (row as f64 + 0.5) / h as f64;
        let mut line = String::with_capacity(w);
        for col in 0..w {
            let x = mins[0] + (maxs[0] - mins[0]) * (col as f64 + 0.5) / w as f64;
            // Highest contour level containing the point wins.
            let mut glyph = ' ';
            for (i, clf) in classifiers.iter().enumerate() {
                if clf.classify_with(&[x, y], &mut scratch).unwrap() == Label::High {
                    glyph = glyphs[i];
                }
            }
            line.push(glyph);
        }
        println!("  {line}");
    }
    println!(
        "\nclassified {} grid cells with {:.1} kernel evals each (naive: {})",
        scratch.stats.queries,
        scratch.stats.kernels_per_query(),
        data.rows()
    );

    // Vector output: exact level-set polylines via marching squares over
    // relative-precision density values, exported as SVG (the Fig. 2a
    // artifact a biologist would actually keep).
    let (gw, gh) = (120usize, 120usize);
    let mut field = vec![0.0f64; gw * gh];
    let base = &classifiers[0];
    for gy in 0..gh {
        let y = maxs[1] - (maxs[1] - mins[1]) * gy as f64 / (gh - 1) as f64;
        for gx in 0..gw {
            let x = mins[0] + (maxs[0] - mins[0]) * gx as f64 / (gw - 1) as f64;
            let b = base
                .bound_density_relative_with(&[x, y], 0.05, &mut scratch)
                .expect("bounds");
            field[gy * gw + gx] = b.midpoint();
        }
    }
    let palette = ["#4aa3ff", "#ffd24a", "#ff5a4a"];
    let mut layers = Vec::new();
    for (clf, color) in classifiers.iter().zip(palette) {
        let segs = tkdc_common::contour::marching_squares(&field, gw, gh, clf.threshold())
            .expect("contour");
        layers.push((segs, color));
    }
    tkdc_common::contour::write_svg(
        "iris_contours.svg",
        &layers,
        (gw - 1) as f64,
        (gh - 1) as f64,
        600,
        600,
    )
    .expect("svg");
    println!("wrote iris_contours.svg (density level sets at p = 0.1 / 0.35 / 0.7)");
}
