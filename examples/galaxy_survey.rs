//! Survey-scale density analysis on the galaxy-map analog — the paper's
//! Fig. 2b scenario: probability densities of galaxy positions stand in
//! for physical mass densities, and low-density voids vs high-density
//! filaments drive downstream astrophysics.
//!
//! Classifies a patch of sky at two levels (void / field / filament) and
//! reports how much traversal work the threshold pruning saved.
//!
//! Run with: `cargo run --release --example galaxy_survey`

use tkdc::{Classifier, Label, Params, QueryScratch};
use tkdc_data::galaxy;

fn main() {
    let data = galaxy::generate(60_000, 42);
    println!("galaxy survey analog, n = {} positions\n", data.rows());

    // Two thresholds: the sparsest 20% marks voids, the densest 30%
    // marks filament/cluster regions.
    let void_clf = Classifier::fit(&data, &Params::default().with_p(0.2)).expect("fit");
    let dense_clf = Classifier::fit(&data, &Params::default().with_p(0.7)).expect("fit");
    println!("void threshold   t(0.2) = {:.3e}", void_clf.threshold());
    println!("dense threshold  t(0.7) = {:.3e}\n", dense_clf.threshold());

    let (w, h) = (72usize, 30usize);
    let mut scratch = QueryScratch::new();
    let mut cells = [0usize; 3]; // void, field, dense
    println!("sky map: ' ' void, '.' field, '@' filament/cluster");
    for row in 0..h {
        let y = 100.0 - 100.0 * (row as f64 + 0.5) / h as f64;
        let mut line = String::with_capacity(w);
        for col in 0..w {
            let x = 100.0 * (col as f64 + 0.5) / w as f64;
            let q = [x, y];
            let glyph = if dense_clf.classify_with(&q, &mut scratch).unwrap() == Label::High {
                cells[2] += 1;
                '@'
            } else if void_clf.classify_with(&q, &mut scratch).unwrap() == Label::Low {
                cells[0] += 1;
                ' '
            } else {
                cells[1] += 1;
                '.'
            };
            line.push(glyph);
        }
        println!("  {line}");
    }
    let total = (w * h) as f64;
    println!(
        "\narea fractions: void {:.0}%, field {:.0}%, filament/cluster {:.0}%",
        100.0 * cells[0] as f64 / total,
        100.0 * cells[1] as f64 / total,
        100.0 * cells[2] as f64 / total,
    );
    println!(
        "classification used {:.1} kernel evals per cell (naive: {})",
        scratch.stats.kernels_per_query(),
        data.rows()
    );
}
