//! Density-based outlier classification on the shuttle-sensor analog —
//! the paper's Fig. 1 scenario: two sensor channels form a complex
//! multi-modal distribution; points below the density threshold flag
//! unusual operating modes.
//!
//! Prints an ASCII density-classification map of the measurement plane
//! (the textual analog of Fig. 1b) plus a sample of flagged outliers.
//!
//! Run with: `cargo run --release --example outlier_shuttle`

use tkdc::{Classifier, ExecPolicy, Label, Params, QueryScratch};
use tkdc_data::shuttle;

fn main() {
    // Columns 4 and 6 of the shuttle data (0-indexed 3 and 5), as in
    // the paper's Fig. 1.
    let full = shuttle::generate(43_500, 42);
    let data = full.select_columns(&[3, 5]).expect("projection");

    let params = Params::default(); // p = 0.01
    let clf = Classifier::fit(&data, &params).expect("training failed");
    println!(
        "trained on {} points (2-d shuttle projection), t(p=0.01) = {:.3e}\n",
        clf.n_train(),
        clf.threshold()
    );

    // Classify every training point; flag the LOW ones as outliers.
    let (labels, stats) = clf
        .classify_batch_with(&data, ExecPolicy::Serial)
        .expect("classification failed");
    let outliers: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l == Label::Low)
        .map(|(i, _)| i)
        .collect();
    println!(
        "{} / {} measurements flagged as density outliers ({:.2}%)",
        outliers.len(),
        labels.len(),
        100.0 * outliers.len() as f64 / labels.len() as f64
    );
    println!(
        "mean kernel evaluations per classification: {:.1} (naive: {})\n",
        stats.kernels_per_query(),
        clf.n_train()
    );

    // ASCII analog of Fig. 1b: classify a grid over the plane.
    let (mins, maxs) = data.column_bounds();
    let (w, h) = (64usize, 24usize);
    let mut scratch = QueryScratch::new();
    println!("density classification map ('#' = HIGH density, '.' = LOW, '?' = UNKNOWN):");
    for row in 0..h {
        let y = maxs[1] - (maxs[1] - mins[1]) * (row as f64 + 0.5) / h as f64;
        let mut line = String::with_capacity(w);
        for col in 0..w {
            let x = mins[0] + (maxs[0] - mins[0]) * (col as f64 + 0.5) / w as f64;
            let c = match clf.classify_with(&[x, y], &mut scratch).unwrap() {
                Label::High => '#',
                Label::Low => '.',
                Label::Unknown => '?',
            };
            line.push(c);
        }
        println!("  {line}");
    }

    println!("\nfirst flagged outliers (sensor A, sensor B):");
    for &i in outliers.iter().take(8) {
        let r = data.row(i);
        println!("  #{i:>6}: ({:>8.2}, {:>8.2})", r[0], r[1]);
    }
}
