//! Model persistence and dual-tree batch classification: fit once, save
//! the model, reload it in a "serving" phase, and classify a dense grid
//! of queries with the dual-tree driver (which shares traversal work
//! between nearby queries — the paper's §5 future-work direction).
//!
//! Run with: `cargo run --release --example model_persistence`

use std::time::Instant;
use tkdc::model_io::{load_model, save_model};
use tkdc::{classify_batch_dual, Classifier, DualTreeConfig, ExecPolicy, Label, Params};
use tkdc_common::Matrix;
use tkdc_data::tmy3;

fn main() {
    // ---- Training phase -------------------------------------------------
    let data = tmy3::generate(50_000, 42)
        .prefix_columns(4)
        .expect("prefix");
    let t0 = Instant::now();
    let clf = Classifier::fit(&data, &Params::default()).expect("fit");
    println!(
        "trained on {} rows in {:.2?}; t(p) = {:.4e}",
        clf.n_train(),
        t0.elapsed(),
        clf.threshold()
    );

    let model_path = std::env::temp_dir().join("tmy3_4d.tkdc");
    save_model(&clf, &model_path).expect("save");
    let bytes = std::fs::metadata(&model_path).expect("stat").len();
    println!(
        "model saved to {} ({:.1} MiB)",
        model_path.display(),
        bytes as f64 / (1 << 20) as f64
    );

    // ---- Serving phase ---------------------------------------------------
    let t1 = Instant::now();
    let served = load_model(&model_path).expect("load");
    println!("model reloaded in {:.2?} (no retraining)", t1.elapsed());

    // A dense grid of queries across the two leading load channels, with
    // the remaining channels fixed at their medians: the contour-render
    // workload where the dual tree shines.
    let (mins, maxs) = data.column_bounds();
    let mid2 = 0.5 * (mins[2] + maxs[2]);
    let mid3 = 0.5 * (mins[3] + maxs[3]);
    let mut queries = Matrix::with_cols(4);
    let grid = 120usize;
    for i in 0..grid {
        for j in 0..grid {
            let x = mins[0] + (maxs[0] - mins[0]) * i as f64 / (grid - 1) as f64;
            let y = mins[1] + (maxs[1] - mins[1]) * j as f64 / (grid - 1) as f64;
            queries.push_row(&[x, y, mid2, mid3]).expect("push");
        }
    }

    let t2 = Instant::now();
    let (serial, _) = served
        .classify_batch_with(&queries, ExecPolicy::Serial)
        .expect("serial");
    let serial_time = t2.elapsed();

    let t3 = Instant::now();
    let (dual, stats) =
        classify_batch_dual(&served, &queries, &DualTreeConfig::default()).expect("dual");
    let dual_time = t3.elapsed();

    let agree = serial.iter().zip(&dual).filter(|(a, b)| a == b).count();
    let high = dual.iter().filter(|&&l| l == Label::High).count();
    println!(
        "\nclassified {} grid queries: {high} HIGH / {} LOW",
        queries.rows(),
        queries.rows() - high
    );
    println!("  serial batch:   {serial_time:.2?}");
    println!(
        "  dual-tree batch: {dual_time:.2?}  ({} group-classified, {} leaf fallbacks)",
        stats.group_classified, stats.leaf_fallbacks
    );
    println!(
        "  agreement: {agree}/{} ({:.2}%; differences are confined to the ε-band)",
        queries.rows(),
        100.0 * agree as f64 / queries.rows() as f64
    );
    std::fs::remove_file(&model_path).ok();
}
