//! Reproduces the paper's Figure 1 as actual raster images:
//!
//! * `fig1a_histogram.ppm` — 2-d histogram of shuttle measurements,
//!   cells colored by (log) count;
//! * `fig1b_classification.ppm` — the density-classification map, with
//!   the HIGH region heat-colored by density bound and LOW left dark.
//!
//! Run with: `cargo run --release --example density_map`
//! (view the .ppm files with any image viewer, or convert:
//! `magick fig1b_classification.ppm fig1b.png`)

use tkdc::{Classifier, Label, Params, QueryScratch};
use tkdc_common::ppm::{heat_color, Image};
use tkdc_data::shuttle;

const W: usize = 480;
const H: usize = 360;

fn main() {
    let data = shuttle::generate(43_500, 42)
        .select_columns(&[3, 5])
        .expect("projection");
    let (mins, maxs) = data.column_bounds();
    let to_px = |x: f64, y: f64| -> (usize, usize) {
        let px = ((x - mins[0]) / (maxs[0] - mins[0]) * (W - 1) as f64).round();
        let py = ((maxs[1] - y) / (maxs[1] - mins[1]) * (H - 1) as f64).round();
        (px as usize, py as usize)
    };

    // ---- Fig. 1a: histogram, cells colored by log count ----------------
    let mut counts = vec![0u32; W * H];
    for row in data.iter_rows() {
        let (px, py) = to_px(row[0], row[1]);
        counts[py * W + px] += 1;
    }
    let max_log = counts
        .iter()
        .map(|&c| (c as f64 + 1.0).ln())
        .fold(0.0f64, f64::max);
    let mut hist = Image::new(W, H).expect("image");
    for y in 0..H {
        for x in 0..W {
            let c = counts[y * W + x];
            if c > 0 {
                let v = (c as f64 + 1.0).ln() / max_log;
                hist.set(x, y, heat_color(v));
            } else {
                hist.set(x, y, [12, 12, 24]);
            }
        }
    }
    hist.write_ppm("fig1a_histogram.ppm").expect("write");
    println!("wrote fig1a_histogram.ppm ({W}x{H})");

    // ---- Fig. 1b: density classification over the plane -----------------
    let clf = Classifier::fit(&data, &Params::default()).expect("fit");
    println!(
        "trained tKDC on {} points, t(p=0.01) = {:.3e}",
        clf.n_train(),
        clf.threshold()
    );
    let mut map = Image::new(W, H).expect("image");
    let mut scratch = QueryScratch::new();
    // Color HIGH cells by the (log) density lower bound so the body shows
    // structure; LOW cells stay dark, matching Fig. 1b's uncolored.
    let t = clf.threshold();
    let mut log_cache = vec![f64::NEG_INFINITY; W * H];
    let mut max_logd = f64::NEG_INFINITY;
    for y in 0..H {
        let wy = maxs[1] - (maxs[1] - mins[1]) * y as f64 / (H - 1) as f64;
        for x in 0..W {
            let wx = mins[0] + (maxs[0] - mins[0]) * x as f64 / (W - 1) as f64;
            let q = [wx, wy];
            if clf.classify_with(&q, &mut scratch).expect("classify") == Label::High {
                let b = clf.bound_density_with(&q, &mut scratch).expect("bounds");
                let logd = b.midpoint().max(t).ln();
                log_cache[y * W + x] = logd;
                if logd > max_logd {
                    max_logd = logd;
                }
            }
        }
    }
    let log_t = t.ln();
    for y in 0..H {
        for x in 0..W {
            let logd = log_cache[y * W + x];
            if logd.is_finite() {
                let v = (logd - log_t) / (max_logd - log_t).max(1e-9);
                map.set(x, y, heat_color(v));
            } else {
                map.set(x, y, [12, 12, 24]);
            }
        }
    }
    map.write_ppm("fig1b_classification.ppm").expect("write");
    println!(
        "wrote fig1b_classification.ppm; {:.1} kernel evals per grid cell (naive: {})",
        scratch.stats.kernels_per_query(),
        clf.n_train()
    );
}
