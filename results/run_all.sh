#!/bin/bash
# Runs every figure harness at default (laptop) scale, capturing outputs.
cd /root/repo
for fig in datasets fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16; do
  echo "=== $fig start $(date +%T) ==="
  ./target/release/$fig > results/$fig.txt 2>&1
  echo "=== $fig done  $(date +%T) ==="
done
echo ALL_FIGS_DONE
