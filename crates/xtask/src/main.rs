#![forbid(unsafe_code)]
//! `xtask` — workspace automation for the tKDC reproduction.
//!
//! Subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint [--report FILE] [paths...]
//! cargo run -p xtask -- model-check [--report FILE] [test filters...]
//! cargo run -p xtask -- check-trace FILE...
//! ```
//!
//! `lint` runs `tkdc-lint`, the from-scratch static-analysis pass
//! enforcing the workspace's numeric- and concurrency-soundness
//! invariants (see [`lints`] for the rule table and the `INVARIANT:` /
//! `SAFETY:` / `CAST:` / `ORDERING:` / `JOIN:` marker convention). With
//! no arguments the whole workspace is scanned; explicit file or
//! directory paths restrict the scan. Exits non-zero when any violation
//! is found, printing rustc-style `file:line:col` diagnostics.
//!
//! `model-check` runs the concurrency harnesses in
//! `tests/model_check.rs` with `--cfg tkdc_model_check` in `RUSTFLAGS`,
//! which swaps the `tkdc-sync` facade over to the vendored loom-style
//! model checker (`vendor/loom`). The instrumented build lives in its
//! own `target/model-check` directory so it never invalidates the
//! normal build cache.
//!
//! `check-trace` validates `tkdc-trace/v1` and `tkdc-trace/v2` JSONL
//! files (as written by `tkdc explain` / `--trace-out` and
//! `--span-out FILE.jsonl` respectively) against the trace schemas —
//! see [`trace_check`].
//!
//! `--report FILE` (lint, model-check) additionally writes the full
//! diagnostics to `FILE` for CI artifact upload.

mod lints;
mod scan;
mod trace_check;
mod walk;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("model-check") => model_check(&args[1..]),
        Some("check-trace") => check_trace(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
xtask — workspace automation

USAGE:
    cargo run -p xtask -- <SUBCOMMAND>

SUBCOMMANDS:
    lint [--report FILE] [paths...]
                        run the tkdc-lint soundness pass
                        (whole workspace when no paths are given)
    model-check [--report FILE] [test filters...]
                        run tests/model_check.rs under the vendored
                        loom-style model checker (--cfg tkdc_model_check,
                        separate target/model-check build dir)
    check-trace FILE... validate tkdc-trace/v1 + /v2 JSONL trace files

    --report FILE       also write the diagnostics/output to FILE
                        (CI artifact)

LINT RULES:
    L1 partial-cmp-unwrap  no `partial_cmp(..).unwrap()/.expect(..)`; use `f64::total_cmp`
    L2 panic               no unwrap/expect/panic!/unreachable! in library code
                           without an `// INVARIANT:` justification
    L3 float-eq            no `==`/`!=` on floats outside tests
    L4 unsafe              every `unsafe` needs a `// SAFETY:` comment
    L5 lossy-cast          lossy `as` casts need a `// CAST:` justification
    L6 std-sync-outside-facade
                           no `std::sync`/`std::thread` outside crates/sync;
                           import from `tkdc_sync` so the model checker can
                           instrument the code
    L7 relaxed-without-ordering-comment
                           every `Ordering::Relaxed` needs an `// ORDERING:`
                           justification
    L8 static-mut          no `static mut` globals
    L9 spawn-without-join  no discarded `thread::spawn` handle without a
                           `// JOIN:` justification

    Per-line suppression: `// tkdc-lint: allow(<rule>)` on the same or the
    preceding line, e.g. `// tkdc-lint: allow(float-eq)`.
";

/// Resolve the workspace root: `CARGO_MANIFEST_DIR/../..` when run via
/// cargo, else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(Path::to_path_buf).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

/// Split a leading `--report FILE` option off an argument list.
fn take_report_flag(args: &[String]) -> Result<(Option<PathBuf>, Vec<String>), String> {
    let mut report = None;
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--report" {
            match it.next() {
                Some(f) => report = Some(PathBuf::from(f)),
                None => return Err("--report needs a file argument".to_owned()),
            }
        } else {
            rest.push(a.clone());
        }
    }
    Ok((report, rest))
}

/// Run the model-check suite: `cargo test --test model_check` with
/// `--cfg tkdc_model_check` appended to `RUSTFLAGS` (selecting the
/// instrumented arm of the `tkdc-sync` facade) and a dedicated
/// `target/model-check` build directory so the cfg flip never thrashes
/// the normal build cache. Extra arguments pass through as libtest
/// filters.
fn model_check(args: &[String]) -> ExitCode {
    let (report, filters) = match take_report_flag(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("xtask model-check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = workspace_root();
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("tkdc_model_check") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg tkdc_model_check");
    }
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let mut cmd = std::process::Command::new(cargo);
    cmd.arg("test")
        .arg("--test")
        .arg("model_check")
        .current_dir(&root)
        .env("RUSTFLAGS", rustflags)
        .env("CARGO_TARGET_DIR", root.join("target/model-check"));
    if !filters.is_empty() {
        cmd.arg("--").args(&filters);
    }
    let output = match cmd.output() {
        Ok(out) => out,
        Err(e) => {
            eprintln!("xtask model-check: failed to run cargo: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Echo through so the run reads like a plain `cargo test`.
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    print!("{stdout}");
    eprint!("{stderr}");
    if let Some(path) = report {
        let verdict = if output.status.success() {
            "PASS"
        } else {
            "FAIL"
        };
        let body = format!(
            "model-check: {verdict} (cargo test --test model_check \
             under --cfg tkdc_model_check)\n\n\
             --- stdout ---\n{stdout}\n--- stderr ---\n{stderr}"
        );
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!(
                "xtask model-check: cannot write report {}: {e}",
                path.display()
            );
            return ExitCode::FAILURE;
        }
    }
    if output.status.success() {
        println!("model-check: ok");
        ExitCode::SUCCESS
    } else {
        eprintln!("model-check: FAILED");
        ExitCode::FAILURE
    }
}

fn check_trace(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("xtask check-trace: no files given\n");
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut total = 0usize;
    let mut failed = false;
    for path in args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask check-trace: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (lines, report) = trace_check::check_trace_text(path, &text);
        total += lines;
        for msg in &report {
            eprintln!("{msg}");
        }
        failed |= !report.is_empty();
    }
    if failed {
        eprintln!("check-trace: invalid ({total} lines checked)");
        ExitCode::FAILURE
    } else {
        println!("check-trace: ok ({total} trace lines valid)");
        ExitCode::SUCCESS
    }
}

fn lint(args: &[String]) -> ExitCode {
    let (report, args) = match take_report_flag(args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let args = &args[..];
    let root = workspace_root();
    let targets: Vec<PathBuf> = if args.is_empty() {
        match walk::workspace_rust_files(&root) {
            Ok(files) => files,
            Err(e) => {
                eprintln!(
                    "xtask lint: cannot walk workspace at {}: {e}",
                    root.display()
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Explicit paths: files taken as-is, directories walked.
        let mut files = Vec::new();
        for arg in args {
            let p = PathBuf::from(arg);
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(&p)
            };
            if abs.is_dir() {
                match walk::rust_files_under(&abs, &abs) {
                    Ok(mut inner) => {
                        files.extend(inner.drain(..).map(|f| p.join(f)));
                    }
                    Err(e) => {
                        eprintln!("xtask lint: cannot walk {}: {e}", abs.display());
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                files.push(p);
            }
        }
        files
    };

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for rel in &targets {
        let abs = if rel.is_absolute() {
            rel.clone()
        } else {
            root.join(rel)
        };
        let text = match std::fs::read_to_string(&abs) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", abs.display());
                return ExitCode::FAILURE;
            }
        };
        scanned += 1;
        let kind = lints::classify(rel);
        let rel_str = rel.display().to_string();
        violations.extend(lints::check_file(&rel_str, &text, kind));
    }

    for v in &violations {
        eprintln!("{}", v.render());
    }
    let summary = if violations.is_empty() {
        format!("tkdc-lint: clean ({scanned} files scanned)")
    } else {
        format!(
            "tkdc-lint: {} violation{} in {scanned} files",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" },
        )
    };
    if let Some(path) = report {
        let mut body = String::new();
        for v in &violations {
            body.push_str(&v.render());
            body.push('\n');
        }
        body.push_str(&summary);
        body.push('\n');
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("xtask lint: cannot write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if violations.is_empty() {
        println!("{summary}");
        ExitCode::SUCCESS
    } else {
        eprintln!("{summary}");
        ExitCode::FAILURE
    }
}
