#![forbid(unsafe_code)]
//! `xtask` — workspace automation for the tKDC reproduction.
//!
//! Subcommands:
//!
//! ```text
//! cargo run -p xtask -- lint [paths...]
//! cargo run -p xtask -- check-trace FILE...
//! ```
//!
//! `lint` runs `tkdc-lint`, the from-scratch static-analysis pass
//! enforcing the workspace's numeric-soundness invariants (see [`lints`]
//! for the rule table and the `INVARIANT:` / `SAFETY:` / `CAST:` marker
//! convention). With no arguments the whole workspace is scanned;
//! explicit file or directory paths restrict the scan. Exits non-zero
//! when any violation is found, printing rustc-style `file:line:col`
//! diagnostics.
//!
//! `check-trace` validates `tkdc-trace/v1` JSONL files (as written by
//! `tkdc explain` / `--trace-out`) against the trace schema — see
//! [`trace_check`].

mod lints;
mod scan;
mod trace_check;
mod walk;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("check-trace") => check_trace(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown subcommand `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
xtask — workspace automation

USAGE:
    cargo run -p xtask -- <SUBCOMMAND>

SUBCOMMANDS:
    lint [paths...]     run the tkdc-lint numeric-soundness pass
                        (whole workspace when no paths are given)
    check-trace FILE... validate tkdc-trace/v1 JSONL trace files

LINT RULES:
    L1 partial-cmp-unwrap  no `partial_cmp(..).unwrap()/.expect(..)`; use `f64::total_cmp`
    L2 panic               no unwrap/expect/panic!/unreachable! in library code
                           without an `// INVARIANT:` justification
    L3 float-eq            no `==`/`!=` on floats outside tests
    L4 unsafe              every `unsafe` needs a `// SAFETY:` comment
    L5 lossy-cast          lossy `as` casts in crates/{core,index,kernel,common}
                           need a `// CAST:` justification

    Per-line suppression: `// tkdc-lint: allow(<rule>)` on the same or the
    preceding line, e.g. `// tkdc-lint: allow(float-eq)`.
";

/// Resolve the workspace root: `CARGO_MANIFEST_DIR/../..` when run via
/// cargo, else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.ancestors().nth(2).map(Path::to_path_buf).unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}

fn check_trace(args: &[String]) -> ExitCode {
    if args.is_empty() {
        eprintln!("xtask check-trace: no files given\n");
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    }
    let mut total = 0usize;
    let mut failed = false;
    for path in args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask check-trace: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let (lines, report) = trace_check::check_trace_text(path, &text);
        total += lines;
        for msg in &report {
            eprintln!("{msg}");
        }
        failed |= !report.is_empty();
    }
    if failed {
        eprintln!("check-trace: invalid ({total} lines checked)");
        ExitCode::FAILURE
    } else {
        println!("check-trace: ok ({total} trace lines valid)");
        ExitCode::SUCCESS
    }
}

fn lint(args: &[String]) -> ExitCode {
    let root = workspace_root();
    let targets: Vec<PathBuf> = if args.is_empty() {
        match walk::workspace_rust_files(&root) {
            Ok(files) => files,
            Err(e) => {
                eprintln!(
                    "xtask lint: cannot walk workspace at {}: {e}",
                    root.display()
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        // Explicit paths: files taken as-is, directories walked.
        let mut files = Vec::new();
        for arg in args {
            let p = PathBuf::from(arg);
            let abs = if p.is_absolute() {
                p.clone()
            } else {
                root.join(&p)
            };
            if abs.is_dir() {
                match walk::rust_files_under(&abs, &abs) {
                    Ok(mut inner) => {
                        files.extend(inner.drain(..).map(|f| p.join(f)));
                    }
                    Err(e) => {
                        eprintln!("xtask lint: cannot walk {}: {e}", abs.display());
                        return ExitCode::FAILURE;
                    }
                }
            } else {
                files.push(p);
            }
        }
        files
    };

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    for rel in &targets {
        let abs = if rel.is_absolute() {
            rel.clone()
        } else {
            root.join(rel)
        };
        let text = match std::fs::read_to_string(&abs) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("xtask lint: cannot read {}: {e}", abs.display());
                return ExitCode::FAILURE;
            }
        };
        scanned += 1;
        let kind = lints::classify(rel);
        let rel_str = rel.display().to_string();
        violations.extend(lints::check_file(&rel_str, &text, kind));
    }

    for v in &violations {
        eprintln!("{}", v.render());
    }
    if violations.is_empty() {
        println!("tkdc-lint: clean ({scanned} files scanned)");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "tkdc-lint: {} violation{} in {scanned} files",
            violations.len(),
            if violations.len() == 1 { "" } else { "s" },
        );
        ExitCode::FAILURE
    }
}
