//! Lexical source model for the lint pass.
//!
//! `tkdc-lint` is deliberately a *line/token-level* tool — no `syn`, no
//! external dependencies — so every rule operates on a [`SourceModel`]:
//! the file split into lines where string/char-literal contents and
//! comments have been blanked out of the `code` view (byte positions are
//! preserved), comment text is collected separately per line (markers like
//! `// INVARIANT:` live there), and each line is tagged with whether it
//! sits inside a `#[cfg(test)]` item.

/// One physical line of a scanned source file.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// The line with comments and string/char-literal *contents* replaced
    /// by spaces. Delimiting quotes are kept, and byte columns line up
    /// with the original text, so token searches report real columns.
    pub code: String,
    /// Concatenated text of every comment (sub)span on this line.
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]`-gated block.
    pub in_test: bool,
}

/// A scanned source file: original lines plus their lexical views.
#[derive(Debug)]
pub struct SourceModel {
    /// Original text, split on `\n`.
    pub raw: Vec<String>,
    /// Lexical view of each line; same indexing as `raw`.
    pub lines: Vec<SourceLine>,
}

/// Lexer state carried across lines.
enum State {
    Normal,
    /// Inside `/* ... */`, tracking nesting depth.
    Block(u32),
    /// Inside a `"..."` string literal.
    Str,
    /// Inside a raw string literal terminated by `"` + this many `#`s.
    RawStr(u32),
}

impl SourceModel {
    /// Lex `text` into per-line code/comment views and mark
    /// `#[cfg(test)]` regions.
    pub fn parse(text: &str) -> SourceModel {
        let raw: Vec<String> = text.split('\n').map(str::to_owned).collect();
        let mut lines = Vec::with_capacity(raw.len());
        let mut state = State::Normal;

        for line in &raw {
            let (code, comment, next) = lex_line(line, state);
            state = next;
            lines.push(SourceLine {
                code,
                comment,
                in_test: false,
            });
        }

        let mut model = SourceModel { raw, lines };
        model.mark_test_regions();
        model
    }

    /// Tag every line that falls inside a block introduced by a
    /// `#[cfg(test)]` attribute (typically `mod tests { ... }`, but a
    /// gated `fn` or `impl` works the same way). Tracking is by brace
    /// depth over the blanked `code` view, so braces in strings and
    /// comments cannot desynchronize it.
    fn mark_test_regions(&mut self) {
        let mut depth: i64 = 0;
        // Depth values at which a #[cfg(test)] block was entered.
        let mut test_depths: Vec<i64> = Vec::new();
        let mut pending_attr = false;

        for i in 0..self.lines.len() {
            let code = self.lines[i].code.clone();
            if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
                pending_attr = true;
            }
            let mut in_test_here = !test_depths.is_empty();
            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_attr {
                            test_depths.push(depth);
                            pending_attr = false;
                            in_test_here = true;
                        }
                    }
                    '}' => {
                        if test_depths.last().is_some_and(|&d| d == depth) {
                            test_depths.pop();
                        }
                        depth -= 1;
                    }
                    // An item ending before any block (`#[cfg(test)] use x;`)
                    // consumes the attribute.
                    ';' if pending_attr && test_depths.is_empty() => {
                        pending_attr = false;
                    }
                    _ => {}
                }
            }
            if !test_depths.is_empty() {
                in_test_here = true;
            }
            self.lines[i].in_test = in_test_here;
        }
    }
}

/// Lex a single line starting in `state`; returns the blanked code view,
/// the collected comment text, and the state to carry into the next line.
fn lex_line(line: &str, mut state: State) -> (String, String, State) {
    let bytes: Vec<char> = line.chars().collect();
    let mut code = String::with_capacity(line.len());
    let mut comment = String::new();
    let mut i = 0usize;

    while i < bytes.len() {
        match state {
            State::Block(depth) => {
                if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    code.push(' ');
                    code.push(' ');
                    i += 2;
                    if depth == 1 {
                        state = State::Normal;
                    } else {
                        state = State::Block(depth - 1);
                    }
                } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    code.push(' ');
                    code.push(' ');
                    comment.push_str("/*");
                    i += 2;
                    state = State::Block(depth + 1);
                } else {
                    comment.push(bytes[i]);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if bytes[i] == '\\' {
                    code.push(' ');
                    if i + 1 < bytes.len() {
                        code.push(' ');
                    }
                    i += 2;
                } else if bytes[i] == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Normal;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if bytes[i] == '"' {
                    let mut n = 0u32;
                    // CAST: u32 -> usize is lossless on 64-bit targets
                    while n < hashes && bytes.get(i + 1 + n as usize) == Some(&'#') {
                        n += 1;
                    }
                    if n == hashes {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        i += 1 + hashes as usize; // CAST: u32 -> usize is lossless on 64-bit targets
                        state = State::Normal;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
            State::Normal => {
                let c = bytes[i];
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    // Line comment (incl. doc comments): rest of line.
                    comment.push_str(&bytes[i..].iter().collect::<String>());
                    for _ in i..bytes.len() {
                        code.push(' ');
                    }
                    i = bytes.len();
                } else if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    code.push(' ');
                    code.push(' ');
                    comment.push_str("/*");
                    i += 2;
                    state = State::Block(1);
                } else if c == '"' {
                    code.push('"');
                    i += 1;
                    state = State::Str;
                } else if c == 'r' && is_raw_string_start(&bytes, i) {
                    // r"..." / r#"..."# (optionally after b); count hashes.
                    code.push('r');
                    i += 1;
                    let mut hashes = 0u32;
                    while bytes.get(i) == Some(&'#') {
                        code.push('#');
                        hashes += 1;
                        i += 1;
                    }
                    code.push('"');
                    i += 1;
                    state = State::RawStr(hashes);
                } else if c == '\'' {
                    // Char/byte literal vs lifetime.
                    if bytes.get(i + 1) == Some(&'\\') {
                        // Escaped char literal: scan to the closing quote.
                        code.push('\'');
                        i += 1;
                        while i < bytes.len() && bytes[i] != '\'' {
                            if bytes[i] == '\\' {
                                code.push(' ');
                                code.push(' ');
                                i += 2;
                            } else {
                                code.push(' ');
                                i += 1;
                            }
                        }
                        if i < bytes.len() {
                            code.push('\'');
                            i += 1;
                        }
                    } else if bytes.get(i + 2) == Some(&'\'') {
                        // 'x' simple char literal.
                        code.push('\'');
                        code.push(' ');
                        code.push('\'');
                        i += 3;
                    } else {
                        // Lifetime: keep as-is.
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }

    // Line comments never span lines.
    (code, comment, state)
}

/// True when the `r` at `bytes[i]` begins a raw string literal.
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    // Must not be the tail of an identifier (`for r" ...` vs `var"`).
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = SourceModel::parse("let x = \"a.unwrap()\"; // b.unwrap()\n");
        assert!(!m.lines[0].code.contains("unwrap"));
        assert!(m.lines[0].comment.contains("b.unwrap()"));
        // Byte columns preserved.
        assert_eq!(m.lines[0].code.len(), m.raw[0].len());
    }

    #[test]
    fn block_comments_span_lines() {
        let m = SourceModel::parse("a /* x\n y */ b.unwrap()");
        assert!(!m.lines[0].code.contains('x'));
        assert!(!m.lines[1].code.contains('y'));
        assert!(m.lines[1].code.contains("b.unwrap()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = SourceModel::parse("let s = r#\"panic!(\"x\")\"#; f()");
        assert!(!m.lines[0].code.contains("panic"));
        assert!(m.lines[0].code.contains("f()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = SourceModel::parse(
            "fn f<'a>(c: char) -> &'a str { if c == '{' { \"\" } else { \"\" } }",
        );
        // The '{' literal must not unbalance brace tracking.
        assert!(m.lines[0].code.contains("<'a>"));
        assert!(!m.lines[0].code.contains("'{'"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let m = SourceModel::parse(src);
        assert!(!m.lines[0].in_test);
        assert!(m.lines[3].in_test, "body of mod tests");
        assert!(!m.lines[5].in_test, "after the test mod");
    }

    #[test]
    fn cfg_test_on_single_item() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() { x.unwrap(); }\n";
        let m = SourceModel::parse(src);
        assert!(
            !m.lines[2].in_test,
            "a `;`-terminated gated item must not leak"
        );
    }
}
