//! `check-trace` — structural validator for `tkdc-trace/v1` JSONL.
//!
//! CI runs this over trace files produced by `tkdc explain` and
//! `tkdc classify --trace-out` so a schema drift (renamed key, wrong
//! type, new prune cause nobody documented) fails the build instead of
//! silently breaking downstream trace consumers. The workspace vendors
//! no JSON crate, so this carries its own minimal recursive-descent
//! parser — strict enough for validation (it rejects trailing garbage,
//! unterminated strings, and malformed numbers), with no serialization
//! half.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their file order.
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (validation only needs f64 precision).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogates only arise for astral-plane
                            // characters, which our own writer never
                            // escapes; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Prune causes a `tkdc-trace/v1` line may carry.
const CAUSES: &[&str] = &[
    "threshold_high",
    "threshold_low",
    "tolerance",
    "exhausted",
    "grid",
    "group",
    "estimated",
];

fn check_uint(obj: &Json, key: &str, errs: &mut Vec<String>) {
    match obj.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {} // tkdc-lint: allow(float-eq)
        Some(other) => errs.push(format!(
            "`{key}` must be a non-negative integer, got {}",
            other.type_name()
        )),
        None => errs.push(format!("missing key `{key}`")),
    }
}

fn check_bound(obj: &Json, key: &str, errs: &mut Vec<String>) {
    match obj.get(key) {
        Some(Json::Num(_) | Json::Null) => {}
        Some(other) => errs.push(format!(
            "`{key}` must be a number or null, got {}",
            other.type_name()
        )),
        None => errs.push(format!("missing key `{key}`")),
    }
}

/// Validates one trace line against the `tkdc-trace/v1` shape. Returns
/// every problem found, empty when the line is valid.
pub fn validate_trace_line(line: &str) -> Vec<String> {
    let value = match parse_json(line) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let mut errs = Vec::new();
    if !matches!(value, Json::Obj(_)) {
        return vec![format!(
            "line must be a JSON object, got {}",
            value.type_name()
        )];
    }
    match value.get("schema") {
        Some(Json::Str(s)) if s == "tkdc-trace/v1" => {}
        Some(Json::Str(s)) => errs.push(format!("unknown schema `{s}`")),
        Some(other) => errs.push(format!(
            "`schema` must be a string, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `schema`".to_string()),
    }
    check_uint(&value, "query", &mut errs);
    for key in ["t_lo", "t_hi", "lower", "upper"] {
        check_bound(&value, key, &mut errs);
    }
    match value.get("cause") {
        Some(Json::Str(c)) if CAUSES.contains(&c.as_str()) => {}
        Some(Json::Str(c)) => errs.push(format!("unknown cause `{c}`")),
        Some(other) => errs.push(format!(
            "`cause` must be a string, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `cause`".to_string()),
    }
    for key in ["nodes_expanded", "kernel_evals", "bound_evals"] {
        check_uint(&value, key, &mut errs);
    }
    match value.get("steps") {
        Some(Json::Arr(steps)) => {
            for (i, step) in steps.iter().enumerate() {
                if !matches!(step, Json::Obj(_)) {
                    errs.push(format!("steps[{i}] must be an object"));
                    continue;
                }
                let mut step_errs = Vec::new();
                check_uint(step, "nodes", &mut step_errs);
                check_uint(step, "kevals", &mut step_errs);
                check_bound(step, "lower", &mut step_errs);
                check_bound(step, "upper", &mut step_errs);
                errs.extend(step_errs.into_iter().map(|e| format!("steps[{i}]: {e}")));
            }
        }
        Some(other) => errs.push(format!(
            "`steps` must be an array, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `steps`".to_string()),
    }
    errs
}

/// Validates a whole JSONL file's content. Returns `(lines, report)`:
/// the number of trace lines checked and, when anything failed, a
/// rustc-style diagnostic per problem.
pub fn check_trace_text(path: &str, text: &str) -> (usize, Vec<String>) {
    let mut checked = 0usize;
    let mut report = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        checked += 1;
        for err in validate_trace_line(line) {
            let mut msg = String::new();
            let _ = write!(msg, "{path}:{}: {err}", i + 1);
            report.push(msg);
        }
    }
    if checked == 0 {
        report.push(format!("{path}: no trace lines found"));
    }
    (checked, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "{\"schema\":\"tkdc-trace/v1\",\"query\":3,\"t_lo\":1.5e-3,\
                        \"t_hi\":1.5e-3,\"cause\":\"threshold_high\",\"lower\":2e-3,\
                        \"upper\":2.5e-3,\"nodes_expanded\":2,\"kernel_evals\":16,\
                        \"bound_evals\":6,\"steps\":[{\"nodes\":1,\"kevals\":0,\
                        \"lower\":0e0,\"upper\":5e-1}]}";

    #[test]
    fn parser_handles_scalars_and_nesting() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" -1.5e3 ").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            parse_json("\"a\\\"b\\u0041\"").unwrap(),
            Json::Str("a\"bA".to_string())
        );
        let v = parse_json("{\"a\":[1,true,{}],\"b\":null}").unwrap();
        assert!(matches!(v.get("a"), Some(Json::Arr(items)) if items.len() == 3));
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"open", "tru"] {
            assert!(parse_json(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn valid_line_passes() {
        assert!(validate_trace_line(GOOD).is_empty());
        // Null bounds (grid prune, no upper) are valid.
        let grid = GOOD.replace("\"upper\":2.5e-3", "\"upper\":null");
        assert!(validate_trace_line(&grid).is_empty());
        // Estimated backends (hbe/rff) record the `estimated` cause.
        let est = GOOD.replace("threshold_high", "estimated");
        assert!(validate_trace_line(&est).is_empty());
    }

    #[test]
    fn invalid_lines_are_reported() {
        let wrong_schema = GOOD.replace("tkdc-trace/v1", "tkdc-trace/v9");
        assert!(validate_trace_line(&wrong_schema)
            .iter()
            .any(|e| e.contains("unknown schema")));
        let bad_cause = GOOD.replace("threshold_high", "vibes");
        assert!(validate_trace_line(&bad_cause)
            .iter()
            .any(|e| e.contains("unknown cause")));
        let missing = GOOD.replace("\"bound_evals\":6,", "");
        assert!(validate_trace_line(&missing)
            .iter()
            .any(|e| e.contains("missing key `bound_evals`")));
        let bad_step = GOOD.replace("\"kevals\":0", "\"kevals\":-1");
        assert!(validate_trace_line(&bad_step)
            .iter()
            .any(|e| e.contains("steps[0]")));
        assert!(!validate_trace_line("[]").is_empty());
    }

    #[test]
    fn file_check_counts_lines_and_flags_empties() {
        let text = format!("{GOOD}\n\n{GOOD}\n");
        let (n, report) = check_trace_text("t.jsonl", &text);
        assert_eq!(n, 2);
        assert!(report.is_empty());
        let (n, report) = check_trace_text("e.jsonl", "\n");
        assert_eq!(n, 0);
        assert_eq!(report.len(), 1);
    }
}
