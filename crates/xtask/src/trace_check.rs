//! `check-trace` — structural validator for `tkdc-trace/v1` and
//! `tkdc-trace/v2` JSONL.
//!
//! CI runs this over trace files produced by `tkdc explain`,
//! `tkdc classify --trace-out` (per-query `v1` records), and
//! `--span-out FILE.jsonl` (stage-span `v2` records) so a schema drift
//! (renamed key, wrong type, new prune cause or stage nobody
//! documented) fails the build instead of silently breaking downstream
//! trace consumers. `v2` span records additionally get file-level
//! checks: balanced enter/exit phases and non-decreasing timestamps
//! per track. A file may mix both record kinds (a serve daemon writes
//! `v1` query traces and `v2` spans to separate sinks, but the
//! validator does not care). The workspace vendors no JSON crate, so
//! this carries its own minimal recursive-descent parser — strict
//! enough for validation (it rejects trailing garbage, unterminated
//! strings, and malformed numbers), with no serialization half.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their file order.
#[derive(Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (validation only needs f64 precision).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Json::Bool(true)),
            Some(b'f') => self.parse_literal("false", Json::Bool(false)),
            Some(b'n') => self.parse_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogates only arise for astral-plane
                            // characters, which our own writer never
                            // escapes; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input came from a
                    // &str, so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// Stage names a `tkdc-trace/v2` span record may carry.
///
/// Mirrors `STAGES` in `crates/obs/src/span.rs`; xtask is
/// dependency-free by design, so the closed vocabulary is duplicated
/// rather than imported. CI runs `check-trace` over real `--span-out`
/// output, so a one-sided edit of either list fails the build there.
const SPAN_STAGES: &[&str] = &[
    "classify.dispatch",
    "classify.leaf_sum",
    "classify.reassembly",
    "classify.traversal",
    "fit.backend_build",
    "fit.bootstrap",
    "fit.threshold",
    "fit.tree_build",
    "serve.exec",
    "serve.request",
];

/// Prune causes a `tkdc-trace/v1` line may carry.
const CAUSES: &[&str] = &[
    "threshold_high",
    "threshold_low",
    "tolerance",
    "exhausted",
    "grid",
    "group",
    "estimated",
];

fn check_uint(obj: &Json, key: &str, errs: &mut Vec<String>) {
    match obj.get(key) {
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {} // tkdc-lint: allow(float-eq)
        Some(other) => errs.push(format!(
            "`{key}` must be a non-negative integer, got {}",
            other.type_name()
        )),
        None => errs.push(format!("missing key `{key}`")),
    }
}

fn check_bound(obj: &Json, key: &str, errs: &mut Vec<String>) {
    match obj.get(key) {
        Some(Json::Num(_) | Json::Null) => {}
        Some(other) => errs.push(format!(
            "`{key}` must be a number or null, got {}",
            other.type_name()
        )),
        None => errs.push(format!("missing key `{key}`")),
    }
}

/// Validates one `tkdc-trace/v2` span record (the `schema` key has
/// already been checked).
fn validate_span_line(value: &Json, errs: &mut Vec<String>) {
    match value.get("kind") {
        Some(Json::Str(k)) if k == "span" => {}
        Some(Json::Str(k)) => errs.push(format!("unknown kind `{k}`")),
        Some(other) => errs.push(format!(
            "`kind` must be a string, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `kind`".to_string()),
    }
    match value.get("ph") {
        Some(Json::Str(p)) if p == "B" || p == "E" => {}
        Some(Json::Str(p)) => errs.push(format!("`ph` must be `B` or `E`, got `{p}`")),
        Some(other) => errs.push(format!("`ph` must be a string, got {}", other.type_name())),
        None => errs.push("missing key `ph`".to_string()),
    }
    match value.get("name") {
        Some(Json::Str(n)) if SPAN_STAGES.contains(&n.as_str()) => {}
        Some(Json::Str(n)) => errs.push(format!("unknown stage `{n}`")),
        Some(other) => errs.push(format!(
            "`name` must be a string, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `name`".to_string()),
    }
    check_uint(value, "tid", errs);
    check_uint(value, "ts_us", errs);
}

/// One parsed `tkdc-trace/v2` span event, for the file-level checks.
struct SpanEvent {
    tid: u64,
    ts_us: u64,
    is_enter: bool,
}

/// Extracts the file-level fields from an already-validated `v2` line.
fn span_event(line: &str) -> Option<SpanEvent> {
    let value = parse_json(line).ok()?;
    match value.get("schema") {
        Some(Json::Str(s)) if s == "tkdc-trace/v2" => {}
        _ => return None,
    }
    let uint = |key: &str| match value.get(key) {
        // CAST: validate_span_line guaranteed a non-negative integer.
        Some(Json::Num(n)) => Some(*n as u64),
        _ => None,
    };
    Some(SpanEvent {
        tid: uint("tid")?,
        ts_us: uint("ts_us")?,
        is_enter: matches!(value.get("ph"), Some(Json::Str(p)) if p == "B"),
    })
}

/// Validates one trace line against the `tkdc-trace/v1` (per-query) or
/// `tkdc-trace/v2` (span) shape, keyed on the `schema` field. Returns
/// every problem found, empty when the line is valid.
pub fn validate_trace_line(line: &str) -> Vec<String> {
    let value = match parse_json(line) {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let mut errs = Vec::new();
    if !matches!(value, Json::Obj(_)) {
        return vec![format!(
            "line must be a JSON object, got {}",
            value.type_name()
        )];
    }
    match value.get("schema") {
        Some(Json::Str(s)) if s == "tkdc-trace/v1" => {}
        Some(Json::Str(s)) if s == "tkdc-trace/v2" => {
            validate_span_line(&value, &mut errs);
            return errs;
        }
        Some(Json::Str(s)) => errs.push(format!("unknown schema `{s}`")),
        Some(other) => errs.push(format!(
            "`schema` must be a string, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `schema`".to_string()),
    }
    check_uint(&value, "query", &mut errs);
    for key in ["t_lo", "t_hi", "lower", "upper"] {
        check_bound(&value, key, &mut errs);
    }
    match value.get("cause") {
        Some(Json::Str(c)) if CAUSES.contains(&c.as_str()) => {}
        Some(Json::Str(c)) => errs.push(format!("unknown cause `{c}`")),
        Some(other) => errs.push(format!(
            "`cause` must be a string, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `cause`".to_string()),
    }
    for key in ["nodes_expanded", "kernel_evals", "bound_evals"] {
        check_uint(&value, key, &mut errs);
    }
    match value.get("steps") {
        Some(Json::Arr(steps)) => {
            for (i, step) in steps.iter().enumerate() {
                if !matches!(step, Json::Obj(_)) {
                    errs.push(format!("steps[{i}] must be an object"));
                    continue;
                }
                let mut step_errs = Vec::new();
                check_uint(step, "nodes", &mut step_errs);
                check_uint(step, "kevals", &mut step_errs);
                check_bound(step, "lower", &mut step_errs);
                check_bound(step, "upper", &mut step_errs);
                errs.extend(step_errs.into_iter().map(|e| format!("steps[{i}]: {e}")));
            }
        }
        Some(other) => errs.push(format!(
            "`steps` must be an array, got {}",
            other.type_name()
        )),
        None => errs.push("missing key `steps`".to_string()),
    }
    errs
}

/// Validates a whole JSONL file's content. Returns `(lines, report)`:
/// the number of trace lines checked and, when anything failed, a
/// rustc-style diagnostic per problem.
pub fn check_trace_text(path: &str, text: &str) -> (usize, Vec<String>) {
    let mut checked = 0usize;
    let mut report = Vec::new();
    // Per-track running state for v2 span records: open-span depth and
    // the last timestamp seen. Tracks are few; linear scan suffices.
    let mut tracks: Vec<(u64, i64, u64)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        checked += 1;
        let errs = validate_trace_line(line);
        let valid = errs.is_empty();
        for err in errs {
            let mut msg = String::new();
            let _ = write!(msg, "{path}:{}: {err}", i + 1);
            report.push(msg);
        }
        let Some(ev) = (if valid { span_event(line) } else { None }) else {
            continue;
        };
        let track = match tracks.iter_mut().find(|(tid, _, _)| *tid == ev.tid) {
            Some(t) => t,
            None => {
                tracks.push((ev.tid, 0, 0));
                // INVARIANT: just pushed, the vec is non-empty.
                tracks.last_mut().unwrap()
            }
        };
        if ev.ts_us < track.2 {
            report.push(format!(
                "{path}:{}: timestamps go backwards on track {} ({} after {})",
                i + 1,
                ev.tid,
                ev.ts_us,
                track.2
            ));
        }
        track.2 = ev.ts_us;
        track.1 += if ev.is_enter { 1 } else { -1 };
        if track.1 < 0 {
            report.push(format!(
                "{path}:{}: exit without a matching enter on track {}",
                i + 1,
                ev.tid
            ));
            track.1 = 0;
        }
    }
    for (tid, depth, _) in tracks {
        if depth > 0 {
            report.push(format!("{path}: {depth} unclosed span(s) on track {tid}"));
        }
    }
    if checked == 0 {
        report.push(format!("{path}: no trace lines found"));
    }
    (checked, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "{\"schema\":\"tkdc-trace/v1\",\"query\":3,\"t_lo\":1.5e-3,\
                        \"t_hi\":1.5e-3,\"cause\":\"threshold_high\",\"lower\":2e-3,\
                        \"upper\":2.5e-3,\"nodes_expanded\":2,\"kernel_evals\":16,\
                        \"bound_evals\":6,\"steps\":[{\"nodes\":1,\"kevals\":0,\
                        \"lower\":0e0,\"upper\":5e-1}]}";

    #[test]
    fn parser_handles_scalars_and_nesting() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" -1.5e3 ").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            parse_json("\"a\\\"b\\u0041\"").unwrap(),
            Json::Str("a\"bA".to_string())
        );
        let v = parse_json("{\"a\":[1,true,{}],\"b\":null}").unwrap();
        assert!(matches!(v.get("a"), Some(Json::Arr(items)) if items.len() == 3));
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "\"open", "tru"] {
            assert!(parse_json(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn valid_line_passes() {
        assert!(validate_trace_line(GOOD).is_empty());
        // Null bounds (grid prune, no upper) are valid.
        let grid = GOOD.replace("\"upper\":2.5e-3", "\"upper\":null");
        assert!(validate_trace_line(&grid).is_empty());
        // Estimated backends (hbe/rff) record the `estimated` cause.
        let est = GOOD.replace("threshold_high", "estimated");
        assert!(validate_trace_line(&est).is_empty());
    }

    #[test]
    fn invalid_lines_are_reported() {
        let wrong_schema = GOOD.replace("tkdc-trace/v1", "tkdc-trace/v9");
        assert!(validate_trace_line(&wrong_schema)
            .iter()
            .any(|e| e.contains("unknown schema")));
        let bad_cause = GOOD.replace("threshold_high", "vibes");
        assert!(validate_trace_line(&bad_cause)
            .iter()
            .any(|e| e.contains("unknown cause")));
        let missing = GOOD.replace("\"bound_evals\":6,", "");
        assert!(validate_trace_line(&missing)
            .iter()
            .any(|e| e.contains("missing key `bound_evals`")));
        let bad_step = GOOD.replace("\"kevals\":0", "\"kevals\":-1");
        assert!(validate_trace_line(&bad_step)
            .iter()
            .any(|e| e.contains("steps[0]")));
        assert!(!validate_trace_line("[]").is_empty());
    }

    #[test]
    fn file_check_counts_lines_and_flags_empties() {
        let text = format!("{GOOD}\n\n{GOOD}\n");
        let (n, report) = check_trace_text("t.jsonl", &text);
        assert_eq!(n, 2);
        assert!(report.is_empty());
        let (n, report) = check_trace_text("e.jsonl", "\n");
        assert_eq!(n, 0);
        assert_eq!(report.len(), 1);
    }

    // ---- tkdc-trace/v2 span records ----

    fn span(ph: &str, name: &str, tid: u64, ts: u64) -> String {
        format!(
            "{{\"schema\":\"tkdc-trace/v2\",\"kind\":\"span\",\"ph\":\"{ph}\",\
             \"name\":\"{name}\",\"tid\":{tid},\"ts_us\":{ts}}}"
        )
    }

    #[test]
    fn valid_span_lines_pass() {
        assert!(validate_trace_line(&span("B", "serve.request", 0, 10)).is_empty());
        assert!(validate_trace_line(&span("E", "classify.leaf_sum", 901, 20)).is_empty());
    }

    #[test]
    fn invalid_span_lines_are_reported() {
        let bad_stage = span("B", "classify.vibes", 0, 0);
        assert!(validate_trace_line(&bad_stage)
            .iter()
            .any(|e| e.contains("unknown stage")));
        let bad_ph = span("X", "serve.request", 0, 0);
        assert!(validate_trace_line(&bad_ph)
            .iter()
            .any(|e| e.contains("`ph` must be `B` or `E`")));
        let bad_kind = span("B", "serve.request", 0, 0).replace("\"span\"", "\"event\"");
        assert!(validate_trace_line(&bad_kind)
            .iter()
            .any(|e| e.contains("unknown kind")));
        let bad_tid = span("B", "serve.request", 0, 0).replace("\"tid\":0", "\"tid\":-1");
        assert!(validate_trace_line(&bad_tid)
            .iter()
            .any(|e| e.contains("`tid`")));
    }

    #[test]
    fn span_file_checks_balance_and_monotonic_timestamps() {
        // Balanced, nested, two tracks, interleaved: clean.
        let good = [
            span("B", "serve.request", 0, 0),
            span("B", "serve.exec", 0, 1),
            span("B", "classify.traversal", 7, 2),
            span("E", "classify.traversal", 7, 5),
            span("E", "serve.exec", 0, 6),
            span("E", "serve.request", 0, 8),
        ]
        .join("\n");
        let (n, report) = check_trace_text("s.jsonl", &good);
        assert_eq!(n, 6);
        assert!(report.is_empty(), "{report:?}");

        // Unclosed span at EOF.
        let unclosed = span("B", "serve.request", 0, 0);
        let (_, report) = check_trace_text("s.jsonl", &unclosed);
        assert!(report.iter().any(|e| e.contains("unclosed span")));

        // Exit before any enter.
        let orphan = span("E", "serve.request", 0, 0);
        let (_, report) = check_trace_text("s.jsonl", &orphan);
        assert!(report
            .iter()
            .any(|e| e.contains("without a matching enter")));

        // Timestamps must not go backwards within a track; other
        // tracks are independent timelines as far as ordering goes.
        let backwards = [
            span("B", "serve.request", 0, 10),
            span("E", "serve.request", 0, 4),
        ]
        .join("\n");
        let (_, report) = check_trace_text("s.jsonl", &backwards);
        assert!(report.iter().any(|e| e.contains("go backwards")));
    }

    #[test]
    fn mixed_v1_and_v2_files_are_valid() {
        let text = format!(
            "{GOOD}\n{}\n{}\n",
            span("B", "classify.dispatch", 3, 1),
            span("E", "classify.dispatch", 3, 9)
        );
        let (n, report) = check_trace_text("m.jsonl", &text);
        assert_eq!(n, 3);
        assert!(report.is_empty(), "{report:?}");
    }

    /// The golden fixture pair under `tests/golden/` pins the span
    /// validator's fire/allow behaviour the same way the lint rules
    /// pin theirs.
    #[test]
    fn span_golden_fixtures_fire_and_allow() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
        for (name, expect_clean) in [("trace_v2_allow", true), ("trace_v2_fire", false)] {
            let path = dir.join(format!("{name}.jsonl.golden"));
            // INVARIANT: a missing fixture is exactly what this
            // self-test exists to catch; panic with the path.
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
            let (n, report) = check_trace_text(name, &text);
            assert!(n > 0, "{name}: no lines checked");
            if expect_clean {
                assert!(report.is_empty(), "{name} must be clean, got {report:?}");
            } else {
                assert!(!report.is_empty(), "{name} must produce findings");
            }
        }
    }
}
