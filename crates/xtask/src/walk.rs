//! Workspace file discovery for the lint pass (std-only, no `walkdir`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", "results"];

/// Collect every `.rs` file under the workspace roots that `tkdc-lint`
/// checks: `crates/*/{src,tests,benches,examples}`, plus the top-level
/// `src/`, `tests/` and `examples/` of the root package. Paths are
/// returned relative to `root`, sorted for deterministic output.
pub fn workspace_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples"] {
        collect(&root.join(top), root, &mut files)?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let path = entry?.path();
            if !path.is_dir() {
                continue;
            }
            for sub in ["src", "tests", "benches", "examples"] {
                collect(&path.join(sub), root, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Every `.rs` file under an arbitrary directory (for explicit path
/// arguments), relative to `base`, sorted.
pub fn rust_files_under(dir: &Path, base: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect(dir, base, &mut files)?;
    files.sort();
    Ok(files)
}

/// Recursively gather `.rs` files under `dir` (if it exists) into `out`,
/// relative to `root`.
fn collect(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect(&path, root, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_and_skips_vendor() {
        // The xtask binary always runs from somewhere inside the repo;
        // resolve the workspace root the same way main() does.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .unwrap()
            .parent()
            .unwrap()
            .to_path_buf();
        let files = workspace_rust_files(&root).unwrap();
        assert!(files
            .iter()
            .any(|f| f.ends_with("crates/xtask/src/walk.rs")));
        assert!(files.iter().any(|f| f.ends_with("src/lib.rs")));
        assert!(!files.iter().any(|f| f.starts_with("vendor")));
        assert!(!files.iter().any(|f| f.starts_with("target")));
    }
}
