//! The nine `tkdc-lint` rules.
//!
//! Every rule runs over a [`SourceModel`] (comments and string contents
//! already blanked) so matches are real code tokens. Each violation can be
//! silenced three ways, in order of preference:
//!
//! 1. fix the code (e.g. `total_cmp` instead of `partial_cmp().unwrap()`);
//! 2. a justification marker comment — `// INVARIANT:` (L2), `// SAFETY:`
//!    (L4), `// CAST:` (L5), `// ORDERING:` (L7), `// JOIN:` (L9) — on the
//!    same or the preceding line (L7/L9 also accept a contiguous comment
//!    block above the enclosing statement);
//! 3. a targeted suppression `// tkdc-lint: allow(<rule>)` on the same or
//!    the preceding line (works for every rule; use sparingly).
//!
//! | id | rule | scope |
//! |----|------|-------|
//! | L1 `partial-cmp-unwrap` | no `partial_cmp(..).unwrap()/.expect(..)` — use `total_cmp` | everywhere |
//! | L2 `panic` | no `unwrap/expect/panic!/unreachable!/todo!/unimplemented!` without `// INVARIANT:` | library crates, non-test code |
//! | L3 `float-eq` | no `==`/`!=` against float operands | non-test code |
//! | L4 `unsafe` | every `unsafe` needs a `// SAFETY:` comment | everywhere |
//! | L5 `lossy-cast` | lossy numeric `as` casts need `// CAST:` | cast-checked crates, non-test code |
//! | L6 `std-sync-outside-facade` | no `std::sync`/`std::thread` outside the `tkdc-sync` facade | everywhere except `crates/sync` |
//! | L7 `relaxed-without-ordering-comment` | every `Ordering::Relaxed` needs an `// ORDERING:` justification | everywhere |
//! | L8 `static-mut` | no `static mut` globals | everywhere |
//! | L9 `spawn-without-join` | no discarded `thread::spawn` handle without `// JOIN:` | everywhere |

use crate::scan::SourceModel;
use std::path::Path;

/// Identifier and number of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// L1: `partial_cmp` chained into `unwrap`/`expect`.
    PartialCmpUnwrap,
    /// L2: panic-family call in library code without justification.
    Panic,
    /// L3: bit-exact float comparison.
    FloatEq,
    /// L4: `unsafe` without a `SAFETY:` comment.
    Unsafe,
    /// L5: lossy numeric cast without a `CAST:` comment.
    LossyCast,
    /// L6: `std::sync`/`std::thread` used outside the `tkdc-sync` facade.
    StdSyncOutsideFacade,
    /// L7: `Ordering::Relaxed` without an `ORDERING:` justification.
    RelaxedWithoutComment,
    /// L8: `static mut` global state.
    StaticMut,
    /// L9: `thread::spawn` whose `JoinHandle` is discarded.
    SpawnWithoutJoin,
}

impl Rule {
    /// Short kebab-case name used in diagnostics and allow markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::PartialCmpUnwrap => "partial-cmp-unwrap",
            Rule::Panic => "panic",
            Rule::FloatEq => "float-eq",
            Rule::Unsafe => "unsafe",
            Rule::LossyCast => "lossy-cast",
            Rule::StdSyncOutsideFacade => "std-sync-outside-facade",
            Rule::RelaxedWithoutComment => "relaxed-without-ordering-comment",
            Rule::StaticMut => "static-mut",
            Rule::SpawnWithoutJoin => "spawn-without-join",
        }
    }

    /// The `L<n>` code used in diagnostics and allow markers.
    pub fn code(self) -> &'static str {
        match self {
            Rule::PartialCmpUnwrap => "L1",
            Rule::Panic => "L2",
            Rule::FloatEq => "L3",
            Rule::Unsafe => "L4",
            Rule::LossyCast => "L5",
            Rule::StdSyncOutsideFacade => "L6",
            Rule::RelaxedWithoutComment => "L7",
            Rule::StaticMut => "L8",
            Rule::SpawnWithoutJoin => "L9",
        }
    }
}

/// A single diagnostic produced by the pass.
#[derive(Debug)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Path as given to [`check_file`].
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based (char) column number.
    pub col: usize,
    /// Human-readable description of the problem.
    pub message: String,
    /// The offending source line, verbatim.
    pub snippet: String,
    /// Suggested remediation.
    pub help: &'static str,
}

impl Violation {
    /// Render in rustc's `error[..]` style.
    pub fn render(&self) -> String {
        format!(
            "error[{code}/{name}]: {msg}\n  --> {path}:{line}:{col}\n   | {snippet}\n   = help: {help}\n",
            code = self.rule.code(),
            name = self.rule.name(),
            msg = self.message,
            path = self.path,
            line = self.line,
            col = self.col,
            snippet = self.snippet.trim_end(),
            help = self.help,
        )
    }
}

/// What kind of source a file is; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileKind {
    /// Test/bench/example code: L2, L3 and L5 do not apply at all.
    pub is_test_code: bool,
    /// Library-crate source (L2 applies).
    pub is_library: bool,
    /// Numeric hot-path crate (L5 applies).
    pub cast_checked: bool,
    /// The `tkdc-sync` facade itself — the one place allowed to name
    /// `std::sync`/`std::thread` (L6 does not apply).
    pub sync_facade: bool,
}

/// Library crates whose non-test code must be panic-free (L2): every
/// workspace crate. Binary crates (`cli`, `bench`, `xtask`) are held to
/// the same bar — a justified `INVARIANT:` unwrap at the top of `main`
/// is cheap, and panics in tooling cost debugging time like anywhere
/// else.
const LIBRARY_CRATES: &[&str] = &[
    "common",
    "linalg",
    "kernel",
    "index",
    "coreset",
    "core",
    "baselines",
    "alternatives",
    "data",
    "serve",
    "obs",
    "sync",
    "cli",
    "bench",
    "xtask",
];

/// Crates whose lossy `as` casts must be justified (L5): every
/// workspace crate (widened from the original numeric-hot-path subset;
/// a silently truncating cast in a baseline or the CLI skews results
/// just as effectively as one in the engine).
const CAST_CHECKED_CRATES: &[&str] = &[
    "common",
    "linalg",
    "kernel",
    "index",
    "coreset",
    "core",
    "baselines",
    "alternatives",
    "data",
    "serve",
    "obs",
    "sync",
    "cli",
    "bench",
    "xtask",
];

/// Classify a workspace-relative path.
pub fn classify(rel_path: &Path) -> FileKind {
    let comps: Vec<&str> = rel_path.iter().filter_map(|c| c.to_str()).collect();
    let is_test_code = comps
        .iter()
        .any(|c| *c == "tests" || *c == "benches" || *c == "examples");
    let crate_name = match comps.as_slice() {
        ["crates", name, rest @ ..] if !rest.is_empty() => Some(*name),
        _ => None,
    };
    // `src/` at the workspace root is the tkdc-repro library.
    let in_src = comps.contains(&"src");
    let is_library = !is_test_code
        && in_src
        && match crate_name {
            Some(name) => LIBRARY_CRATES.contains(&name),
            None => comps.first() == Some(&"src"),
        };
    let cast_checked = !is_test_code
        && in_src
        && matches!(crate_name, Some(name) if CAST_CHECKED_CRATES.contains(&name));
    FileKind {
        is_test_code,
        is_library,
        cast_checked,
        sync_facade: crate_name == Some("sync"),
    }
}

/// Run every applicable rule over one file's text.
pub fn check_file(rel_path: &str, text: &str, kind: FileKind) -> Vec<Violation> {
    let model = SourceModel::parse(text);
    let mut out = Vec::new();
    for idx in 0..model.lines.len() {
        lint_partial_cmp_unwrap(&model, idx, rel_path, &mut out);
        lint_unsafe(&model, idx, rel_path, &mut out);
        if !kind.sync_facade {
            lint_std_sync(&model, idx, rel_path, &mut out);
        }
        lint_relaxed_ordering(&model, idx, rel_path, &mut out);
        lint_static_mut(&model, idx, rel_path, &mut out);
        lint_spawn_without_join(&model, idx, rel_path, &mut out);
        let line_is_test = kind.is_test_code || model.lines[idx].in_test;
        if !line_is_test {
            if kind.is_library {
                lint_panic(&model, idx, rel_path, &mut out);
            }
            lint_float_eq(&model, idx, rel_path, &mut out);
            if kind.cast_checked {
                lint_lossy_cast(&model, idx, rel_path, &mut out);
            }
        }
    }
    out
}

/// True when line `idx` (or the line above) carries `marker` in a comment.
fn has_marker(model: &SourceModel, idx: usize, marker: &str) -> bool {
    let here = &model.lines[idx].comment;
    if here.contains(marker) {
        return true;
    }
    idx > 0 && model.lines[idx - 1].comment.contains(marker)
}

/// Widest distance (in lines) [`has_marker_for_statement`] scans upward.
const MARKER_SCAN_LIMIT: usize = 16;

/// True when `marker` appears in a comment attached to the *statement*
/// containing line `idx`: on the line itself, or scanning upward through
/// the contiguous run of comment-only lines and unterminated
/// continuation lines of the same expression. The scan stops at a blank
/// line or at a code line that ends a previous statement/item (trailing
/// `;`, `{` or `}`), so a marker can never leak across statements.
///
/// L7 and L9 use this instead of [`has_marker`] because their
/// justifications are typically multi-line comment blocks above a
/// multi-line call (`compare_exchange` spreads its orderings over
/// several lines).
fn has_marker_for_statement(model: &SourceModel, idx: usize, marker: &str) -> bool {
    if model.lines[idx].comment.contains(marker) {
        return true;
    }
    let mut i = idx;
    for _ in 0..MARKER_SCAN_LIMIT {
        if i == 0 {
            return false;
        }
        i -= 1;
        let line = &model.lines[i];
        if line.comment.contains(marker) {
            return true;
        }
        let code = line.code.trim();
        if code.is_empty() {
            if line.comment.is_empty() {
                return false; // blank line: the block above is detached
            }
            // Comment-only line without the marker: keep scanning up.
        } else if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return false; // previous statement/item boundary
        }
    }
    false
}

/// True when the violation on line `idx` is suppressed for `rule` — either
/// by `tkdc-lint: allow(<name|code>)` or (L3 only) an
/// `#[allow(clippy::float_cmp)]` attribute, on this or the previous line.
fn is_allowed(model: &SourceModel, idx: usize, rule: Rule) -> bool {
    let by_name = format!("tkdc-lint: allow({})", rule.name());
    let by_code = format!("tkdc-lint: allow({})", rule.code());
    if has_marker(model, idx, &by_name) || has_marker(model, idx, &by_code) {
        return true;
    }
    if rule == Rule::FloatEq {
        // Keep `xtask lint` and clippy in agreement: a scoped clippy
        // allow is an accepted justification for L3.
        let attr = "allow(clippy::float_cmp)";
        let code_here = &model.lines[idx].code;
        if code_here.contains(attr) {
            return true;
        }
        if idx > 0 && model.lines[idx - 1].code.contains(attr) {
            return true;
        }
    }
    false
}

/// A candidate violation before the allow-marker check.
struct Finding {
    rule: Rule,
    col0: usize,
    message: String,
    help: &'static str,
}

fn push(model: &SourceModel, idx: usize, path: &str, f: Finding, out: &mut Vec<Violation>) {
    if is_allowed(model, idx, f.rule) {
        return;
    }
    out.push(Violation {
        rule: f.rule,
        path: path.to_owned(),
        line: idx + 1,
        col: f.col0 + 1,
        message: f.message,
        snippet: model.raw[idx].clone(),
        help: f.help,
    });
}

/// L1 — `partial_cmp(..).unwrap()` / `.expect(..)`.
///
/// A NaN reaching such a comparator panics mid-sort; `f64::total_cmp`
/// gives the IEEE 754 total order instead. The chain is matched on the
/// same line or the next (rustfmt may break before `.unwrap()`).
fn lint_partial_cmp_unwrap(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    let Some(pos) = code.find("partial_cmp") else {
        return;
    };
    let tail = &code[pos..];
    let chained_here = tail.contains(".unwrap()") || tail.contains(".expect(");
    let chained_next = !chained_here
        && model.lines.get(idx + 1).is_some_and(|l| {
            let t = l.code.trim_start();
            t.starts_with(".unwrap()") || t.starts_with(".expect(")
        });
    if chained_here || chained_next {
        push(
            model,
            idx,
            path,
            Finding {
                rule: Rule::PartialCmpUnwrap,
                col0: pos,
                message: "`partial_cmp` result unwrapped — panics on NaN".to_owned(),
                help: "use `f64::total_cmp` (or handle the `None` explicitly)",
            },
            out,
        );
    }
}

/// Panic-family tokens searched by L2: `(needle, is_method)`.
const PANIC_TOKENS: &[(&str, bool)] = &[
    (".unwrap()", true),
    (".expect(", true),
    ("panic!", false),
    ("unreachable!", false),
    ("todo!", false),
    ("unimplemented!", false),
];

/// L2 — panic-family call in library code without an `// INVARIANT:`
/// justification.
fn lint_panic(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    for &(needle, is_method) in PANIC_TOKENS {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(needle) {
            let pos = from + rel;
            from = pos + needle.len();
            if !is_method {
                // Macro names must start at an identifier boundary
                // (don't fire on e.g. `my_panic!`).
                let prev = code[..pos].chars().next_back();
                if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                    continue;
                }
            } else {
                // A `partial_cmp` chain is L1's finding; its diagnostic
                // points at the actual fix (`total_cmp`), so don't double-
                // report the same token here.
                let chained_to_partial_cmp = code[..pos].contains("partial_cmp")
                    || (idx > 0
                        && code[..pos].trim().is_empty()
                        && model.lines[idx - 1].code.contains("partial_cmp"));
                if chained_to_partial_cmp {
                    continue;
                }
                // `self.expect(..)` is a user-defined method (e.g. a
                // parser's token-expectation combinator returning
                // `Result`), not `Option::expect`.
                if needle == ".expect(" && code[..pos].ends_with("self") {
                    continue;
                }
            }
            if has_marker(model, idx, "INVARIANT:") {
                continue;
            }
            push(
                model,
                idx,
                path,
                Finding {
                    rule: Rule::Panic,
                    col0: pos,
                    message: format!(
                        "`{}` in library code without an `// INVARIANT:` justification",
                        needle.trim_start_matches('.')
                    ),
                    help: "return a `Result`, or add `// INVARIANT: <why this cannot fail>`",
                },
                out,
            );
        }
    }
}

/// L3 — bit-exact float `==`/`!=`.
///
/// Token-level approximation: the comparison fires when either operand
/// *looks* floating-point — a float literal (`0.0`, `1e-6`, `1f64`), an
/// `f64::`/`f32::` path (constants like `NEG_INFINITY`), or a float-typed
/// suffix. Comparisons between two float-typed *variables* are invisible
/// to a type-blind pass; clippy's `float_cmp` (denied workspace-wide)
/// covers those.
fn lint_float_eq(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    let chars: Vec<char> = code.chars().collect();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        let two: String = chars[i..i + 2].iter().collect();
        let is_eq = two == "==";
        let is_ne = two == "!=";
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Exclude `<=`, `>=`, `===`-like runs, `=>`, and `!==`.
        let prev = if i > 0 { chars[i - 1] } else { ' ' };
        let next = chars.get(i + 2).copied().unwrap_or(' ');
        if is_eq && (prev == '<' || prev == '>' || prev == '!' || prev == '=' || next == '=') {
            i += 2;
            continue;
        }
        let lhs: String = chars[..i].iter().collect();
        let rhs: String = chars[i + 2..].iter().collect();
        if operand_is_floatish(trailing_token(&lhs)) || operand_is_floatish(leading_token(&rhs)) {
            push(
                model,
                idx,
                path,
                Finding {
                    rule: Rule::FloatEq,
                    col0: i,
                    message: "bit-exact float comparison".to_owned(),
                    help: "compare against a tolerance, restructure, or justify with `#[allow(clippy::float_cmp)]` + `// tkdc-lint: allow(float-eq)`",
                },
                out,
            );
        }
        i += 2;
    }
}

/// True for characters that can continue an operand token. `-`/`+` count
/// only as the interior sign of a float exponent (`1e-6`), which is why
/// the neighbouring character is consulted.
fn is_token_char(c: char, prev: Option<char>) -> bool {
    c.is_alphanumeric()
        || matches!(c, '_' | '.' | ':')
        || (matches!(c, '-' | '+') && matches!(prev, Some('e' | 'E')))
}

/// Last operand-ish token of `s` (scanning backwards).
fn trailing_token(s: &str) -> &str {
    let t = s.trim_end();
    let chars: Vec<(usize, char)> = t.char_indices().collect();
    let mut i = chars.len();
    while i > 0 {
        let c = chars[i - 1].1;
        let prev = if i >= 2 { Some(chars[i - 2].1) } else { None };
        // A sign is interior only when digits already follow it.
        let interior = i < chars.len();
        if c.is_alphanumeric()
            || matches!(c, '_' | '.' | ':')
            || (interior && matches!(c, '-' | '+') && matches!(prev, Some('e' | 'E')))
        {
            i -= 1;
        } else {
            break;
        }
    }
    if i == chars.len() {
        ""
    } else {
        &t[chars[i].0..]
    }
}

/// First operand-ish token of `s` (scanning forwards), ignoring unary
/// minus and an opening parenthesis.
fn leading_token(s: &str) -> &str {
    let t = s.trim_start().trim_start_matches(['-', '(']);
    let chars: Vec<(usize, char)> = t.char_indices().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i].1;
        let prev = if i > 0 { Some(chars[i - 1].1) } else { None };
        if is_token_char(c, prev) {
            i += 1;
        } else {
            break;
        }
    }
    if i == 0 {
        ""
    } else {
        let (last_idx, last_c) = chars[i - 1];
        &t[..last_idx + last_c.len_utf8()]
    }
}

/// Does this token read as a floating-point operand?
fn operand_is_floatish(tok: &str) -> bool {
    if tok.is_empty() {
        return false;
    }
    if tok.starts_with("f64::") || tok.starts_with("f32::") {
        return true;
    }
    if tok.ends_with("f64") || tok.ends_with("f32") {
        // Literal suffix (`1f64`) — but not an identifier like `to_f64`.
        let head = &tok[..tok.len() - 3];
        if !head.is_empty()
            && head
                .chars()
                .all(|c| c.is_ascii_digit() || c == '_' || c == '.')
        {
            return true;
        }
    }
    // Digits containing a decimal point (`0.0`, `1.`, `.5`) or an
    // exponent (`1e-6` is split at '-'; `1e6` keeps the exponent).
    let mut saw_digit = false;
    let mut saw_dot = false;
    let mut saw_exp = false;
    for c in tok.chars() {
        match c {
            '0'..='9' | '_' => saw_digit = true,
            '.' => saw_dot = true,
            'e' | 'E' if saw_digit => saw_exp = true,
            '-' | '+' if saw_exp => {}
            _ => return false,
        }
    }
    saw_digit && (saw_dot || saw_exp)
}

/// L4 — `unsafe` without a `// SAFETY:` comment on the same or previous
/// line. (The workspace currently forbids `unsafe` outright via
/// `#![forbid(unsafe_code)]`; this rule documents the bar any future
/// exception must clear.)
fn lint_unsafe(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("unsafe") {
        let pos = from + rel;
        from = pos + "unsafe".len();
        let prev = code[..pos].chars().next_back();
        let next = code[pos + 6..].chars().next();
        if prev.is_some_and(|c| c.is_alphanumeric() || c == '_')
            || next.is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            continue; // part of a longer identifier
        }
        if has_marker(model, idx, "SAFETY:") {
            continue;
        }
        push(
            model,
            idx,
            path,
            Finding {
                rule: Rule::Unsafe,
                col0: pos,
                message: "`unsafe` without a `// SAFETY:` comment".to_owned(),
                help: "document the invariant that makes this sound: `// SAFETY: ...`",
            },
            out,
        );
    }
}

/// Cast targets L5 treats as lossy. `as f64` is exempt: every integer
/// source type used in this workspace is exactly representable at the
/// magnitudes involved, and flagging it would bury the real risks.
const LOSSY_TARGETS: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32",
];

/// L5 — lossy numeric `as` cast without a `// CAST:` justification.
fn lint_lossy_cast(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    let chars: Vec<char> = code.chars().collect();
    let mut from = 0usize;
    while let Some(rel) = code[from..].find(" as ") {
        let pos = from + rel + 1; // position of `as`
        from = pos + 3;
        // Word-boundary check on the left of ` as ` is implied by the
        // leading space; read the target type token after it.
        let after: String = chars[pos + 3..]
            .iter()
            .skip_while(|c| c.is_whitespace())
            .take_while(|c| c.is_alphanumeric() || **c == '_')
            .collect();
        if !LOSSY_TARGETS.contains(&after.as_str()) {
            continue;
        }
        if has_marker(model, idx, "CAST:") {
            continue;
        }
        push(
            model,
            idx,
            path,
            Finding {
                rule: Rule::LossyCast,
                col0: pos,
                message: format!("lossy `as {after}` cast on a numeric hot path"),
                help: "use a checked conversion, or add `// CAST: <why the value fits>`",
            },
            out,
        );
    }
}

/// L6 — `std::sync` / `std::thread` outside the `tkdc-sync` facade.
///
/// The facade is the workspace's single doorway to concurrency
/// primitives: it compiles to plain `std` re-exports normally and swaps
/// in the vendored model checker under `--cfg tkdc_model_check`. A
/// direct `std` import silently opts that code out of every model-check
/// harness.
fn lint_std_sync(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    for needle in ["std::sync", "std::thread"] {
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(needle) {
            let pos = from + rel;
            from = pos + needle.len();
            // Left boundary: not the tail of a longer path/identifier
            // (`tkdc_sync::` does not contain the needle, but be safe
            // against e.g. `my_std::sync`).
            let prev = code[..pos].chars().next_back();
            if prev.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':') {
                continue;
            }
            // Right boundary: `std::synchrotron` must not match.
            let next = code[pos + needle.len()..].chars().next();
            if next.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            push(
                model,
                idx,
                path,
                Finding {
                    rule: Rule::StdSyncOutsideFacade,
                    col0: pos,
                    message: format!("`{needle}` used outside the `tkdc-sync` facade"),
                    help: "import from `tkdc_sync` so `cargo xtask model-check` \
                           can instrument this code",
                },
                out,
            );
        }
    }
}

/// L7 — `Ordering::Relaxed` without an `// ORDERING:` justification on
/// the enclosing statement.
///
/// Relaxed is the one ordering that provides *no* synchronization; every
/// use must say why that is enough (and, ideally, which model-check
/// harness exercises the claim).
fn lint_relaxed_ordering(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("Ordering::Relaxed") {
        let pos = from + rel;
        from = pos + "Ordering::Relaxed".len();
        let prev = code[..pos].chars().next_back();
        if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue; // e.g. `MyOrdering::Relaxed`
        }
        if has_marker_for_statement(model, idx, "ORDERING:") {
            continue;
        }
        push(
            model,
            idx,
            path,
            Finding {
                rule: Rule::RelaxedWithoutComment,
                col0: pos,
                message: "`Ordering::Relaxed` without an `// ORDERING:` justification".to_owned(),
                help: "explain why no synchronization is needed: \
                       `// ORDERING: <why relaxed suffices>` (strengthen to \
                       Acquire/Release if you cannot)",
            },
            out,
        );
    }
}

/// L8 — `static mut` global state.
///
/// Always a data-race hazard (and `unsafe` to touch); the workspace has
/// atomics and `OnceLock` through the facade for every legitimate use.
fn lint_static_mut(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    let mut from = 0usize;
    while let Some(rel) = code[from..].find("static mut ") {
        let pos = from + rel;
        from = pos + "static mut ".len();
        let prev = code[..pos].chars().next_back();
        if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        push(
            model,
            idx,
            path,
            Finding {
                rule: Rule::StaticMut,
                col0: pos,
                message: "`static mut` global state".to_owned(),
                help: "use an atomic or `OnceLock` from `tkdc_sync` instead",
            },
            out,
        );
    }
}

/// L9 — `thread::spawn` in statement position with its `JoinHandle`
/// discarded.
///
/// A detached thread outlives every `join()` barrier: its writes are
/// unpublished, its panics unobserved, and a process exit can cut it off
/// mid-work. The heuristic is deliberately narrow — it fires only when
/// the spawn *is* a whole statement (the call terminates in `;` with
/// nothing binding it, or sits behind `let _ =`), where the handle
/// provably goes nowhere. Handles stored, pushed, returned, or produced
/// as a block's tail expression are someone's responsibility to join.
/// Scoped `scope.spawn` is exempt: the scope joins implicitly.
fn lint_spawn_without_join(model: &SourceModel, idx: usize, path: &str, out: &mut Vec<Violation>) {
    let code = &model.lines[idx].code;
    let Some(pos) = code.find("thread::spawn(") else {
        return;
    };
    // Strip the path prefix (`tkdc_sync::`, `std::`) the needle may sit
    // inside of, then require statement position.
    let before =
        code[..pos].trim_end_matches(|c: char| c.is_alphanumeric() || c == '_' || c == ':');
    let before = before.trim();
    let explicitly_dropped = before.ends_with("let _ =") || before == "let _ =";
    if !before.is_empty() && !explicitly_dropped {
        return; // the handle flows into an expression
    }
    // The handle is discarded only when the spawn call itself is the
    // whole `;`-terminated statement. A block tail expression is the
    // block's value; a chained call (`.join()`) consumes the handle.
    if spawn_call_terminator(model, idx, pos) != Some(';') {
        return;
    }
    if has_marker_for_statement(model, idx, "JOIN:") {
        return;
    }
    push(
        model,
        idx,
        path,
        Finding {
            rule: Rule::SpawnWithoutJoin,
            col0: pos,
            message: "`thread::spawn` with a discarded `JoinHandle`".to_owned(),
            help: "keep the handle and `join()` it (or use `thread::scope`); \
                   justify a deliberate detach with `// JOIN: <why>`",
        },
        out,
    );
}

/// Lines [`spawn_call_terminator`] is willing to scan forward through.
const SPAWN_SCAN_LIMIT: usize = 64;

/// The first non-whitespace character after the closing parenthesis of
/// the call starting at `(line idx, col pos)`, scanning forward across
/// lines. `None` when the call never closes within the scan limit (give
/// the benefit of the doubt: don't fire).
fn spawn_call_terminator(model: &SourceModel, idx: usize, pos: usize) -> Option<char> {
    let mut depth = 0usize;
    let mut opened = false;
    for (di, line) in model.lines[idx..].iter().take(SPAWN_SCAN_LIMIT).enumerate() {
        let code = &line.code;
        let start = if di == 0 { pos } else { 0 };
        let mut chars = code.chars().skip(start).peekable();
        while let Some(c) = chars.next() {
            match c {
                '(' => {
                    depth += 1;
                    opened = true;
                }
                ')' if opened => {
                    depth -= 1;
                    if depth == 0 {
                        // Terminator may be on this line or a later one.
                        let rest: String = chars.collect();
                        if let Some(t) = rest.trim_start().chars().next() {
                            return Some(t);
                        }
                        return model.lines[idx + di + 1..]
                            .iter()
                            .take(SPAWN_SCAN_LIMIT)
                            .find_map(|l| l.code.trim_start().chars().next());
                    }
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    const LIB: FileKind = FileKind {
        is_test_code: false,
        is_library: true,
        cast_checked: true,
        sync_facade: false,
    };

    fn check(src: &str) -> Vec<Violation> {
        check_file("crates/core/src/fixture.rs", src, LIB)
    }

    fn rules(src: &str) -> Vec<Rule> {
        check(src).into_iter().map(|v| v.rule).collect()
    }

    // ---- L1 ----

    #[test]
    fn l1_fires_on_partial_cmp_unwrap() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
        assert_eq!(rules(src), vec![Rule::PartialCmpUnwrap]);
    }

    #[test]
    fn l1_fires_on_partial_cmp_expect_and_next_line_chain() {
        assert_eq!(
            rules("let o = a.partial_cmp(&b).expect(\"finite\");"),
            vec![Rule::PartialCmpUnwrap]
        );
        // INVARIANT markers do not silence L1 (the fix is total_cmp).
        let split = "let o = a.partial_cmp(&b)\n    .unwrap();";
        assert!(rules(split).contains(&Rule::PartialCmpUnwrap));
    }

    #[test]
    fn l1_clean_on_total_cmp_and_unwrap_or() {
        assert!(rules("v.sort_by(f64::total_cmp);").is_empty());
        // INVARIANT: fixture — unwrap_or is not an unwrap.
        assert!(rules("let o = a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal); // INVARIANT: fallback\n").is_empty());
    }

    #[test]
    fn l1_fires_even_in_test_code() {
        let v = check_file(
            "tests/t.rs",
            "fn t() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
            FileKind {
                is_test_code: true,
                is_library: false,
                cast_checked: false,
                sync_facade: false,
            },
        );
        assert_eq!(v.len(), 1);
    }

    // ---- L2 ----

    #[test]
    fn l2_fires_on_each_panic_family_member() {
        for src in [
            "fn f() { x.unwrap(); }",
            "fn f() { x.expect(\"m\"); }",
            "fn f() { panic!(\"boom\"); }",
            "fn f() { unreachable!(); }",
            "fn f() { todo!(); }",
        ] {
            assert_eq!(rules(src), vec![Rule::Panic], "{src}");
        }
    }

    #[test]
    fn l2_respects_invariant_marker_and_test_code() {
        assert!(rules("fn f() { x.unwrap(); } // INVARIANT: x was just inserted").is_empty());
        let above = "// INVARIANT: verified non-empty above\nfn f() { x.unwrap(); }";
        assert!(rules(above).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}";
        assert!(rules(in_tests).is_empty());
    }

    #[test]
    fn l2_skips_strings_doc_comments_and_idents() {
        assert!(rules("let s = \"don't panic!\";").is_empty());
        assert!(rules("/// Panics: calls `panic!` when empty.\nfn f() {}").is_empty());
        assert!(rules("fn f() { my_unreachable!(); }").is_empty());
        assert!(rules("fn f() { x.unwrap_or(0); }").is_empty());
    }

    #[test]
    fn l2_applies_to_binary_crates_too() {
        // Since the crate-set extension, `cli`/`bench`/`xtask` are held
        // to the same panic-free bar as the libraries.
        let v = check_file(
            "crates/cli/src/main.rs",
            "fn main() { run().unwrap(); }",
            classify(Path::new("crates/cli/src/main.rs")),
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::Panic);
    }

    // ---- L3 ----

    #[test]
    fn l3_fires_on_float_literal_and_const_comparisons() {
        assert_eq!(rules("if x == 0.0 { }"), vec![Rule::FloatEq]);
        assert_eq!(rules("if 1e-6 != y { }"), vec![Rule::FloatEq]);
        assert_eq!(rules("if x == f64::NEG_INFINITY { }"), vec![Rule::FloatEq]);
        assert_eq!(rules("if x == 1f64 { }"), vec![Rule::FloatEq]);
    }

    #[test]
    fn l3_clean_on_integer_enum_and_comparison_operators() {
        assert!(rules("if n == 0 { }").is_empty());
        assert!(rules("if kind == KernelKind::Gaussian { }").is_empty());
        assert!(rules("if x <= 0.5 { }").is_empty());
        assert!(rules("if x >= 0.5 { }").is_empty());
        assert!(rules("let ok = v.len() == 3;").is_empty());
    }

    #[test]
    fn l3_respects_allow_markers_and_clippy_attr() {
        assert!(rules("if x == 0.0 { } // tkdc-lint: allow(float-eq)").is_empty());
        assert!(rules("// tkdc-lint: allow(L3)\nif x == 0.0 { }").is_empty());
        assert!(rules("#[allow(clippy::float_cmp)]\nfn f() { let _ = x == 0.0; }").is_empty());
    }

    // ---- L4 ----

    #[test]
    fn l4_fires_on_unjustified_unsafe() {
        assert_eq!(
            rules("fn f() { let p = unsafe { *ptr }; }"),
            vec![Rule::Unsafe]
        );
    }

    #[test]
    fn l4_clean_with_safety_comment_or_in_prose() {
        assert!(rules(
            "// SAFETY: ptr is non-null, checked above\nfn f() { let p = unsafe { *ptr }; }"
        )
        .is_empty());
        // The word inside a comment is not an unsafe block.
        assert!(rules("// doing this without a lock would be unsafe\nfn f() {}").is_empty());
        assert!(rules("let msg = \"unsafe\";").is_empty());
    }

    // ---- L5 ----

    #[test]
    fn l5_fires_on_lossy_casts() {
        assert_eq!(rules("let i = x.floor() as usize;"), vec![Rule::LossyCast]);
        assert_eq!(rules("let k = n as u32;"), vec![Rule::LossyCast]);
        assert_eq!(rules("let f = x as f32;"), vec![Rule::LossyCast]);
    }

    #[test]
    fn l5_clean_on_f64_casts_and_markers_and_fires_workspace_wide() {
        assert!(rules("let f = n as f64;").is_empty());
        assert!(
            rules("let i = x.floor() as usize; // CAST: x ∈ [0, nbins) checked above").is_empty()
        );
        // Since the crate-set extension every crate is cast-checked.
        let other = check_file(
            "crates/baselines/src/x.rs",
            "fn f() { let i = x as usize; }",
            classify(Path::new("crates/baselines/src/x.rs")),
        );
        assert_eq!(other.len(), 1);
        assert_eq!(other[0].rule, Rule::LossyCast);
        // Casts in test code are exempt.
        let in_tests = "#[cfg(test)]\nmod tests {\n fn t() { let i = x as usize; }\n}";
        assert!(rules(in_tests).is_empty());
    }

    // ---- classification & rendering ----

    #[test]
    fn classify_buckets_paths() {
        let lib = classify(Path::new("crates/core/src/bound.rs"));
        assert!(lib.is_library && lib.cast_checked && !lib.is_test_code);
        let backend = classify(Path::new("crates/core/src/backend/hbe.rs"));
        assert!(backend.is_library && backend.cast_checked && !backend.is_test_code);
        let lin = classify(Path::new("crates/linalg/src/pca.rs"));
        assert!(lin.is_library && lin.cast_checked);
        let cs = classify(Path::new("crates/coreset/src/stream.rs"));
        assert!(cs.is_library && cs.cast_checked && !cs.sync_facade);
        let t = classify(Path::new("crates/core/tests/it.rs"));
        assert!(t.is_test_code && !t.is_library);
        let bench = classify(Path::new("crates/bench/benches/kernel.rs"));
        assert!(bench.is_test_code);
        let root = classify(Path::new("src/lib.rs"));
        assert!(root.is_library && !root.cast_checked && !root.sync_facade);
        let xtask = classify(Path::new("crates/xtask/src/main.rs"));
        assert!(xtask.is_library && !xtask.sync_facade);
        let facade = classify(Path::new("crates/sync/src/lib.rs"));
        assert!(facade.sync_facade && facade.is_library);
    }

    // ---- L6 ----

    #[test]
    fn l6_fires_on_std_sync_and_thread_paths() {
        let v = rules("use std::sync::atomic::AtomicU64;");
        assert_eq!(v, vec![Rule::StdSyncOutsideFacade]);
        let v = rules("let h = std::thread::spawn(f);");
        assert_eq!(v, vec![Rule::StdSyncOutsideFacade]);
        // Fires in test code too: tests using raw std threads would
        // silently escape the model checker.
        let t = check_file(
            "tests/t.rs",
            "use std::sync::Mutex;",
            classify(Path::new("tests/t.rs")),
        );
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn l6_clean_on_facade_imports_and_inside_facade() {
        assert!(rules("use tkdc_sync::atomic::{AtomicU64, Ordering};").is_empty());
        assert!(rules("use tkdc_sync::thread;").is_empty());
        assert!(rules("use std::time::Duration;").is_empty());
        // Prose and doc links are comment text, not code.
        assert!(rules("// matches the std::sync::Mutex contract\nfn f() {}").is_empty());
        // The facade itself is the sanctioned user.
        let v = check_file(
            "crates/sync/src/lib.rs",
            "pub use std::sync::{Arc, Mutex};\npub use std::thread::spawn;",
            classify(Path::new("crates/sync/src/lib.rs")),
        );
        assert!(v.is_empty());
    }

    #[test]
    fn l6_respects_allow_marker() {
        let src = "use std::sync::mpsc; // tkdc-lint: allow(std-sync-outside-facade)";
        assert!(rules(src).is_empty());
    }

    // ---- L7 ----

    #[test]
    fn l7_fires_on_bare_relaxed() {
        let v = rules("x.store(1, Ordering::Relaxed);");
        assert_eq!(v, vec![Rule::RelaxedWithoutComment]);
    }

    #[test]
    fn l7_accepts_ordering_comment_on_statement_block() {
        // Same line.
        assert!(rules("x.load(Ordering::Relaxed); // ORDERING: diagnostic only").is_empty());
        // Multi-line comment block directly above.
        let block = "// ORDERING: the counter is a monotone diagnostic\n\
                     // folded after join; no data is published through it.\n\
                     x.fetch_add(1, Ordering::Relaxed);";
        assert!(rules(block).is_empty());
        // Block above a *multi-line* call: the scan passes through the
        // unterminated continuation lines of the same statement.
        let call = "// ORDERING: CAS transfers no data, only disjointness.\n\
                    match x.compare_exchange_weak(\n\
                        cur,\n\
                        cur + 1,\n\
                        Ordering::Relaxed,\n\
                        Ordering::Relaxed,\n\
                    ) {";
        assert!(rules(call).is_empty());
    }

    #[test]
    fn l7_marker_does_not_leak_across_statements() {
        // The `;` on the first statement ends the marker's reach.
        let src = "// ORDERING: for the store below\n\
                   x.store(1, Ordering::Release);\n\
                   y.load(Ordering::Relaxed);";
        assert_eq!(rules(src), vec![Rule::RelaxedWithoutComment]);
        // A blank line detaches the comment block.
        let detached = "// ORDERING: stale\n\n x.load(Ordering::Relaxed);";
        assert_eq!(rules(detached), vec![Rule::RelaxedWithoutComment]);
    }

    #[test]
    fn l7_respects_allow_marker() {
        assert!(rules("x.load(Ordering::Relaxed); // tkdc-lint: allow(L7)").is_empty());
    }

    // ---- L8 ----

    #[test]
    fn l8_fires_on_static_mut() {
        let v = rules("static mut COUNTER: u64 = 0;");
        assert_eq!(v, vec![Rule::StaticMut]);
    }

    #[test]
    fn l8_clean_on_plain_statics_and_suppression() {
        assert!(rules("static COUNTER: AtomicU64 = AtomicU64::new(0);").is_empty());
        let src = "static mut LEGACY: u64 = 0; // tkdc-lint: allow(static-mut)";
        assert!(rules(src).is_empty());
    }

    // ---- L9 ----

    #[test]
    fn l9_fires_on_discarded_spawn_handles() {
        assert_eq!(
            rules("thread::spawn(move || work());"),
            vec![Rule::SpawnWithoutJoin]
        );
        assert_eq!(
            rules("tkdc_sync::thread::spawn(move || work());"),
            vec![Rule::SpawnWithoutJoin]
        );
        assert_eq!(
            rules("let _ = thread::spawn(move || work());"),
            vec![Rule::SpawnWithoutJoin]
        );
        // Multi-line spawn statement: the `;` after the closing paren is
        // found by the forward scan.
        let multi = "thread::spawn(move || {\n    work();\n})\n;";
        assert_eq!(rules(multi), vec![Rule::SpawnWithoutJoin]);
    }

    #[test]
    fn l9_clean_when_handle_is_consumed_or_justified() {
        assert!(rules("let h = thread::spawn(move || work());").is_empty());
        assert!(rules("handles.push(thread::spawn(move || work()));").is_empty());
        // Block tail expression: the handle is the block's value.
        let tail = "let h = {\n    let q = q.clone();\n    thread::spawn(move || work(q))\n};";
        assert!(rules(tail).is_empty());
        // Chained join: consumed (even behind `let _ =`, which then
        // discards the join *result*, not the handle).
        assert!(rules("let _ = thread::spawn(move || work()).join();").is_empty());
        // Scoped spawns join implicitly at the end of the scope.
        assert!(rules("scope.spawn(move || work());").is_empty());
        let justified = "// JOIN: fire-and-forget wake-up; the acceptor owns shutdown\n\
                         thread::spawn(move || wake());";
        assert!(rules(justified).is_empty());
        assert!(rules("thread::spawn(f); // tkdc-lint: allow(spawn-without-join)").is_empty());
    }

    // ---- golden fixtures ----

    /// Every rule ships a pair of golden fixtures under
    /// `tests/golden/`: `lN_fire` must produce only that rule (one or
    /// more findings — the concurrency fixtures carry several
    /// patterns), and `lN_allow` (the same code with the sanctioned
    /// marker or suppression) must be clean. This pins both the
    /// detection and the escape hatch of each rule against regressions.
    #[test]
    fn golden_fixtures_fire_and_allow_per_rule() {
        let all = [
            Rule::PartialCmpUnwrap,
            Rule::Panic,
            Rule::FloatEq,
            Rule::Unsafe,
            Rule::LossyCast,
            Rule::StdSyncOutsideFacade,
            Rule::RelaxedWithoutComment,
            Rule::StaticMut,
            Rule::SpawnWithoutJoin,
        ];
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
        for (i, rule) in all.iter().enumerate() {
            let n = i + 1;
            for (variant, expect_fire) in [("fire", true), ("allow", false)] {
                let path = dir.join(format!("l{n}_{variant}.rs.golden"));
                // INVARIANT: a missing fixture is exactly what this
                // self-test exists to catch; panic with the path.
                let src = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
                // Every library crate must hold the same bar: run each
                // fixture under a representative established crate, the
                // newest crate-set member (`tkdc-coreset`), the
                // persistent pool module — the workspace's densest user
                // of L6–L9 (facade imports, Relaxed cursors, worker
                // spawn/join lifecycles) — and the estimator backends,
                // whose sampling loops are the densest users of L5
                // index casts and L2 invariants.
                for fixture_path in [
                    "crates/core/src/golden.rs",
                    "crates/coreset/src/golden.rs",
                    "crates/core/src/engine/pool.rs",
                    "crates/core/src/backend/hbe.rs",
                    "crates/core/src/backend/rff.rs",
                    // The observability surface: span sinks and the
                    // windowed histogram (Relaxed counters under L7),
                    // and the metrics endpoint (spawn/join under L9).
                    "crates/obs/src/span.rs",
                    "crates/obs/src/window.rs",
                    "crates/serve/src/http.rs",
                ] {
                    let kind = classify(Path::new(fixture_path));
                    assert!(kind.is_library && kind.cast_checked, "{fixture_path}");
                    let fired: Vec<Rule> = check(fixture_path, &src, kind)
                        .into_iter()
                        .map(|v| v.rule)
                        .collect();
                    if expect_fire {
                        assert!(
                            !fired.is_empty() && fired.iter().all(|r| r == rule),
                            "l{n}_fire must fire only L{n} in {fixture_path}, got {fired:?}"
                        );
                    } else {
                        assert!(
                            fired.is_empty(),
                            "l{n}_allow must be clean in {fixture_path}, got {fired:?}"
                        );
                    }
                }
            }
        }

        fn check(path: &str, src: &str, kind: FileKind) -> Vec<Violation> {
            check_file(path, src, kind)
        }
    }

    #[test]
    fn diagnostics_carry_position_and_snippet() {
        let v = check("fn f() {\n    x.unwrap();\n}");
        assert_eq!(v.len(), 1);
        assert_eq!((v[0].line, v[0].col), (2, 6));
        let rendered = v[0].render();
        assert!(rendered.contains("crates/core/src/fixture.rs:2:6"));
        assert!(rendered.contains("x.unwrap();"));
        assert!(rendered.contains("error[L2/panic]"));
    }
}
