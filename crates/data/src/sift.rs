//! SIFT image-descriptor analog (Caltech-256 SIFT features: 128-d, 11.2M
//! rows).
//!
//! Real SIFT descriptors are 128-d but concentrate near a much
//! lower-dimensional manifold (local gradient statistics are heavily
//! redundant), and entries are non-negative. The analog embeds a rank-16
//! latent Gaussian into 128 dimensions through a fixed random linear map
//! plus small isotropic noise, then clamps to non-negative — reproducing
//! the "effective dimension ≪ ambient dimension" property that governs
//! k-d tree bound quality at d = 64/128.

use tkdc_common::{Matrix, Rng};

/// Ambient descriptor dimensionality.
pub const DIM: usize = 128;

/// Latent (effective) dimensionality.
pub const LATENT: usize = 16;

/// Row count of the original dataset.
pub const PAPER_N: usize = 11_200_000;

/// Generates `n` SIFT-like rows with the full 128 ambient dimensions.
pub fn generate(n: usize, seed: u64) -> Matrix {
    generate_with_dim(n, DIM, seed)
}

/// Generates with a truncated ambient dimension (the paper benchmarks
/// sift at d = 64 by taking the first 64 features).
pub fn generate_with_dim(n: usize, d: usize, seed: u64) -> Matrix {
    assert!((1..=DIM).contains(&d), "ambient dimension must be 1..=128");
    let mut rng = Rng::seed_from(seed);
    // Fixed random mixing matrix LATENT×DIM.
    let mut mix = vec![0.0f64; LATENT * DIM];
    for v in &mut mix {
        *v = rng.normal(0.0, 1.0);
    }
    let mut m = Matrix::with_cols(d);
    let mut latent = [0.0f64; LATENT];
    let mut row = vec![0.0; d];
    for _ in 0..n {
        for l in &mut latent {
            *l = rng.standard_normal();
        }
        for (c, out) in row.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (l, &lv) in latent.iter().enumerate() {
                acc += lv * mix[l * DIM + c];
            }
            // Shift positive and clamp like real descriptor magnitudes.
            *out = (acc * 10.0 + 40.0 + rng.normal(0.0, 2.0)).max(0.0);
        }
        m.push_row(&row).expect("fixed width"); // INVARIANT: row width is constant
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::stats;
    use tkdc_linalg::Pca;

    #[test]
    fn shape_and_nonneg() {
        let m = generate_with_dim(200, 64, 1);
        assert_eq!(m.cols(), 64);
        assert!(m.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_with_dim(50, 32, 3), generate_with_dim(50, 32, 3));
    }

    #[test]
    fn low_effective_rank() {
        // The top-16 principal components must dominate total variance.
        let m = generate_with_dim(2000, 32, 5);
        let pca = Pca::fit(&m, 32).unwrap();
        let total: f64 = pca.explained_variance().iter().sum();
        let top16: f64 = pca.explained_variance()[..16].iter().sum();
        assert!(
            top16 / total > 0.95,
            "top-16 variance fraction {}",
            top16 / total
        );
    }

    #[test]
    fn channels_have_spread() {
        let m = generate_with_dim(3000, 16, 7);
        let stds = stats::column_stds(&m);
        assert!(stds.iter().all(|&s| s > 1.0), "stds {stds:?}");
    }
}
