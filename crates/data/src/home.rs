//! Home gas-sensor analog (UCI home-activity sensing: 10-d, 929k rows).
//!
//! Continuous chemical-sensor traces are strongly autocorrelated and
//! switch between environmental regimes (background vs. stimulus events).
//! The analog walks an AR(1) process per channel with occasional regime
//! switches that shift the channel baselines — reproducing the
//! clustered-with-drift density landscape of the real traces.

use tkdc_common::{Matrix, Rng};

/// Number of sensor channels.
pub const DIM: usize = 10;

/// Row count of the original dataset.
pub const PAPER_N: usize = 929_000;

/// Generates `n` home-sensor-like rows (a single continuous recording).
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    const REGIMES: usize = 4;
    let mut regime_base = [[0.0f64; DIM]; REGIMES];
    for r in 0..REGIMES {
        for c in 0..DIM {
            regime_base[r][c] = rng.uniform(-10.0, 10.0);
        }
    }
    // AR(1) decay and innovation scale per channel.
    let mut rho = [0.0f64; DIM];
    let mut sigma = [0.0f64; DIM];
    for c in 0..DIM {
        rho[c] = rng.uniform(0.9, 0.995);
        sigma[c] = rng.uniform(0.2, 1.0);
    }

    let switch_prob = 0.002;
    let mut regime = 0usize;
    let mut state = regime_base[0];
    let mut m = Matrix::with_cols(DIM);
    for _ in 0..n {
        if rng.next_f64() < switch_prob {
            regime = rng.next_below(REGIMES as u64) as usize; // CAST: next_below(k) < k, and small counts widen losslessly
        }
        for c in 0..DIM {
            let target = regime_base[regime][c];
            state[c] = target + rho[c] * (state[c] - target) + rng.normal(0.0, sigma[c]);
        }
        m.push_row(&state).expect("fixed width"); // INVARIANT: row width is constant
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let m = generate(500, 3);
        assert_eq!(m.cols(), DIM);
        assert_eq!(m.rows(), 500);
        assert_eq!(generate(100, 9), generate(100, 9));
    }

    #[test]
    fn strong_autocorrelation() {
        let m = generate(5000, 5);
        // Lag-1 autocorrelation of channel 0 should be high.
        let col = m.column(0);
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for w in col.windows(2) {
            num += (w[0] - mean) * (w[1] - mean);
        }
        for &v in &col {
            den += (v - mean) * (v - mean);
        }
        let rho = num / den;
        assert!(rho > 0.5, "expected autocorrelation, got {rho}");
    }

    #[test]
    fn regimes_create_spread() {
        // With switches the long-run spread exceeds the innovation scale.
        let m = generate(50_000, 7);
        let stds = tkdc_common::stats::column_stds(&m);
        assert!(stds.iter().any(|&s| s > 2.0), "stds {stds:?}");
    }
}
