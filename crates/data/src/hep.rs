//! High-energy-physics analog (UCI HEPMASS-style collision signatures:
//! 27-d, 10.5M rows).
//!
//! Collision features mix signal and background processes; kinematic
//! quantities (energies, transverse momenta) are positive and
//! heavy-tailed, while derived angles are roughly Gaussian. The analog
//! draws from a two-component (signal/background) anisotropic Gaussian
//! mixture and exponentiates a subset of channels to log-normal, giving
//! the moderate-dimensional, heavy-tailed density landscape the paper's
//! d-sweep experiments (Figs. 10–11) rely on.

use tkdc_common::{Matrix, Rng};

/// Number of feature columns.
pub const DIM: usize = 27;

/// Row count of the original dataset.
pub const PAPER_N: usize = 10_500_000;

/// Generates `n` hep-like rows.
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    // Signal and background means/scales.
    let mut mean = [[0.0f64; DIM]; 2];
    let mut scale = [[0.0f64; DIM]; 2];
    for k in 0..2 {
        for c in 0..DIM {
            mean[k][c] = rng.uniform(-1.0, 1.0);
            scale[k][c] = rng.uniform(0.5, 1.5);
        }
    }
    // Half the channels become log-normal "energy-like" features.
    let heavy_tail: Vec<bool> = (0..DIM).map(|c| c % 2 == 0).collect();

    let mut m = Matrix::with_cols(DIM);
    let mut row = vec![0.0; DIM];
    for _ in 0..n {
        let k = usize::from(rng.next_f64() < 0.5);
        for c in 0..DIM {
            let z = mean[k][c] + scale[k][c] * rng.standard_normal();
            row[c] = if heavy_tail[c] { (0.5 * z).exp() } else { z };
        }
        m.push_row(&row).expect("fixed width"); // INVARIANT: row width is constant
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let m = generate(300, 1);
        assert_eq!(m.cols(), DIM);
        assert_eq!(generate(100, 2), generate(100, 2));
    }

    #[test]
    fn energy_channels_positive_and_skewed() {
        let m = generate(20_000, 3);
        let col = m.column(0); // heavy-tailed channel
        assert!(col.iter().all(|&v| v > 0.0));
        // Log-normal skew: mean above median.
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        let median = tkdc_common::order::quantile(&col, 0.5).unwrap();
        assert!(mean > median, "mean {mean} median {median}");
    }

    #[test]
    fn angle_channels_roughly_symmetric() {
        let m = generate(20_000, 3);
        let col = m.column(1); // Gaussian channel
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        let median = tkdc_common::order::quantile(&col, 0.5).unwrap();
        assert!((mean - median).abs() < 0.1);
    }

    #[test]
    fn dimension_prefixes_for_fig11() {
        let m = generate(200, 4);
        for d in [1usize, 2, 4, 8, 16, 27] {
            assert_eq!(m.prefix_columns(d).unwrap().cols(), d);
        }
    }
}
