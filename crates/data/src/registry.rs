//! Dataset registry: maps the paper's Table 3 inventory onto the
//! synthetic generators, with a uniform `DatasetSpec` the benchmark
//! harness drives.

use crate::{galaxy, gauss, hep, home, iris, mnist, shuttle, sift, tmy3};
use tkdc_common::error::{invalid_param, Result};
use tkdc_common::Matrix;
use tkdc_linalg::Pca;

/// Which synthetic dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// Standard multivariate normal (exact reproduction).
    Gauss {
        /// Dimensionality (the paper uses 2).
        d: usize,
    },
    /// Energy-load profiles (tmy3 analog); use `prefix_columns` for the
    /// paper's d=4 variant.
    Tmy3,
    /// Home gas-sensor traces analog.
    Home,
    /// High-energy-physics collision analog.
    Hep,
    /// SIFT descriptor analog at a chosen ambient dimension (≤ 128).
    Sift {
        /// Ambient dimensionality (the paper benchmarks 64 and 128).
        d: usize,
    },
    /// MNIST-like images, optionally PCA-reduced.
    Mnist {
        /// PCA output dimensionality; `None` keeps the raw 784 pixels.
        pca_dims: Option<usize>,
    },
    /// Space-shuttle sensor analog.
    Shuttle,
    /// Iris sepal measurements analog (example datasets).
    Iris,
    /// Galaxy survey cross-section analog.
    Galaxy,
}

/// A concrete dataset request: kind + size + seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Which generator to run.
    pub kind: DatasetKind,
    /// Number of rows to generate.
    pub n: usize,
    /// Generator seed.
    pub seed: u64,
}

/// One row of the paper's Table 3 (name, dimensionality, row count).
pub const PAPER_TABLE3: [(&str, usize, usize); 7] = [
    ("gauss", 2, 100_000_000),
    ("tmy3", 8, tmy3::PAPER_N),
    ("home", 10, home::PAPER_N),
    ("hep", 27, hep::PAPER_N),
    ("sift", 128, sift::PAPER_N),
    ("mnist", 784, mnist::PAPER_N),
    ("shuttle", 9, shuttle::PAPER_N),
];

impl DatasetSpec {
    /// Generates the dataset.
    ///
    /// # Errors
    /// Fails on out-of-range dimensionality requests (e.g. `Sift { d: 0 }`
    /// or `Mnist { pca_dims: Some(0) }`).
    pub fn generate(&self) -> Result<Matrix> {
        match self.kind {
            DatasetKind::Gauss { d } => {
                if d == 0 {
                    return Err(invalid_param("d", "gauss dimensionality must be positive"));
                }
                Ok(gauss::generate(self.n, d, self.seed))
            }
            DatasetKind::Tmy3 => Ok(tmy3::generate(self.n, self.seed)),
            DatasetKind::Home => Ok(home::generate(self.n, self.seed)),
            DatasetKind::Hep => Ok(hep::generate(self.n, self.seed)),
            DatasetKind::Sift { d } => {
                if d == 0 || d > sift::DIM {
                    return Err(invalid_param(
                        "d",
                        format!("sift dimensionality must be 1..={}", sift::DIM),
                    ));
                }
                Ok(sift::generate_with_dim(self.n, d, self.seed))
            }
            DatasetKind::Mnist { pca_dims } => {
                let raw = mnist::generate(self.n, self.seed);
                match pca_dims {
                    None => Ok(raw),
                    Some(k) => {
                        if k == 0 || k > mnist::DIM {
                            return Err(invalid_param(
                                "pca_dims",
                                format!("must be 1..={}", mnist::DIM),
                            ));
                        }
                        let pca = Pca::fit_truncated(&raw, k, 30, self.seed ^ 0xFACE)?;
                        pca.transform(&raw)
                    }
                }
            }
            DatasetKind::Shuttle => Ok(shuttle::generate(self.n, self.seed)),
            DatasetKind::Iris => Ok(iris::generate(self.n, self.seed)),
            DatasetKind::Galaxy => Ok(galaxy::generate(self.n, self.seed)),
        }
    }

    /// Short display name (e.g. for benchmark tables).
    pub fn name(&self) -> String {
        match self.kind {
            DatasetKind::Gauss { d } => format!("gauss-d{d}"),
            DatasetKind::Tmy3 => "tmy3".into(),
            DatasetKind::Home => "home".into(),
            DatasetKind::Hep => "hep".into(),
            DatasetKind::Sift { d } => format!("sift-d{d}"),
            DatasetKind::Mnist { pca_dims: None } => "mnist-raw".into(),
            DatasetKind::Mnist {
                pca_dims: Some(k), ..
            } => format!("mnist-pca{k}"),
            DatasetKind::Shuttle => "shuttle".into(),
            DatasetKind::Iris => "iris".into(),
            DatasetKind::Galaxy => "galaxy".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_every_kind() {
        let specs = [
            DatasetSpec {
                kind: DatasetKind::Gauss { d: 2 },
                n: 50,
                seed: 1,
            },
            DatasetSpec {
                kind: DatasetKind::Tmy3,
                n: 50,
                seed: 1,
            },
            DatasetSpec {
                kind: DatasetKind::Home,
                n: 50,
                seed: 1,
            },
            DatasetSpec {
                kind: DatasetKind::Hep,
                n: 50,
                seed: 1,
            },
            DatasetSpec {
                kind: DatasetKind::Sift { d: 16 },
                n: 50,
                seed: 1,
            },
            DatasetSpec {
                kind: DatasetKind::Shuttle,
                n: 50,
                seed: 1,
            },
            DatasetSpec {
                kind: DatasetKind::Iris,
                n: 50,
                seed: 1,
            },
            DatasetSpec {
                kind: DatasetKind::Galaxy,
                n: 50,
                seed: 1,
            },
        ];
        for spec in specs {
            let m = spec.generate().unwrap();
            assert_eq!(m.rows(), 50, "{}", spec.name());
            assert!(m.cols() >= 1);
        }
    }

    #[test]
    fn mnist_pca_reduces_dimension() {
        let spec = DatasetSpec {
            kind: DatasetKind::Mnist { pca_dims: Some(16) },
            n: 120,
            seed: 2,
        };
        let m = spec.generate().unwrap();
        assert_eq!(m.cols(), 16);
        assert_eq!(m.rows(), 120);
    }

    #[test]
    fn invalid_dims_rejected() {
        assert!(DatasetSpec {
            kind: DatasetKind::Gauss { d: 0 },
            n: 10,
            seed: 1
        }
        .generate()
        .is_err());
        assert!(DatasetSpec {
            kind: DatasetKind::Sift { d: 500 },
            n: 10,
            seed: 1
        }
        .generate()
        .is_err());
        assert!(DatasetSpec {
            kind: DatasetKind::Mnist { pca_dims: Some(0) },
            n: 10,
            seed: 1
        }
        .generate()
        .is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            DatasetSpec {
                kind: DatasetKind::Gauss { d: 2 },
                n: 1,
                seed: 0
            }
            .name(),
            "gauss-d2"
        );
        assert_eq!(
            DatasetSpec {
                kind: DatasetKind::Mnist { pca_dims: Some(64) },
                n: 1,
                seed: 0
            }
            .name(),
            "mnist-pca64"
        );
    }

    #[test]
    fn table3_matches_paper() {
        assert_eq!(PAPER_TABLE3.len(), 7);
        let (name, d, n) = PAPER_TABLE3[0];
        assert_eq!((name, d, n), ("gauss", 2, 100_000_000));
    }
}
