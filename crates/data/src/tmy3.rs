//! TMY3 energy-load analog (NREL hourly load profiles: 8-d, 1.82M rows).
//!
//! Building load profiles are strongly periodic (daily and seasonal
//! cycles), vary by building type, and are positive with weather-driven
//! noise. The analog generates rows of eight correlated load channels as
//! sums of sinusoids over a simulated hour-of-year, mixed over several
//! building archetypes — reproducing the correlated, multi-modal,
//! low-dimensional structure the paper's d=4 and d=8 tmy3 experiments
//! exercise.

use tkdc_common::{Matrix, Rng};

/// Number of load channels (the paper uses up to 8 tmy3 columns).
pub const DIM: usize = 8;

/// Row count of the original dataset.
pub const PAPER_N: usize = 1_820_000;

/// Generates `n` tmy3-like rows.
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    const ARCHETYPES: usize = 5;
    // Per-archetype base loads, daily amplitudes and phases per channel.
    let mut base = [[0.0f64; DIM]; ARCHETYPES];
    let mut day_amp = [[0.0f64; DIM]; ARCHETYPES];
    let mut season_amp = [[0.0f64; DIM]; ARCHETYPES];
    let mut phase = [[0.0f64; DIM]; ARCHETYPES];
    for a in 0..ARCHETYPES {
        for c in 0..DIM {
            base[a][c] = rng.uniform(5.0, 60.0);
            day_amp[a][c] = rng.uniform(1.0, 25.0);
            season_amp[a][c] = rng.uniform(0.5, 10.0);
            phase[a][c] = rng.uniform(0.0, std::f64::consts::TAU);
        }
    }
    let weights = [0.35, 0.25, 0.2, 0.12, 0.08];

    let mut m = Matrix::with_cols(DIM);
    let mut row = vec![0.0; DIM];
    for _ in 0..n {
        let a = rng.weighted_index(&weights);
        // Simulated timestamp: hour-of-day and day-of-year.
        let hod = rng.next_f64() * 24.0;
        let doy = rng.next_f64() * 365.0;
        let day_angle = hod / 24.0 * std::f64::consts::TAU;
        let season_angle = doy / 365.0 * std::f64::consts::TAU;
        for c in 0..DIM {
            let load = base[a][c]
                + day_amp[a][c] * (day_angle + phase[a][c]).sin()
                + season_amp[a][c] * (season_angle + phase[a][c] * 0.5).cos()
                + rng.normal(0.0, 1.5);
            // Loads are non-negative.
            row[c] = load.max(0.0);
        }
        m.push_row(&row).expect("fixed width"); // INVARIANT: row width is constant
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::stats;

    #[test]
    fn shape_and_nonnegative() {
        let m = generate(2000, 3);
        assert_eq!(m.cols(), DIM);
        assert!(m.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(100, 5), generate(100, 5));
    }

    #[test]
    fn channels_are_correlated() {
        // Shared hour-of-day drives cross-channel correlation within an
        // archetype; mixture keeps it partial but clearly non-zero.
        let m = generate(20_000, 7);
        let cov = stats::covariance(&m).unwrap();
        let mut max_corr: f64 = 0.0;
        for i in 0..DIM {
            for j in (i + 1)..DIM {
                let corr = cov.get(i, j) / (cov.get(i, i) * cov.get(j, j)).sqrt();
                max_corr = max_corr.max(corr.abs());
            }
        }
        assert!(
            max_corr > 0.1,
            "expected correlated channels, max {max_corr}"
        );
    }

    #[test]
    fn four_dim_prefix_matches_paper_usage() {
        let m = generate(300, 9).prefix_columns(4).unwrap();
        assert_eq!(m.cols(), 4);
    }
}
