//! MNIST analog (handwritten-digit images: 784-d, 70k rows).
//!
//! Generates 28×28 synthetic "digit-like" images: a few smooth random
//! strokes drawn with a Gaussian brush on a dark background. The key
//! statistical properties the paper's experiments rely on are preserved —
//! most pixels are near zero, intensities are bounded, and the covariance
//! spectrum decays fast, so PCA reduction (as the paper performs for
//! d = 64/256) concentrates variance in few components.

use tkdc_common::{Matrix, Rng};

/// Image side length.
pub const SIDE: usize = 28;

/// Ambient dimensionality (28 × 28 pixels).
pub const DIM: usize = SIDE * SIDE;

/// Row count of the original dataset.
pub const PAPER_N: usize = 70_000;

/// Generates `n` flattened 784-pixel images in `[0, 1]`.
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let mut m = Matrix::with_cols(DIM);
    let mut img = vec![0.0f64; DIM];
    for _ in 0..n {
        img.iter_mut().for_each(|p| *p = 0.0);
        // 1–3 strokes, each a quadratic Bézier-ish path of brush stamps.
        let strokes = 1 + rng.next_below(3) as usize; // CAST: next_below(k) < k, and small counts widen losslessly
        for _ in 0..strokes {
            let (x0, y0) = (rng.uniform(4.0, 24.0), rng.uniform(4.0, 24.0));
            let (x1, y1) = (rng.uniform(4.0, 24.0), rng.uniform(4.0, 24.0));
            let (cx, cy) = (rng.uniform(2.0, 26.0), rng.uniform(2.0, 26.0));
            let brush = rng.uniform(0.8, 1.6);
            let steps = 24;
            for s in 0..=steps {
                let t = s as f64 / steps as f64;
                // Quadratic Bézier through the control point.
                let bx = (1.0 - t) * (1.0 - t) * x0 + 2.0 * (1.0 - t) * t * cx + t * t * x1;
                let by = (1.0 - t) * (1.0 - t) * y0 + 2.0 * (1.0 - t) * t * cy + t * t * y1;
                stamp(&mut img, bx, by, brush);
            }
        }
        // Mild sensor noise, clamped to [0, 1].
        for p in img.iter_mut() {
            *p = (*p + rng.normal(0.0, 0.01)).clamp(0.0, 1.0);
        }
        m.push_row(&img).expect("fixed width"); // INVARIANT: row width is constant
    }
    m
}

/// Adds a Gaussian brush stamp centred at `(cx, cy)`.
fn stamp(img: &mut [f64], cx: f64, cy: f64, brush: f64) {
    let r = (3.0 * brush).ceil() as isize; // CAST: brush radius in pixels is tiny
    let ix = cx.round() as isize; // CAST: stroke centers lie inside the 28x28 canvas
    let iy = cy.round() as isize; // CAST: stroke centers lie inside the 28x28 canvas
    for dy in -r..=r {
        for dx in -r..=r {
            let x = ix + dx;
            let y = iy + dy;
            // CAST: SIDE = 28 fits any integer type
            if x < 0 || y < 0 || x >= SIDE as isize || y >= SIDE as isize {
                continue;
            }
            let ddx = x as f64 - cx;
            let ddy = y as f64 - cy;
            let v = (-(ddx * ddx + ddy * ddy) / (2.0 * brush * brush)).exp();
            let idx = y as usize * SIDE + x as usize; // CAST: x and y are bounds-checked above
            img[idx] = (img[idx] + 0.6 * v).min(1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_range() {
        let m = generate(50, 1);
        assert_eq!(m.cols(), DIM);
        assert!(m.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(10, 4), generate(10, 4));
    }

    #[test]
    fn mostly_dark_pixels() {
        // Real mnist has ~80% near-zero pixels; strokes are sparse.
        let m = generate(100, 7);
        let dark = m.as_slice().iter().filter(|&&v| v < 0.1).count();
        let frac = dark as f64 / m.as_slice().len() as f64;
        assert!(frac > 0.6, "dark-pixel fraction {frac}");
    }

    #[test]
    fn images_vary() {
        let m = generate(20, 9);
        // Not all rows identical.
        assert_ne!(m.row(0), m.row(1));
    }
}
