//! Shuttle-sensor analog (UCI `shuttle`: 9-d, 43.5k rows).
//!
//! The real dataset mixes several operating modes: a dominant cluster,
//! several smaller modes, and sparse low-density filaments between them
//! (Fig. 1a of the paper). The analog is a weighted anisotropic Gaussian
//! mixture plus inter-cluster filament points: multi-modal structure with
//! fine low-density connective tissue, which is exactly what makes
//! density classification on shuttle interesting.

use tkdc_common::{Matrix, Rng};

/// Number of columns matching the UCI shuttle dataset.
pub const DIM: usize = 9;

/// Row count of the original dataset.
pub const PAPER_N: usize = 43_500;

/// Generates `n` shuttle-like rows.
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    // Cluster centers spread over a sensor-plausible range, with one
    // dominant mode (the real data's class 1 is ~80% of rows).
    let k = 6;
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    for _ in 0..k {
        centers.push((0..DIM).map(|_| rng.uniform(-40.0, 60.0)).collect());
    }
    let weights = [0.62, 0.15, 0.10, 0.06, 0.04, 0.02];
    // Per-cluster anisotropic scales.
    let scales: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..DIM).map(|_| rng.uniform(0.8, 6.0)).collect())
        .collect();

    let filament_frac = 0.02; // sparse connective filaments
    let mut m = Matrix::with_cols(DIM);
    let mut row = vec![0.0; DIM];
    for _ in 0..n {
        if rng.next_f64() < filament_frac {
            // Filament: interpolate between two random cluster centers
            // with small jitter.
            let a = rng.next_below(k as u64) as usize; // CAST: next_below(k) < k, and small counts widen losslessly
            let mut b = rng.next_below(k as u64) as usize; // CAST: next_below(k) < k, and small counts widen losslessly
            if b == a {
                b = (b + 1) % k;
            }
            let t = rng.next_f64();
            for i in 0..DIM {
                let base = centers[a][i] * (1.0 - t) + centers[b][i] * t;
                row[i] = base + rng.normal(0.0, 0.5);
            }
        } else {
            let c = rng.weighted_index(&weights);
            for i in 0..DIM {
                row[i] = centers[c][i] + rng.normal(0.0, scales[c][i]);
            }
        }
        m.push_row(&row).expect("fixed width"); // INVARIANT: row width is constant
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::stats;

    #[test]
    fn shape() {
        let m = generate(1000, 5);
        assert_eq!(m.rows(), 1000);
        assert_eq!(m.cols(), DIM);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(200, 9), generate(200, 9));
    }

    #[test]
    fn is_multimodal() {
        // The dominant cluster should make the marginal strongly
        // non-normal: check spread far exceeds the per-cluster scale.
        let m = generate(5000, 11);
        let stds = stats::column_stds(&m);
        // Cluster centers span ~100 units; per-cluster σ ≤ 6.
        assert!(
            stds.iter().any(|&s| s > 10.0),
            "expected multi-modal spread, stds {stds:?}"
        );
    }

    #[test]
    fn two_column_projection_works() {
        // The paper's Fig. 1 uses columns 4 and 6 (0-indexed 3 and 5).
        let m = generate(500, 13);
        let proj = m.select_columns(&[3, 5]).unwrap();
        assert_eq!(proj.cols(), 2);
        assert_eq!(proj.rows(), 500);
    }
}
