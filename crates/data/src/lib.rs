#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-data
//!
//! Synthetic dataset generators mirroring the evaluation datasets of the
//! tKDC paper (Table 3). The original files (UCI, NREL, Caltech, MNIST,
//! SDSS) are not available offline, so each generator produces an analog
//! matching the published size, dimensionality and qualitative density
//! structure — the properties that drive tKDC's pruning behaviour. The
//! substitutions are documented per-dataset in `DESIGN.md`.
//!
//! All generators are deterministic in their seed.

pub mod galaxy;
pub mod gauss;
pub mod hep;
pub mod home;
pub mod iris;
pub mod mnist;
pub mod registry;
pub mod shuttle;
pub mod sift;
pub mod tmy3;

pub use registry::{DatasetKind, DatasetSpec, PAPER_TABLE3};
