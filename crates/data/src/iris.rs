//! Iris-like sepal measurements for the contour-visualization example
//! (paper Fig. 2a). A small 2-d Gaussian mixture whose component means
//! and spreads match the published summary statistics of the iris sepal
//! columns (sepal width ≈ 2–4.5 cm, sepal length ≈ 4.3–7.9 cm, with
//! setosa forming a distinct mode from versicolor/virginica).

use tkdc_common::{Matrix, Rng};

/// Generates `n` (sepal width, sepal length) pairs in centimetres.
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    // (weight, mean_width, mean_length, sd_width, sd_length)
    let comps = [
        (1.0, 3.43, 5.01, 0.38, 0.35), // setosa-like mode
        (1.0, 2.77, 5.94, 0.31, 0.52), // versicolor-like mode
        (1.0, 2.97, 6.59, 0.32, 0.64), // virginica-like mode
    ];
    let weights: Vec<f64> = comps.iter().map(|c| c.0).collect();
    let mut m = Matrix::with_cols(2);
    for _ in 0..n {
        let c = &comps[rng.weighted_index(&weights)];
        m.push_row(&[rng.normal(c.1, c.3), rng.normal(c.2, c.4)])
            .expect("fixed width"); // INVARIANT: row width is constant
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::stats;

    #[test]
    fn plausible_ranges() {
        let m = generate(3000, 1);
        let means = stats::column_means(&m);
        assert!((2.5..3.5).contains(&means[0]), "width mean {}", means[0]);
        assert!((5.0..6.5).contains(&means[1]), "length mean {}", means[1]);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(100, 2), generate(100, 2));
    }
}
