//! Galaxy-survey analog for the density-survey example (paper Fig. 2b,
//! a cross section of the Sloan Digital Sky Survey).
//!
//! Large-scale galaxy structure is filamentary: matter concentrates along
//! arcs and walls with voids between. The analog scatters cluster seeds,
//! connects them with curved filaments, and places galaxies along
//! filaments and in clusters with jitter, leaving realistic voids —
//! producing the high/low density contrast the survey use case studies.

use tkdc_common::{Matrix, Rng};

/// Generates `n` 2-d galaxy positions in a `[0, 100]²` patch of sky.
pub fn generate(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    const CLUSTERS: usize = 12;
    let mut centers = Vec::with_capacity(CLUSTERS);
    for _ in 0..CLUSTERS {
        centers.push([rng.uniform(5.0, 95.0), rng.uniform(5.0, 95.0)]);
    }
    // Filaments join nearby cluster pairs.
    let mut filaments: Vec<(usize, usize)> = Vec::new();
    for i in 0..CLUSTERS {
        // Connect each cluster to its nearest neighbour.
        let mut best = usize::MAX;
        let mut best_d = f64::INFINITY;
        for j in 0..CLUSTERS {
            if i == j {
                continue;
            }
            let dx = centers[i][0] - centers[j][0];
            let dy = centers[i][1] - centers[j][1];
            let d = dx * dx + dy * dy;
            if d < best_d {
                best_d = d;
                best = j;
            }
        }
        filaments.push((i, best));
    }

    let mut m = Matrix::with_cols(2);
    for _ in 0..n {
        let u = rng.next_f64();
        if u < 0.55 {
            // Cluster member.
            let c = &centers[rng.next_below(CLUSTERS as u64) as usize]; // CAST: next_below(k) < k, and small counts widen losslessly
            m.push_row(&[rng.normal(c[0], 1.8), rng.normal(c[1], 1.8)])
                .expect("fixed width"); // INVARIANT: row width is constant
        } else if u < 0.9 {
            // Filament member: point along a curved arc between two
            // clusters with modest scatter.
            let &(a, b) = &filaments[rng.next_below(filaments.len() as u64) as usize]; // CAST: next_below(k) < k, and small counts widen losslessly
            let t = rng.next_f64();
            let bend = 6.0 * (t * std::f64::consts::PI).sin();
            let (ax, ay) = (centers[a][0], centers[a][1]);
            let (bx, by) = (centers[b][0], centers[b][1]);
            // Perpendicular offset gives curvature.
            let (dx, dy) = (bx - ax, by - ay);
            let len = (dx * dx + dy * dy).sqrt().max(1e-9);
            let (px, py) = (-dy / len, dx / len);
            let x = ax + dx * t + px * bend + rng.normal(0.0, 0.8);
            let y = ay + dy * t + py * bend + rng.normal(0.0, 0.8);
            m.push_row(&[x, y]).expect("fixed width"); // INVARIANT: row width is constant
        } else {
            // Field galaxy (sparse background).
            m.push_row(&[rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)])
                .expect("fixed width"); // INVARIANT: row width is constant
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let m = generate(1000, 1);
        assert_eq!(m.cols(), 2);
        assert_eq!(generate(100, 6), generate(100, 6));
    }

    #[test]
    fn has_dense_and_empty_regions() {
        // Count points in a coarse 10×10 occupancy grid: filamentary
        // structure means some cells are crowded and others empty.
        let m = generate(20_000, 2);
        let mut counts = [0usize; 100];
        for row in m.iter_rows() {
            let cx = (row[0] / 10.0).clamp(0.0, 9.0) as usize;
            let cy = (row[1] / 10.0).clamp(0.0, 9.0) as usize;
            counts[cy * 10 + cx] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max > 10 * (min + 1),
            "expected strong density contrast: max {max}, min {min}"
        );
    }
}
