//! The `gauss` dataset: a standard multivariate normal with zero mean and
//! unit covariance — the one dataset we can reproduce exactly (the paper
//! samples it synthetically too, at n = 100M, d = 2).

use tkdc_common::{Matrix, Rng};

/// Samples `n` points from `N(0, I_d)`.
pub fn generate(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from(seed);
    let mut m = Matrix::with_cols(d);
    let mut row = vec![0.0; d];
    for _ in 0..n {
        for v in &mut row {
            *v = rng.standard_normal();
        }
        m.push_row(&row).expect("row width is fixed"); // INVARIANT: row width is constant
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::stats;

    #[test]
    fn shape_and_moments() {
        let m = generate(20_000, 2, 1);
        assert_eq!(m.rows(), 20_000);
        assert_eq!(m.cols(), 2);
        let means = stats::column_means(&m);
        let stds = stats::column_stds(&m);
        for c in 0..2 {
            assert!(means[c].abs() < 0.03, "mean {}", means[c]);
            assert!((stds[c] - 1.0).abs() < 0.03, "std {}", stds[c]);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(100, 3, 7), generate(100, 3, 7));
        assert_ne!(generate(100, 3, 7), generate(100, 3, 8));
    }

    #[test]
    fn columns_uncorrelated() {
        let m = generate(20_000, 2, 3);
        let cov = stats::covariance(&m).unwrap();
        assert!(cov.get(0, 1).abs() < 0.03);
    }
}
