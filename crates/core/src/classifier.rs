//! End-to-end density classification (Algorithm 1 of the paper).
//!
//! `Classifier::fit` runs the threshold bootstrap, builds the full spatial
//! index, computes density bounds for every training point to refine the
//! threshold estimate `t̃(p)`, and (for `d ≤ 4`) builds the grid cache.
//! `classify` then answers HIGH/LOW per query via the pruned traversal,
//! with the grid short-circuiting obvious inliers before any tree work.
//!
//! The classifier core is backend-agnostic: the certified dual-tree
//! traversal above is the default [`crate::backend::TreeBackend`], but
//! `Params::backend` can route density queries through the hashing-based
//! or random-Fourier-feature estimators instead (see [`crate::backend`]).
//! Estimated backends skip the bootstrap — their fixed per-query budget
//! gains nothing from threshold pruning — and compute `t̃(p)` from a
//! direct training-density pass.

use crate::backend::{BackendImpl, BoundKind, HbeBackend, RffBackend, TreeBackend};
use crate::bound::{DensityBounder, DensityBounds};
use crate::engine;
use crate::params::{BackendSpec, Params};
use crate::qstats::{PruneCause, QueryScratch, QueryStats};
use crate::span::Spans;
use crate::threshold::{bound_threshold_with, BootstrapReport, ThresholdBounds};
#[cfg(feature = "obs")]
use crate::trace::{QueryTrace, Tracer};
use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::order::quantile_in_place;
use tkdc_common::Matrix;
use tkdc_index::{BandwidthGrid, KdTree, MAX_GRID_DIM};
use tkdc_kernel::{scotts_rule, scotts_rule_from_stds, Kernel};
use tkdc_sync::Arc;

/// Re-export so callers can reference the grid dimensionality cap without
/// importing the index crate.
pub use tkdc_index::grid::MAX_GRID_DIM as GRID_DIM_LIMIT;

/// Classification outcome for a query point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Label {
    /// Density above the threshold.
    High,
    /// Density below the threshold.
    Low,
    /// The ε-folded certified interval straddles the threshold: a
    /// coreset-backed model (`coreset_eps > 0`) cannot certify either
    /// label against the *full* dataset. Full-data models never produce
    /// this — their tolerance rule resolves straddles by midpoint, which
    /// the paper's guarantee covers; a coreset's additional ±ε error
    /// does not, so the straddle is surfaced honestly instead.
    Unknown,
}

/// Execution policy for the unified batch entry points
/// ([`Classifier::classify_batch_with`] /
/// [`Classifier::bound_density_batch_with`]) and the fit entry points
/// ([`Classifier::fit_with`] / [`Classifier::fit_weighted_with`]).
///
/// One policy enum replaces the former quartet of near-duplicate batch
/// methods; every batch consumer in the workspace (CLI, benchmark
/// harnesses, the `tkdc-serve` daemon) goes through it. Labels, bounds,
/// and merged [`QueryStats`] are identical for every policy and thread
/// count — the policy only chooses *how* the work is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// Single-threaded, in-order execution on the calling thread
    /// (allocation-free beyond the output vector).
    Serial,
    /// Work-stealing parallel execution through the [`engine`]
    /// scheduler. `threads: None` resolves to the machine's available
    /// parallelism; tiny batches fall back to the serial path.
    Parallel {
        /// Worker-thread count; `None` = available parallelism.
        threads: Option<usize>,
    },
    /// Parallel execution with *static* contiguous chunking — one equal
    /// range per thread, claimed up front. Kept only as the
    /// scheduler-comparison baseline for the `bench` binary: on skewed
    /// workloads a single chunk absorbs all the near-threshold queries
    /// while every other core idles. Prefer [`ExecPolicy::Parallel`].
    StaticChunked {
        /// Worker-thread count; `None` = available parallelism.
        threads: Option<usize>,
    },
    /// Work-stealing parallel execution with *per-batch scoped threads*
    /// ([`engine::run_batch`]): spawns and joins `threads` OS threads
    /// for every batch. This was the pre-pool behaviour of
    /// [`ExecPolicy::Parallel`]; it is kept as the
    /// pool-reuse-vs-spawn ablation baseline for the `bench` binary.
    /// Prefer [`ExecPolicy::Parallel`], which routes through the
    /// classifier's persistent [`engine::Pool`].
    ScopedSpawn {
        /// Worker-thread count; `None` = available parallelism.
        threads: Option<usize>,
    },
}

impl Default for ExecPolicy {
    /// Work-stealing execution at the machine's available parallelism.
    fn default() -> Self {
        ExecPolicy::Parallel { threads: None }
    }
}

impl ExecPolicy {
    /// Work-stealing execution at the machine's available parallelism
    /// (`Parallel { threads: None }`).
    pub fn parallel() -> Self {
        ExecPolicy::Parallel { threads: None }
    }

    /// Work-stealing execution with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy::Parallel {
            threads: Some(threads),
        }
    }

    /// The effective worker-thread count this policy resolves to.
    pub fn resolved_threads(&self) -> usize {
        match self {
            ExecPolicy::Serial => 1,
            ExecPolicy::Parallel { threads }
            | ExecPolicy::StaticChunked { threads }
            | ExecPolicy::ScopedSpawn { threads } => threads
                .unwrap_or_else(|| {
                    tkdc_sync::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
                .max(1),
        }
    }
}

/// Summary of the training phase.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Probabilistic bounds produced by the bootstrap.
    pub threshold_bounds: ThresholdBounds,
    /// Refined threshold estimate `t̃(p)` (the p-quantile of training
    /// densities).
    pub threshold: f64,
    /// Bootstrap diagnostics (empty for estimated backends, which skip
    /// the bootstrap).
    pub bootstrap: BootstrapReport,
    /// Traversal statistics of the training-density pass.
    pub training_stats: QueryStats,
    /// Whether the invalid-bound detector (§3.6) had to re-estimate.
    pub threshold_reestimates: usize,
}

/// The immutable fitted state: everything a query needs, nothing a
/// scheduler needs. Shared as an [`Arc`] between the owning
/// [`Classifier`] and the pool workers executing a batch, so the pool's
/// `'static` job closures can hold the model without copying it.
#[derive(Debug)]
struct Model {
    params: Params,
    threshold: f64,
    /// Relative coreset error ε (in units of the kernel maximum `K(0)`);
    /// `0.0` for full-data fits. When positive, every certified density
    /// interval is widened by `coreset_eps · K(0)` and straddling queries
    /// classify as [`Label::Unknown`].
    coreset_eps: f64,
    /// The fitted density-estimation backend every query routes through.
    backend: BackendImpl,
}

/// A fitted tKDC model.
///
/// The model is immutable after fitting and `Sync`, so batches of queries
/// can be classified from multiple threads, each with its own
/// [`QueryScratch`]. The classifier also owns a persistent
/// work-stealing [`engine::Pool`]: every [`ExecPolicy::Parallel`] batch
/// reuses the same parked workers instead of spawning threads per batch,
/// which is what makes small repeated batches (the `tkdc-serve` request
/// pattern) actually profit from parallelism. The pool spawns lazily —
/// a classifier that only ever classifies serially never starts a
/// thread — and drains its workers when the classifier drops.
#[derive(Debug)]
pub struct Classifier {
    model: Arc<Model>,
    pool: engine::Pool,
    fit_report: FitReport,
}

impl Classifier {
    /// Wraps a fitted [`Model`] with a fresh (empty) pool.
    fn from_model(model: Model, fit_report: FitReport) -> Self {
        Self {
            model: Arc::new(model),
            pool: engine::Pool::new(),
            fit_report,
        }
    }
    /// Trains a classifier on the dataset (Algorithm 1's training phase),
    /// serially. Equivalent to `fit_with(data, params, ExecPolicy::Serial)`.
    ///
    /// # Errors
    /// Propagates parameter-validation, empty-input and numeric errors.
    pub fn fit(data: &Matrix, params: &Params) -> Result<Self> {
        Self::fit_with(data, params, ExecPolicy::Serial)
    }

    /// Trains a classifier under the given execution policy: the
    /// density-heavy phases (the bootstrap's per-round query loops and
    /// the full training-density pass) are work-stolen across the
    /// policy's resolved thread count. The fitted model — threshold,
    /// bounds, and merged statistics — is identical to [`Self::fit`] for
    /// every policy and thread count: per-query work is deterministic,
    /// results are merged in index order, and the seeded RNG is only
    /// consumed by (sequential) subset sampling.
    ///
    /// `params.backend` selects the estimator: [`BackendSpec::Tree`]
    /// (default) runs the paper's bootstrap + certified traversal;
    /// [`BackendSpec::Hbe`] / [`BackendSpec::Rff`] skip the bootstrap
    /// and take the threshold directly from the estimated training
    /// densities.
    ///
    /// # Errors
    /// Propagates parameter-validation, empty-input and numeric errors.
    pub fn fit_with(data: &Matrix, params: &Params, policy: ExecPolicy) -> Result<Self> {
        Self::fit_with_spans(data, params, policy, &Spans::off())
    }

    /// [`Self::fit_with`] with stage spans: the fit phases (bootstrap,
    /// index/sketch build, training-density threshold pass) record
    /// `fit.*` spans into `spans`. With an inert handle (or the `obs`
    /// feature off) this *is* `fit_with`.
    ///
    /// # Errors
    /// Propagates parameter-validation, empty-input and numeric errors.
    pub fn fit_with_spans(
        data: &Matrix,
        params: &Params,
        policy: ExecPolicy,
        spans: &Spans,
    ) -> Result<Self> {
        params.validate()?;
        if data.rows() == 0 {
            return Err(Error::EmptyInput("training data"));
        }
        match params.backend {
            BackendSpec::Tree => Self::fit_tree(data, params, policy, spans),
            BackendSpec::Hbe(_) | BackendSpec::Rff(_) => {
                Self::fit_estimated(data, None, 0.0, params, policy.resolved_threads(), spans)
            }
        }
    }

    /// The tree-backend fit: threshold bootstrap (Algorithm 3), full
    /// index build, and the pruned training-density pass. Inputs are
    /// pre-validated by [`Self::fit_with_spans`].
    fn fit_tree(data: &Matrix, params: &Params, policy: ExecPolicy, spans: &Spans) -> Result<Self> {
        let n_threads = policy.resolved_threads();

        // Phase 1: probabilistic threshold bounds (Algorithm 3).
        let (mut bounds, bootstrap) = {
            let _span = spans.enter("fit.bootstrap");
            bound_threshold_with(data, params, policy)?
        };

        // Phase 2: full index + kernel.
        let build_span = spans.enter("fit.tree_build");
        let tree = KdTree::build(data, params.leaf_size, params.opts.split_rule())?;
        let h = scotts_rule(data, params.bandwidth_factor)?;
        let kernel = Kernel::new(params.kernel, h)?;
        let n = data.rows() as f64;
        let self_contrib = kernel.max_value() / n;

        // Optional grid cache (only profitable in low dimensions). The
        // grid is an optimization, not a requirement: when it cannot be
        // built (e.g. coordinates so far from the origin relative to the
        // bandwidth that cell indices overflow), fall back to no grid
        // rather than failing the fit.
        let (grid, grid_diag_sq) = if params.opts.grid && data.cols() <= MAX_GRID_DIM {
            match BandwidthGrid::build(data, kernel.bandwidths()) {
                Ok(g) => {
                    let diag = g.diag_scaled_sq(kernel.inv_bandwidths());
                    (Some(g), diag)
                }
                Err(_) => (None, 0.0),
            }
        } else {
            (None, 0.0)
        };
        drop(build_span);
        let _threshold_span = spans.enter("fit.threshold");

        // Phase 3: density bounds for every training point → t̃(p).
        // If the bootstrap bounds turn out invalid (probability δ), the
        // quantile lands outside them; detect and retry with relaxed
        // bounds (§3.6).
        let bounder = DensityBounder::new(&tree, &kernel, params.opts, params.epsilon);
        let mut training_stats = QueryStats::default();
        let mut reestimates = 0usize;
        let threshold = loop {
            let (t_lo, t_hi) = (bounds.lower, bounds.upper);
            let grid_ref = grid.as_ref();
            let (mut densities, worker_scratches) =
                engine::run_batch(data.rows(), n_threads, QueryScratch::new, |i, scratch| {
                    let x = data.row(i);
                    // The grid can certify obvious inliers without traversal;
                    // their exact density is irrelevant to a small-p quantile
                    // as long as the *stored corrected value* stays above the
                    // corrected-space upper bound — hence the −f₀ on the left
                    // of the guard (a raw-space guard could store a value that
                    // sinks below the quantile rank and bias t̃ upward).
                    if let Some(g) = grid_ref {
                        // The probe computes one density lower bound.
                        scratch.stats.bound_evals += 1;
                        let cell_lower =
                            g.cell_count(x) as f64 / n * kernel.eval_scaled_sq(grid_diag_sq);
                        if cell_lower - self_contrib > t_hi * (1.0 + params.epsilon) {
                            scratch.stats.record_outcome(PruneCause::Grid);
                            return Ok(cell_lower - self_contrib);
                        }
                    }
                    // Bounds live in corrected space; BoundDensity prunes raw
                    // densities, so shift by f₀ (see threshold.rs for the
                    // failure mode this prevents).
                    let b =
                        bounder.bound_density(x, t_lo + self_contrib, t_hi + self_contrib, scratch);
                    Ok((b.midpoint() - self_contrib).max(0.0))
                })?;
            for s in &worker_scratches {
                training_stats.merge(&s.stats);
            }
            let t = quantile_in_place(&mut densities, params.p)?;
            // Valid when t̃ falls inside the (slightly widened) bounds.
            let lo_ok = t >= bounds.lower * (1.0 - params.epsilon) - f64::MIN_POSITIVE;
            let hi_ok = t <= bounds.upper * (1.0 + params.epsilon);
            if lo_ok && hi_ok {
                break t;
            }
            reestimates += 1;
            if reestimates > 8 {
                return Err(Error::Numeric(
                    "threshold re-estimation failed to converge".into(),
                ));
            }
            // Relax the violated side and recompute the density pass.
            if !hi_ok {
                bounds.upper = t * params.bootstrap.backoff;
            }
            if !lo_ok {
                bounds.lower = t / params.bootstrap.backoff;
            }
        };

        let fit_report = FitReport {
            threshold_bounds: bounds,
            threshold,
            bootstrap,
            training_stats,
            threshold_reestimates: reestimates,
        };

        Ok(Self::from_model(
            Model {
                params: params.clone(),
                threshold,
                coreset_eps: 0.0,
                backend: BackendImpl::Tree(TreeBackend::new(
                    tree,
                    kernel,
                    grid,
                    params.opts,
                    params.epsilon,
                )),
            },
            fit_report,
        ))
    }

    /// The estimated-backend fit (HBE / RFF): build the sketch, estimate
    /// every training density at the backend's fixed budget, and take
    /// `t̃(p)` as the (weighted) p-quantile of the corrected estimates.
    /// No bootstrap runs — threshold pruning cannot speed up a
    /// fixed-budget estimator, so bootstrap bounds would be dead weight.
    /// Inputs other than the weights are pre-validated by the caller.
    fn fit_estimated(
        data: &Matrix,
        weights: Option<&[f64]>,
        coreset_eps: f64,
        params: &Params,
        n_threads: usize,
        spans: &Spans,
    ) -> Result<Self> {
        let n_threads = n_threads.max(1);
        if let Some(ws) = weights {
            // The tree path catches bad weights in the weighted tree
            // build; the sketch builds fold weights silently, so check
            // here instead.
            if ws.iter().any(|w| !w.is_finite() || *w <= 0.0) {
                return Err(Error::Numeric(
                    "point weights must be finite and positive".into(),
                ));
            }
        }
        let w_total = match weights {
            Some(ws) => ws.iter().sum::<f64>(),
            None => data.rows() as f64,
        };

        // Bandwidths exactly as the corresponding tree fit would choose
        // them, so backends answer about the *same* KDE.
        let h = match weights {
            None => scotts_rule(data, params.bandwidth_factor)?,
            Some(ws) => {
                let stds = tkdc_common::stats::column_stds_weighted(data, ws);
                let eff_n = (w_total.round() as usize).max(1); // CAST: total mass is a point count far below 2^53
                scotts_rule_from_stds(&stds, eff_n, params.bandwidth_factor)?
            }
        };
        let kernel = Kernel::new(params.kernel, h)?;
        let k0 = kernel.max_value();

        let build_span = spans.enter("fit.backend_build");
        let backend = match &params.backend {
            BackendSpec::Hbe(hp) => BackendImpl::Hbe(HbeBackend::build(
                data.clone(),
                weights.map(|ws| ws.to_vec()),
                kernel,
                params.delta,
                *hp,
                params.seed,
            )),
            BackendSpec::Rff(rp) => BackendImpl::Rff(RffBackend::build(
                data,
                weights,
                kernel,
                params.delta,
                *rp,
                params.seed,
            )),
            // fit_with / fit_weighted_with route Tree elsewhere.
            BackendSpec::Tree => {
                return Err(invalid_param(
                    "backend",
                    "the tree backend does not take the estimated fit path",
                ))
            }
        };

        drop(build_span);
        let _threshold_span = spans.enter("fit.threshold");

        // Training densities, corrected by each point's own mass share
        // w_i·K(0)/W (Eq. 1 generalized to weighted points).
        let dyn_b = backend.as_dyn();
        let (mut densities, worker_scratches) =
            engine::run_batch(data.rows(), n_threads, QueryScratch::new, |i, scratch| {
                let b = dyn_b.bound_density_relative(data.row(i), params.epsilon, scratch);
                let self_i = weights.map_or(1.0, |ws| ws[i]) * k0 / w_total;
                Ok((b.midpoint() - self_i).max(0.0))
            })?;
        let mut training_stats = QueryStats::default();
        for s in &worker_scratches {
            training_stats.merge(&s.stats);
        }

        let threshold = match weights {
            Some(ws) => weighted_quantile(&densities, ws, params.p)?,
            None => quantile_in_place(&mut densities, params.p)?,
        };

        // The stored bounds carry the usual ±ε tolerance slack plus the
        // coreset ε-fold; the per-query probabilistic interval is what
        // actually certifies (with probability 1 − δ) at classify time.
        let threshold_bounds = ThresholdBounds {
            lower: threshold * (1.0 - params.epsilon),
            upper: threshold * (1.0 + params.epsilon),
        }
        .folded(coreset_eps * k0);

        let fit_report = FitReport {
            threshold_bounds,
            threshold,
            bootstrap: BootstrapReport::default(),
            training_stats,
            threshold_reestimates: 0,
        };
        Ok(Self::from_model(
            Model {
                params: params.clone(),
                threshold,
                coreset_eps,
                backend,
            },
            fit_report,
        ))
    }

    /// Trains a classifier on a *weighted* dataset — typically a coreset
    /// produced by `tkdc-coreset` — where row `i` carries mass
    /// `weights[i]` and the KDE is `f(x) = Σ w_i K(x, x_i) / Σ w_i`.
    /// Serial; equivalent to
    /// `fit_weighted_with(…, ExecPolicy::Serial)`.
    ///
    /// `coreset_eps` is the coreset's certified relative density error
    /// (in units of the kernel maximum `K(0)`): the weighted KDE is
    /// guaranteed to lie within `±coreset_eps·K(0)` of the full-data KDE.
    /// It is folded into every certified interval the classifier hands
    /// out — [`Self::classify_with`] returns [`Label::Unknown`] when the
    /// widened interval straddles the threshold, so a certified
    /// `High`/`Low` from a coreset model is certified *against the full
    /// dataset*, not just the coreset. Pass `0.0` for exactly-weighted
    /// data (e.g. pre-aggregated duplicates) to keep the paper's midpoint
    /// rule.
    ///
    /// Differences from [`Self::fit`]: no threshold bootstrap (the
    /// coreset is already small enough for a direct relative-precision
    /// density pass), the threshold is the *weighted* p-quantile of
    /// training densities, and the grid cache is disabled (its integer
    /// cell counts cannot carry fractional mass).
    ///
    /// # Errors
    /// Propagates parameter-validation errors; rejects empty input,
    /// weight/row count mismatches, non-finite or negative `coreset_eps`,
    /// and non-positive weights.
    pub fn fit_weighted(
        data: &Matrix,
        weights: &[f64],
        coreset_eps: f64,
        params: &Params,
    ) -> Result<Self> {
        Self::fit_weighted_with(data, weights, coreset_eps, params, ExecPolicy::Serial)
    }

    /// [`Self::fit_weighted`] with the density pass work-stolen across
    /// the policy's resolved thread count. Bit-identical to the serial
    /// path for every thread count: densities come back in index order
    /// and the weighted quantile sorts them deterministically.
    ///
    /// # Errors
    /// See [`Self::fit_weighted`].
    pub fn fit_weighted_with(
        data: &Matrix,
        weights: &[f64],
        coreset_eps: f64,
        params: &Params,
        policy: ExecPolicy,
    ) -> Result<Self> {
        Self::fit_weighted_with_spans(data, weights, coreset_eps, params, policy, &Spans::off())
    }

    /// [`Self::fit_weighted_with`] with stage spans (see
    /// [`Self::fit_with_spans`] for the span contract).
    ///
    /// # Errors
    /// See [`Self::fit_weighted`].
    pub fn fit_weighted_with_spans(
        data: &Matrix,
        weights: &[f64],
        coreset_eps: f64,
        params: &Params,
        policy: ExecPolicy,
        spans: &Spans,
    ) -> Result<Self> {
        params.validate()?;
        if data.rows() == 0 {
            return Err(Error::EmptyInput("training data"));
        }
        if weights.len() != data.rows() {
            return Err(Error::DimensionMismatch {
                expected: data.rows(),
                actual: weights.len(),
            });
        }
        if !coreset_eps.is_finite() || coreset_eps < 0.0 {
            return Err(Error::Numeric(format!(
                "coreset epsilon must be finite and non-negative, got {coreset_eps}"
            )));
        }
        match params.backend {
            BackendSpec::Tree => {
                Self::fit_weighted_tree(data, weights, coreset_eps, params, policy, spans)
            }
            BackendSpec::Hbe(_) | BackendSpec::Rff(_) => Self::fit_estimated(
                data,
                Some(weights),
                coreset_eps,
                params,
                policy.resolved_threads(),
                spans,
            ),
        }
    }

    /// The tree-backend weighted fit. Inputs are pre-validated by
    /// [`Self::fit_weighted_with_spans`].
    fn fit_weighted_tree(
        data: &Matrix,
        weights: &[f64],
        coreset_eps: f64,
        params: &Params,
        policy: ExecPolicy,
        spans: &Spans,
    ) -> Result<Self> {
        let n_threads = policy.resolved_threads();

        // Weight-aware index: node masses replace point counts in every
        // density bound the traversal computes.
        let build_span = spans.enter("fit.tree_build");
        let tree =
            KdTree::build_weighted(data, weights, params.leaf_size, params.opts.split_rule())?;
        let w_total = tree.total_mass();

        // Bandwidths from *weighted* column statistics with the effective
        // sample size W = Σw: a coreset whose weights sum to the input
        // count reproduces the full-data Scott's-rule bandwidth, which
        // label agreement with the full-data fit requires.
        let stds = tkdc_common::stats::column_stds_weighted(data, weights);
        let eff_n = (w_total.round() as usize).max(1); // CAST: total mass is a point count far below 2^53
        let h = scotts_rule_from_stds(&stds, eff_n, params.bandwidth_factor)?;
        let kernel = Kernel::new(params.kernel, h)?;
        let k0 = kernel.max_value();

        drop(build_span);
        let _threshold_span = spans.enter("fit.threshold");

        // Training densities at relative precision ε — no bootstrap
        // bounds exist to prune against, and none are needed at coreset
        // scale. Each point's self-contribution is its own mass share
        // w_i·K(0)/W (Eq. 1 generalized to weighted points).
        let bounder = DensityBounder::new(&tree, &kernel, params.opts, params.epsilon);
        let (densities, worker_scratches) =
            engine::run_batch(data.rows(), n_threads, QueryScratch::new, |i, scratch| {
                let b = bounder.bound_density_relative(data.row(i), params.epsilon, scratch);
                let self_i = weights[i] * k0 / w_total;
                Ok((b.midpoint() - self_i).max(0.0))
            })?;
        let mut training_stats = QueryStats::default();
        for s in &worker_scratches {
            training_stats.merge(&s.stats);
        }

        // Weighted p-quantile: the smallest density d with
        // Σ{w_i : density_i ≤ d} ≥ p·W. With unit weights this is exactly
        // the rank-⌈np⌉ order statistic the unweighted fit uses.
        let threshold = weighted_quantile(&densities, weights, params.p)?;

        // ε-folding: the pass above certifies the *coreset* KDE; the
        // full-data KDE lives within ±ε_abs of it, so the stored bounds
        // widen by the absolute coreset error on top of the usual ±ε·t
        // tolerance slack.
        let eps_abs = coreset_eps * k0;
        let threshold_bounds = ThresholdBounds {
            lower: threshold * (1.0 - params.epsilon),
            upper: threshold * (1.0 + params.epsilon),
        }
        .folded(eps_abs);

        let fit_report = FitReport {
            threshold_bounds,
            threshold,
            bootstrap: BootstrapReport::default(),
            training_stats,
            threshold_reestimates: 0,
        };
        Ok(Self::from_model(
            Model {
                params: params.clone(),
                threshold,
                coreset_eps,
                backend: BackendImpl::Tree(TreeBackend::new(
                    tree,
                    kernel,
                    None,
                    params.opts,
                    params.epsilon,
                )),
            },
            fit_report,
        ))
    }

    /// Reassembles a tree-backend classifier from persisted parts (see
    /// `tkdc::model_io`). Training diagnostics are not persisted and load
    /// back empty.
    ///
    /// # Errors
    /// Fails when the parts are mutually inconsistent (dimensionality,
    /// grid cell count, backend spec) or the parameters are invalid.
    pub(crate) fn from_loaded_parts(
        params: Params,
        tree: KdTree,
        kernel: Kernel,
        grid: Option<BandwidthGrid>,
        threshold: f64,
        threshold_bounds: ThresholdBounds,
        coreset_eps: f64,
    ) -> Result<Self> {
        params.validate()?;
        if !matches!(params.backend, BackendSpec::Tree) {
            return Err(Error::Numeric(
                "loaded tree model carries a non-tree backend spec".into(),
            ));
        }
        if kernel.dim() != tree.dim() {
            return Err(Error::DimensionMismatch {
                expected: tree.dim(),
                actual: kernel.dim(),
            });
        }
        Self::check_loaded_threshold(threshold, coreset_eps)?;
        // The grid's u32 cell counts ignore point masses and its fast
        // path certifies against the coreset, not the full data — a
        // weighted or ε-folded model must never carry one.
        if grid.is_some() && (tree.is_weighted() || coreset_eps > 0.0) {
            return Err(Error::Numeric(
                "weighted/coreset models cannot carry a grid cache".into(),
            ));
        }
        if let Some(g) = &grid {
            // The grid's cell edges must align with the kernel/tree
            // dimensionality; a mismatched pair would index cells with the
            // wrong key width and silently mis-prune.
            if g.cell_edges().len() != tree.dim() {
                return Err(Error::DimensionMismatch {
                    expected: tree.dim(),
                    actual: g.cell_edges().len(),
                });
            }
        }
        let backend = BackendImpl::Tree(TreeBackend::new(
            tree,
            kernel,
            grid,
            params.opts,
            params.epsilon,
        ));
        Ok(Self::from_loaded_backend(
            params,
            backend,
            threshold,
            threshold_bounds,
            coreset_eps,
        ))
    }

    /// Reassembles an HBE-backend classifier from persisted parts: the
    /// hash tables are rebuilt deterministically from the model seed, so
    /// only points, weights and parameters persist.
    ///
    /// # Errors
    /// Fails when the parts are mutually inconsistent or invalid.
    pub(crate) fn from_loaded_hbe(
        params: Params,
        kernel: Kernel,
        points: Matrix,
        weights: Option<Vec<f64>>,
        threshold: f64,
        threshold_bounds: ThresholdBounds,
        coreset_eps: f64,
    ) -> Result<Self> {
        params.validate()?;
        let BackendSpec::Hbe(hp) = params.backend else {
            return Err(Error::Numeric(
                "loaded hbe model carries a non-hbe backend spec".into(),
            ));
        };
        if points.rows() == 0 {
            return Err(Error::EmptyInput("loaded training points"));
        }
        if kernel.dim() != points.cols() {
            return Err(Error::DimensionMismatch {
                expected: points.cols(),
                actual: kernel.dim(),
            });
        }
        if let Some(ws) = &weights {
            if ws.len() != points.rows() {
                return Err(Error::DimensionMismatch {
                    expected: points.rows(),
                    actual: ws.len(),
                });
            }
            if ws.iter().any(|w| !w.is_finite() || *w <= 0.0) {
                return Err(Error::Numeric(
                    "loaded point weights must be finite and positive".into(),
                ));
            }
        }
        Self::check_loaded_threshold(threshold, coreset_eps)?;
        let backend = BackendImpl::Hbe(HbeBackend::build(
            points,
            weights,
            kernel,
            params.delta,
            hp,
            params.seed,
        ));
        Ok(Self::from_loaded_backend(
            params,
            backend,
            threshold,
            threshold_bounds,
            coreset_eps,
        ))
    }

    /// Reassembles an RFF-backend classifier from persisted parts: the
    /// feature bank regenerates from the model seed, so only the
    /// coefficient sketch persists — not the training points.
    ///
    /// # Errors
    /// Fails when the parts are mutually inconsistent or invalid.
    // The argument list mirrors the persisted v3 record field-for-field;
    // bundling them into a struct would just rename the format module's
    // locals.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_loaded_rff(
        params: Params,
        kernel: Kernel,
        coef: Vec<f64>,
        n: usize,
        total_mass: f64,
        threshold: f64,
        threshold_bounds: ThresholdBounds,
        coreset_eps: f64,
    ) -> Result<Self> {
        params.validate()?;
        let BackendSpec::Rff(rp) = params.backend else {
            return Err(Error::Numeric(
                "loaded rff model carries a non-rff backend spec".into(),
            ));
        };
        if coef.len() != rp.features {
            return Err(Error::DimensionMismatch {
                expected: rp.features,
                actual: coef.len(),
            });
        }
        if n == 0 {
            return Err(Error::EmptyInput("loaded training count"));
        }
        if !total_mass.is_finite() || total_mass <= 0.0 {
            return Err(Error::Numeric(
                "loaded total mass is not a positive weight sum".into(),
            ));
        }
        if coef.iter().any(|c| !c.is_finite()) {
            return Err(Error::Numeric(
                "loaded rff coefficients contain non-finite values".into(),
            ));
        }
        Self::check_loaded_threshold(threshold, coreset_eps)?;
        let backend = BackendImpl::Rff(RffBackend::from_parts(
            kernel,
            params.delta,
            rp,
            params.seed,
            coef,
            n,
            total_mass,
        ));
        Ok(Self::from_loaded_backend(
            params,
            backend,
            threshold,
            threshold_bounds,
            coreset_eps,
        ))
    }

    /// Shared threshold/ε sanity checks for every load path.
    fn check_loaded_threshold(threshold: f64, coreset_eps: f64) -> Result<()> {
        if !threshold.is_finite() || threshold < 0.0 {
            return Err(Error::Numeric("loaded threshold is not a density".into()));
        }
        if !coreset_eps.is_finite() || coreset_eps < 0.0 {
            return Err(Error::Numeric(
                "loaded coreset epsilon is not a valid error bound".into(),
            ));
        }
        Ok(())
    }

    /// Final assembly for the load paths: empty diagnostics, fresh pool.
    fn from_loaded_backend(
        params: Params,
        backend: BackendImpl,
        threshold: f64,
        threshold_bounds: ThresholdBounds,
        coreset_eps: f64,
    ) -> Self {
        let fit_report = FitReport {
            threshold_bounds,
            threshold,
            bootstrap: Default::default(),
            training_stats: QueryStats::default(),
            threshold_reestimates: 0,
        };
        Self::from_model(
            Model {
                params,
                threshold,
                coreset_eps,
                backend,
            },
            fit_report,
        )
    }

    /// Serialized form of the grid cache, if active (model persistence;
    /// tree backend only).
    pub fn grid_raw(&self) -> Option<tkdc_index::GridRaw> {
        self.model
            .backend
            .as_tree()
            .and_then(|tb| tb.grid())
            .map(|g| g.to_raw_parts())
    }

    /// The refined threshold estimate `t̃(p)`.
    pub fn threshold(&self) -> f64 {
        self.model.threshold
    }

    /// The coreset's certified relative density error ε (in units of the
    /// kernel maximum `K(0)`); `0.0` for full-data fits.
    pub fn coreset_eps(&self) -> f64 {
        self.model.coreset_eps
    }

    /// The absolute density error the ε-fold widens certified intervals
    /// by: `coreset_eps · K(0)`. Zero for full-data fits.
    pub fn coreset_eps_abs(&self) -> f64 {
        self.model.coreset_eps_abs()
    }

    /// The parameters the model was trained with.
    pub fn params(&self) -> &Params {
        &self.model.params
    }

    /// The kernel (with its fitted bandwidths).
    pub fn kernel(&self) -> &Kernel {
        self.model.backend.as_dyn().kernel()
    }

    /// The spatial index, when the tree backend is active; `None` for
    /// the estimated backends, which hold no tree.
    pub fn tree(&self) -> Option<&KdTree> {
        self.model.backend.as_tree().map(|tb| tb.tree())
    }

    /// Dimensionality of the training data.
    pub fn dim(&self) -> usize {
        self.model.backend.as_dyn().dim()
    }

    /// Stable lowercase name of the active backend
    /// (`"tree"`, `"hbe"`, `"rff"`).
    pub fn backend_name(&self) -> &'static str {
        self.model.backend.as_dyn().name()
    }

    /// Provenance of the density intervals the active backend produces:
    /// [`BoundKind::Certified`] for the tree, probabilistic for the
    /// estimators.
    pub fn bound_kind(&self) -> BoundKind {
        self.model.backend.as_dyn().bound_kind()
    }

    /// Training diagnostics.
    pub fn fit_report(&self) -> &FitReport {
        &self.fit_report
    }

    /// Point-in-time telemetry of the classifier's persistent pool:
    /// per-worker task/steal/park counters and busy/idle time (see
    /// [`engine::PoolTelemetry`]). Empty worker list until the first
    /// batch big enough to engage the pool.
    pub fn pool_telemetry(&self) -> engine::PoolTelemetry {
        self.pool.telemetry()
    }

    /// Whether the grid cache is active (tree backend only).
    pub fn grid_enabled(&self) -> bool {
        self.model
            .backend
            .as_tree()
            .is_some_and(|tb| tb.grid().is_some())
    }

    /// Number of training points.
    pub fn n_train(&self) -> usize {
        self.model.backend.as_dyn().n_train()
    }

    /// The active backend as the shipped enum (model persistence needs
    /// the concrete payloads, not the trait surface).
    pub(crate) fn backend_impl(&self) -> &BackendImpl {
        &self.model.backend
    }
}

impl Model {
    /// The absolute density error the ε-fold widens certified intervals
    /// by: `coreset_eps · K(0)`. Zero for full-data fits.
    fn coreset_eps_abs(&self) -> f64 {
        self.coreset_eps * self.backend.as_dyn().kernel().max_value()
    }

    fn check_dim(&self, x: &[f64]) -> Result<()> {
        let dim = self.backend.as_dyn().dim();
        if x.len() != dim {
            return Err(Error::DimensionMismatch {
                expected: dim,
                actual: x.len(),
            });
        }
        // A NaN coordinate would propagate through every distance bound
        // and silently classify LOW; surface it as an input error instead.
        if x.iter().any(|v| v.is_nan()) {
            return Err(Error::Numeric("query contains NaN coordinates".into()));
        }
        Ok(())
    }

    /// [`Classifier::classify_with`] — see there for the label contract.
    fn classify_with(&self, x: &[f64], scratch: &mut QueryScratch) -> Result<Label> {
        self.check_dim(x)?;
        let t = self.threshold;
        if self.coreset_eps > 0.0 {
            // ε-folded path: bound_density_with already widens by ε_abs.
            let b = self.bound_density_with(x, scratch)?;
            return Ok(if b.lower > t {
                Label::High
            } else if b.upper < t {
                Label::Low
            } else {
                Label::Unknown
            });
        }
        // Grid fast path (tree backend only): same-cell mass already
        // proves HIGH.
        if let Some(tb) = self.backend.as_tree() {
            if let Some(cell_lower) = {
                // The probe computes one density lower bound; account for
                // it so merged statistics reflect the true work mix (a
                // grid-pruned query is cheap, not free).
                let probe = tb.grid_lower(x);
                if probe.is_some() {
                    scratch.stats.bound_evals += 1;
                }
                probe
            } {
                if cell_lower > t * (1.0 + self.params.epsilon) {
                    scratch.stats.record_outcome(PruneCause::Grid);
                    if scratch.tracer.is_active() {
                        let stats = scratch.stats;
                        scratch.tracer.finish_grid(t, stats, cell_lower);
                    }
                    return Ok(Label::High);
                }
            }
        }
        let b = self.bound_density_with(x, scratch)?;
        Ok(if b.midpoint() > t {
            Label::High
        } else {
            Label::Low
        })
    }

    /// [`Classifier::bound_density_with`] — see there for the ε-fold
    /// contract.
    fn bound_density_with(&self, x: &[f64], scratch: &mut QueryScratch) -> Result<DensityBounds> {
        self.check_dim(x)?;
        let ea = self.coreset_eps_abs();
        let t_lo = (self.threshold - ea).max(0.0);
        let t_hi = self.threshold + ea;
        let mut b = self.backend.as_dyn().bound_density(x, t_lo, t_hi, scratch);
        if ea > 0.0 {
            b.lower = (b.lower - ea).max(0.0);
            b.upper += ea;
        }
        Ok(b)
    }

    /// [`Classifier::bound_density_relative_with`] — see there.
    fn bound_density_relative_with(
        &self,
        x: &[f64],
        rtol: f64,
        scratch: &mut QueryScratch,
    ) -> Result<DensityBounds> {
        self.check_dim(x)?;
        let mut b = self
            .backend
            .as_dyn()
            .bound_density_relative(x, rtol, scratch);
        let ea = self.coreset_eps_abs();
        if ea > 0.0 {
            b.lower = (b.lower - ea).max(0.0);
            b.upper += ea;
        }
        Ok(b)
    }

    /// [`Classifier::exact_density`] — see there.
    fn exact_density(&self, x: &[f64]) -> Result<f64> {
        self.check_dim(x)?;
        let mut scratch = QueryScratch::new();
        self.backend
            .as_dyn()
            .exact_density(x, &mut scratch)
            .ok_or_else(|| {
                Error::Numeric(format!(
                    "the {} backend does not retain training points; exact density is unavailable",
                    self.backend.as_dyn().name()
                ))
            })
    }
}

impl Classifier {
    /// Classifies one query point with a caller-provided scratch (the
    /// zero-allocation hot path).
    ///
    /// Full-data models answer [`Label::High`]/[`Label::Low`] by the
    /// paper's midpoint rule. Coreset-backed models (`coreset_eps > 0`)
    /// answer by the ε-folded certified interval instead: `High` only
    /// when `lower > t̃`, `Low` only when `upper < t̃`, and
    /// [`Label::Unknown`] when the widened interval straddles — so a
    /// certified label from a coreset model holds against the *full*
    /// dataset, never flipping a label the full-data model certifies.
    ///
    /// Under an estimated backend (HBE/RFF) the interval — and therefore
    /// the label — is probabilistic: correct with probability `1 − δ`
    /// per query (see [`Classifier::bound_kind`]).
    pub fn classify_with(&self, x: &[f64], scratch: &mut QueryScratch) -> Result<Label> {
        self.model.classify_with(x, scratch)
    }

    /// Classifies one query point (allocates a fresh scratch; prefer
    /// [`Self::classify_with`] in loops).
    pub fn classify(&self, x: &[f64]) -> Result<Label> {
        let mut scratch = QueryScratch::new();
        self.model.classify_with(x, &mut scratch)
    }

    /// Density bounds for a query against the fitted threshold
    /// (`t_l = t_u = t̃`), exposing the raw Algorithm 2 output.
    ///
    /// For a coreset-backed model the traversal prunes against the
    /// ε-widened thresholds `[t̃ − ε_abs, t̃ + ε_abs]` and the returned
    /// interval is widened by `ε_abs = coreset_eps·K(0)` on each side
    /// (lower clamped at zero), so it certifies the *full-data* density,
    /// not just the coreset's. Full-data models are unaffected.
    /// Estimated backends ignore the thresholds and return their
    /// fixed-budget `1 − δ` confidence interval.
    pub fn bound_density_with(
        &self,
        x: &[f64],
        scratch: &mut QueryScratch,
    ) -> Result<DensityBounds> {
        self.model.bound_density_with(x, scratch)
    }

    /// Density bounds refined to *relative* precision `rtol`
    /// (`f_u − f_l ≤ rtol·f_l`), independent of the threshold — for
    /// callers that need density *values* (log-likelihood ratios,
    /// p-value-style reporting) rather than a classification. For
    /// coreset-backed models the returned interval is additionally
    /// widened by `±coreset_eps·K(0)` so it certifies the full-data
    /// density. Estimated backends return their fixed-budget interval
    /// regardless of `rtol`.
    pub fn bound_density_relative_with(
        &self,
        x: &[f64],
        rtol: f64,
        scratch: &mut QueryScratch,
    ) -> Result<DensityBounds> {
        self.model.bound_density_relative_with(x, rtol, scratch)
    }

    /// Exact kernel density of a query (exhaustive; test/diagnostic use).
    /// For weighted models this is exact with respect to the *weighted
    /// training set* — the full-data density it approximates still lives
    /// within `±coreset_eps·K(0)` of the returned value.
    ///
    /// # Errors
    /// Fails for backends that persist only sketches and not the
    /// training points themselves (RFF).
    pub fn exact_density(&self, x: &[f64]) -> Result<f64> {
        self.model.exact_density(x)
    }

    /// Whether a batch of `total` items under `policy` routes through
    /// the persistent pool (as opposed to running inline or on scoped
    /// per-batch threads). Only [`ExecPolicy::Parallel`] uses the pool,
    /// and only when the batch is big enough to engage more than one
    /// thread.
    fn uses_pool(policy: ExecPolicy, total: usize) -> bool {
        let n_threads = policy.resolved_threads();
        matches!(policy, ExecPolicy::Parallel { .. }) && n_threads > 1 && total >= 2 * n_threads
    }

    /// Batch core for the policies that can run on *borrowed* closures:
    /// serial/tiny batches inline, [`ExecPolicy::StaticChunked`] on
    /// equal chunks, [`ExecPolicy::ScopedSpawn`] on the per-batch
    /// work-stealing engine. [`ExecPolicy::Parallel`] batches large
    /// enough for the pool never reach this — they go through
    /// [`Self::batch_shared`].
    fn run_borrowed<T: Send>(
        &self,
        total: usize,
        policy: ExecPolicy,
        work: impl Fn(usize, &mut QueryScratch) -> Result<T> + Sync,
    ) -> Result<(Vec<T>, QueryStats)> {
        let n_threads = policy.resolved_threads();
        // Tiny batches: thread wake/join dwarfs the work — run inline.
        let serial =
            matches!(policy, ExecPolicy::Serial) || n_threads == 1 || total < 2 * n_threads;
        if serial {
            let mut scratch = QueryScratch::new();
            let mut out = Vec::with_capacity(total);
            for i in 0..total {
                out.push(work(i, &mut scratch)?);
            }
            return Ok((out, scratch.stats));
        }
        if matches!(policy, ExecPolicy::StaticChunked { .. }) {
            return self.batch_static(total, n_threads, &work);
        }
        let (out, scratches) = engine::run_batch(total, n_threads, QueryScratch::new, work)?;
        let mut stats = QueryStats::default();
        for s in &scratches {
            stats.merge(&s.stats);
        }
        Ok((out, stats))
    }

    /// Pool-backed batch core: runs a `'static` work closure (holding
    /// `Arc` clones of the model and queries) on the classifier's
    /// persistent pool. Falls back to [`Self::run_borrowed`] whenever
    /// the pool would not be engaged, so results, statistics, and the
    /// serial-inline fast path are identical to the borrowed entry
    /// points.
    fn batch_shared<T: Send + 'static>(
        &self,
        total: usize,
        policy: ExecPolicy,
        work: impl Fn(usize, &mut QueryScratch) -> Result<T> + Send + Sync + 'static,
    ) -> Result<(Vec<T>, QueryStats)> {
        if !Self::uses_pool(policy, total) {
            return self.run_borrowed(total, policy, work);
        }
        let n_threads = policy.resolved_threads();
        let (out, scratches) = self
            .pool
            .run_batch(total, n_threads, QueryScratch::new, work)?;
        let mut stats = QueryStats::default();
        for s in &scratches {
            stats.merge(&s.stats);
        }
        Ok((out, stats))
    }

    /// Static-chunked scheduling: `n_threads` equal contiguous ranges
    /// claimed up front (the [`ExecPolicy::StaticChunked`] baseline).
    fn batch_static<T: Send>(
        &self,
        total: usize,
        n_threads: usize,
        work: &(impl Fn(usize, &mut QueryScratch) -> Result<T> + Sync),
    ) -> Result<(Vec<T>, QueryStats)> {
        let chunk = total.div_ceil(n_threads);
        let mut results: Vec<Result<(Vec<T>, QueryStats)>> = Vec::new();
        tkdc_sync::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n_threads);
            for tid in 0..n_threads {
                let start = tid * chunk;
                let end = ((tid + 1) * chunk).min(total);
                if start >= end {
                    break;
                }
                handles.push(scope.spawn(move || {
                    let mut scratch = QueryScratch::new();
                    let mut seg = Vec::with_capacity(end - start);
                    for i in start..end {
                        seg.push(work(i, &mut scratch)?);
                    }
                    Ok((seg, scratch.stats))
                }));
            }
            for h in handles {
                // INVARIANT: re-raising a worker panic is the only sound option here.
                results.push(h.join().expect("classification thread panicked"));
            }
        });
        let mut out = Vec::with_capacity(total);
        let mut stats = QueryStats::default();
        for r in results {
            let (seg, s) = r?;
            out.extend(seg);
            stats.merge(&s);
        }
        Ok((out, stats))
    }

    /// Classifies every row of `queries` under the given execution
    /// policy, returning labels in query order plus the aggregated
    /// traversal statistics. This is the **unified batch entry point**
    /// used by the CLI, the benchmark harnesses, and the `tkdc-serve`
    /// daemon; labels and statistics are identical for every policy and
    /// thread count.
    ///
    /// [`ExecPolicy::Parallel`] batches run on the classifier's
    /// persistent work-stealing pool — parked workers wake, drain the
    /// batch, and park again, so repeated batches pay no thread
    /// spawn/join. The pool's job closures must be `'static`, which is
    /// why callers holding their queries in an [`Arc`] should prefer
    /// [`Self::classify_batch_shared`]: this borrowed entry point has to
    /// clone the query matrix once per pool-routed batch.
    ///
    /// The paper evaluates single-threaded throughput; the parallel
    /// policies are the "embarrassingly parallel queries" extension
    /// discussed in §6.
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors (the error at
    /// the smallest query index wins, independent of scheduling).
    pub fn classify_batch_with(
        &self,
        queries: &Matrix,
        policy: ExecPolicy,
    ) -> Result<(Vec<Label>, QueryStats)> {
        if Self::uses_pool(policy, queries.rows()) {
            return self.classify_batch_shared(Arc::new(queries.clone()), policy);
        }
        self.run_borrowed(queries.rows(), policy, |i, scratch| {
            self.model.classify_with(queries.row(i), scratch)
        })
    }

    /// [`Self::classify_batch_with`] over shared queries: the zero-copy
    /// entry point for the pool path. The `Arc`s of the model and the
    /// query matrix ride into the pool's `'static` job closure, so no
    /// per-batch copy of the queries is made — this is what
    /// `tkdc-serve` calls per request.
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors (the error at
    /// the smallest query index wins, independent of scheduling).
    pub fn classify_batch_shared(
        &self,
        queries: Arc<Matrix>,
        policy: ExecPolicy,
    ) -> Result<(Vec<Label>, QueryStats)> {
        let total = queries.rows();
        let model = self.model.clone();
        self.batch_shared(total, policy, move |i, scratch| {
            model.classify_with(queries.row(i), scratch)
        })
    }

    /// Density bounds ([`Self::bound_density_with`]) for every row of
    /// `queries` under the given execution policy — the unified batch
    /// companion of [`Self::classify_batch_with`] for callers that need
    /// certified bounds rather than labels. Pool routing and the
    /// clone-per-batch caveat are identical to
    /// [`Self::classify_batch_with`]; prefer
    /// [`Self::bound_density_batch_shared`] when the queries already
    /// live in an [`Arc`].
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors.
    pub fn bound_density_batch_with(
        &self,
        queries: &Matrix,
        policy: ExecPolicy,
    ) -> Result<(Vec<DensityBounds>, QueryStats)> {
        if Self::uses_pool(policy, queries.rows()) {
            return self.bound_density_batch_shared(Arc::new(queries.clone()), policy);
        }
        self.run_borrowed(queries.rows(), policy, |i, scratch| {
            self.model.bound_density_with(queries.row(i), scratch)
        })
    }

    /// [`Self::bound_density_batch_with`] over shared queries — the
    /// zero-copy pool entry point (see [`Self::classify_batch_shared`]).
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors.
    pub fn bound_density_batch_shared(
        &self,
        queries: Arc<Matrix>,
        policy: ExecPolicy,
    ) -> Result<(Vec<DensityBounds>, QueryStats)> {
        let total = queries.rows();
        let model = self.model.clone();
        self.batch_shared(total, policy, move |i, scratch| {
            model.bound_density_with(queries.row(i), scratch)
        })
    }

    /// Spanned batch core: the untraced batch pipeline with
    /// `classify.*` stage spans recorded on the submitting thread —
    /// `dispatch` (policy resolution and setup), `traversal` (the whole
    /// parallel execution), `reassembly` (merging worker outputs) — plus
    /// one synthetic `classify.leaf_sum` span per worker scratch
    /// carrying that worker's accumulated leaf kernel-sum time (each on
    /// its own derived track so per-track enter/exit streams stay
    /// well-formed).
    ///
    /// With an inert handle this *is* [`Self::batch_shared`]. With spans
    /// on, [`ExecPolicy::StaticChunked`] and [`ExecPolicy::ScopedSpawn`]
    /// both route through the scoped work-stealing engine (their worker
    /// scratches are needed for the leaf breakdown); results and merged
    /// statistics are schedule-invariant, so nothing observable changes.
    fn batch_shared_spanned<T: Send + 'static>(
        &self,
        total: usize,
        policy: ExecPolicy,
        spans: &Spans,
        work: impl Fn(usize, &mut QueryScratch) -> Result<T> + Send + Sync + 'static,
    ) -> Result<(Vec<T>, QueryStats)> {
        if !spans.is_enabled() {
            return self.batch_shared(total, policy, work);
        }
        let dispatch_span = spans.enter("classify.dispatch");
        let n_threads = policy.resolved_threads();
        let serial =
            matches!(policy, ExecPolicy::Serial) || n_threads == 1 || total < 2 * n_threads;
        let use_pool = Self::uses_pool(policy, total);
        let make_scratch = || {
            let mut s = QueryScratch::new();
            s.time_leaves = true;
            s
        };
        drop(dispatch_span);

        let t0 = spans.now_us();
        let (out, scratches) = {
            let _traversal = spans.enter("classify.traversal");
            if serial {
                let mut scratch = make_scratch();
                let mut res = Vec::with_capacity(total);
                for i in 0..total {
                    res.push(work(i, &mut scratch)?);
                }
                (res, vec![scratch])
            } else if use_pool {
                self.pool.run_batch(total, n_threads, make_scratch, work)?
            } else {
                engine::run_batch(total, n_threads, make_scratch, work)?
            }
        };

        let _reassembly = spans.enter("classify.reassembly");
        let mut stats = QueryStats::default();
        for (k, s) in scratches.iter().enumerate() {
            stats.merge(&s.stats);
            if s.leaf_ns > 0 {
                // Anchored at traversal start: the leaf time is an
                // accumulated share of that worker's traversal, not a
                // contiguous interval.
                // CAST: worker index is far below u64.
                let track = leaf_track(spans.submitter_track(), k as u64);
                spans.record_complete("classify.leaf_sum", track, t0, s.leaf_ns / 1000);
            }
        }
        Ok((out, stats))
    }

    /// [`Self::classify_batch_shared`] with stage spans (see the private
    /// `batch_shared_spanned` driver for the span contract). Labels and
    /// merged statistics are identical to the unspanned entry point.
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors.
    pub fn classify_batch_shared_spanned(
        &self,
        queries: Arc<Matrix>,
        policy: ExecPolicy,
        spans: &Spans,
    ) -> Result<(Vec<Label>, QueryStats)> {
        let total = queries.rows();
        let model = self.model.clone();
        self.batch_shared_spanned(total, policy, spans, move |i, scratch| {
            model.classify_with(queries.row(i), scratch)
        })
    }

    /// [`Self::bound_density_batch_shared`] with stage spans (same
    /// contract as [`Self::classify_batch_shared_spanned`]).
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors.
    pub fn bound_density_batch_shared_spanned(
        &self,
        queries: Arc<Matrix>,
        policy: ExecPolicy,
        spans: &Spans,
    ) -> Result<(Vec<DensityBounds>, QueryStats)> {
        let total = queries.rows();
        let model = self.model.clone();
        self.batch_shared_spanned(total, policy, spans, move |i, scratch| {
            model.bound_density_with(queries.row(i), scratch)
        })
    }

    /// Traced variant of [`Self::run_borrowed`]: every worker scratch
    /// carries a tracer sampling by query index (`every`; `0` disables),
    /// and the completed traces are merged and sorted by index.
    ///
    /// Every parallel policy routes through the scoped work-stealing
    /// engine here — *not* the pool. Tracing is a diagnostic path where
    /// per-batch thread spawn is noise against the tracing overhead
    /// itself, and the borrowed closures keep it allocation-honest;
    /// traces and merged statistics are schedule-invariant (each trace's
    /// content depends only on its query), so neither the static-chunk
    /// nor the pool distinction carries an observable difference.
    #[cfg(feature = "obs")]
    fn batch_traced<T: Send>(
        &self,
        total: usize,
        policy: ExecPolicy,
        every: u64,
        spans: &Spans,
        work: impl Fn(usize, &mut QueryScratch) -> Result<T> + Sync,
    ) -> Result<(Vec<T>, QueryStats, Vec<QueryTrace>)> {
        let dispatch_span = spans.enter("classify.dispatch");
        let traced_work = |i: usize, scratch: &mut QueryScratch| {
            scratch.begin_trace(i as u64); // CAST: batch index widens to u64
            work(i, scratch)
        };
        let time_leaves = spans.is_enabled();
        let make_scratch = || {
            let mut s = QueryScratch::new();
            s.tracer = Tracer::enabled(every);
            s.time_leaves = time_leaves;
            s
        };
        let n_threads = policy.resolved_threads();
        let serial =
            matches!(policy, ExecPolicy::Serial) || n_threads == 1 || total < 2 * n_threads;
        drop(dispatch_span);
        let t0 = spans.now_us();
        let (out, mut scratches) = {
            let _traversal = spans.enter("classify.traversal");
            if serial {
                let mut scratch = make_scratch();
                let mut res = Vec::with_capacity(total);
                for i in 0..total {
                    res.push(traced_work(i, &mut scratch)?);
                }
                (res, vec![scratch])
            } else {
                engine::run_batch(total, n_threads, make_scratch, traced_work)?
            }
        };
        let _reassembly = spans.enter("classify.reassembly");
        let mut stats = QueryStats::default();
        let mut traces = Vec::new();
        for (k, s) in scratches.iter_mut().enumerate() {
            stats.merge(&s.stats);
            traces.extend(s.tracer.take_traces());
            if s.leaf_ns > 0 {
                // CAST: worker index is far below u64.
                let track = leaf_track(spans.submitter_track(), k as u64);
                spans.record_complete("classify.leaf_sum", track, t0, s.leaf_ns / 1000);
            }
        }
        traces.sort_by_key(|t| t.query);
        Ok((out, stats, traces))
    }

    /// [`Self::classify_batch_with`] with per-query tracing: labels and
    /// merged statistics are identical to the untraced entry point; the
    /// third element holds one [`QueryTrace`] per sampled query (every
    /// `every`-th index; `1` = all, `0` = none), sorted by query index
    /// and therefore identical at every thread count.
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors.
    #[cfg(feature = "obs")]
    pub fn classify_batch_traced(
        &self,
        queries: &Matrix,
        policy: ExecPolicy,
        every: u64,
    ) -> Result<(Vec<Label>, QueryStats, Vec<QueryTrace>)> {
        self.classify_batch_traced_spanned(queries, policy, every, &Spans::off())
    }

    /// [`Self::classify_batch_traced`] with stage spans alongside the
    /// per-query traces (what `tkdc explain` uses to print both a bound
    /// trajectory and a stage breakdown from one run).
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors.
    #[cfg(feature = "obs")]
    pub fn classify_batch_traced_spanned(
        &self,
        queries: &Matrix,
        policy: ExecPolicy,
        every: u64,
        spans: &Spans,
    ) -> Result<(Vec<Label>, QueryStats, Vec<QueryTrace>)> {
        self.batch_traced(queries.rows(), policy, every, spans, |i, scratch| {
            self.classify_with(queries.row(i), scratch)
        })
    }

    /// [`Self::bound_density_batch_with`] with per-query tracing (see
    /// [`Self::classify_batch_traced`] for the sampling contract).
    ///
    /// # Errors
    /// Propagates dimension-mismatch and NaN-input errors.
    #[cfg(feature = "obs")]
    pub fn bound_density_batch_traced(
        &self,
        queries: &Matrix,
        policy: ExecPolicy,
        every: u64,
    ) -> Result<(Vec<DensityBounds>, QueryStats, Vec<QueryTrace>)> {
        self.batch_traced(
            queries.rows(),
            policy,
            every,
            &Spans::off(),
            |i, scratch| self.bound_density_with(queries.row(i), scratch),
        )
    }
}

/// Synthetic span track for worker `k`'s leaf-sum share of a batch
/// submitted from track `submitter`: distinct from every real thread
/// track and from other submitters' leaf tracks, so per-track
/// enter/exit streams stay balanced and monotonic even when concurrent
/// requests share one sink.
fn leaf_track(submitter: u64, k: u64) -> u64 {
    submitter
        .saturating_mul(1000)
        .saturating_add(900)
        .saturating_add(k)
}

/// Weighted `p`-quantile: the smallest value `v` in `values` such that
/// the weights of all values `≤ v` sum to at least `p · Σw`. Reduces to
/// the rank-`⌈np⌉` order statistic for unit weights. Ties sort by index
/// (stable), so the result is deterministic for a fixed input.
fn weighted_quantile(values: &[f64], weights: &[f64], p: f64) -> Result<f64> {
    debug_assert_eq!(values.len(), weights.len());
    if values.is_empty() {
        return Err(Error::EmptyInput("weighted quantile values"));
    }
    let mut idx: Vec<usize> = (0..values.len()).collect();
    // IEEE total order: a NaN density sorts last instead of panicking.
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let total: f64 = weights.iter().sum();
    let target = p * total;
    let mut acc = 0.0;
    for &i in &idx {
        acc += weights[i];
        if acc >= target {
            return Ok(values[i]);
        }
    }
    // Accumulated rounding can leave acc a hair under p·Σw at the end;
    // the largest value is then the quantile by construction.
    Ok(values[idx[values.len() - 1]])
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use crate::params::{HbeParams, Optimizations, RffParams};
    use tkdc_common::Rng;

    fn gaussian_blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    fn hbe_params() -> Params {
        Params::default().with_backend(BackendSpec::Hbe(HbeParams::default()))
    }

    fn rff_params() -> Params {
        Params::default().with_backend(BackendSpec::Rff(RffParams::default()))
    }

    #[test]
    fn center_high_tail_low() {
        let data = gaussian_blob(3000, 2, 61);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        assert_eq!(clf.classify(&[0.0, 0.0]).unwrap(), Label::High);
        assert_eq!(clf.classify(&[6.0, 6.0]).unwrap(), Label::Low);
        assert!(clf.threshold() > 0.0);
    }

    #[test]
    fn roughly_p_fraction_classified_low() {
        let data = gaussian_blob(4000, 2, 67);
        let p = 0.05;
        let clf = Classifier::fit(&data, &Params::default().with_p(p)).unwrap();
        let (labels, _) = clf.classify_batch_with(&data, ExecPolicy::Serial).unwrap();
        let low = labels.iter().filter(|&&l| l == Label::Low).count();
        let frac = low as f64 / labels.len() as f64;
        assert!(
            (frac - p).abs() < 0.02,
            "expected ≈{p} of points LOW, got {frac}"
        );
    }

    #[test]
    fn agrees_with_exact_densities_outside_band() {
        let data = gaussian_blob(1500, 2, 71);
        let params = Params::default().with_p(0.02);
        let clf = Classifier::fit(&data, &params).unwrap();
        let t = clf.threshold();
        let eps = params.epsilon;
        let mut scratch = QueryScratch::new();
        let mut rng = Rng::seed_from(5);
        let mut checked = 0;
        for _ in 0..300 {
            let q = [rng.normal(0.0, 2.0), rng.normal(0.0, 2.0)];
            let exact = clf.exact_density(&q).unwrap();
            if exact > t * (1.0 + eps) {
                assert_eq!(clf.classify_with(&q, &mut scratch).unwrap(), Label::High);
                checked += 1;
            } else if exact < t * (1.0 - eps) {
                assert_eq!(clf.classify_with(&q, &mut scratch).unwrap(), Label::Low);
                checked += 1;
            }
        }
        assert!(checked > 250, "almost all queries lie outside the ε-band");
    }

    #[test]
    fn grid_only_fires_in_low_dims() {
        let d2 = gaussian_blob(2000, 2, 73);
        let clf2 = Classifier::fit(&d2, &Params::default()).unwrap();
        assert!(clf2.grid_enabled());
        let d6 = gaussian_blob(500, 6, 79);
        let clf6 = Classifier::fit(&d6, &Params::default()).unwrap();
        assert!(!clf6.grid_enabled());
    }

    #[test]
    fn grid_prunes_dense_center_queries() {
        let data = gaussian_blob(5000, 2, 83);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let mut scratch = QueryScratch::new();
        // Dense center: grid should answer instantly.
        let label = clf.classify_with(&[0.0, 0.0], &mut scratch).unwrap();
        assert_eq!(label, Label::High);
        assert!(
            scratch.stats.grid_prunes >= 1,
            "expected a grid prune: {:?}",
            scratch.stats
        );
    }

    #[test]
    fn optimizations_do_not_change_labels() {
        let data = gaussian_blob(1200, 2, 89);
        let base = Params::default().with_opts(Optimizations::none());
        let full = Params::default();
        let clf_base = Classifier::fit(&data, &base).unwrap();
        let clf_full = Classifier::fit(&data, &full).unwrap();
        let eps = full.epsilon;
        let mut rng = Rng::seed_from(6);
        for _ in 0..150 {
            let q = [rng.normal(0.0, 2.0), rng.normal(0.0, 2.0)];
            let exact = clf_base.exact_density(&q).unwrap();
            let t = clf_full.threshold();
            // Compare only outside both ε-bands (thresholds differ by <ε).
            if (exact - t).abs() > 2.0 * eps * t {
                assert_eq!(
                    clf_base.classify(&q).unwrap(),
                    clf_full.classify(&q).unwrap(),
                    "disagreement at {q:?} (exact {exact}, t {t})"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let data = gaussian_blob(2000, 2, 97);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let queries = gaussian_blob(500, 2, 101);
        let (serial, s_stats) = clf
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        for threads in [2, 4, 8] {
            let (parallel, p_stats) = clf
                .classify_batch_with(&queries, ExecPolicy::with_threads(threads))
                .unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
            // Counter merging is order-independent summation, so the
            // totals — not just the query count — must match exactly.
            assert_eq!(s_stats, p_stats, "threads={threads}");
            let (chunked, c_stats) = clf
                .classify_batch_with(
                    &queries,
                    ExecPolicy::StaticChunked {
                        threads: Some(threads),
                    },
                )
                .unwrap();
            assert_eq!(serial, chunked, "threads={threads}");
            assert_eq!(s_stats, c_stats, "threads={threads}");
            let (scoped, sc_stats) = clf
                .classify_batch_with(
                    &queries,
                    ExecPolicy::ScopedSpawn {
                        threads: Some(threads),
                    },
                )
                .unwrap();
            assert_eq!(serial, scoped, "threads={threads}");
            assert_eq!(s_stats, sc_stats, "threads={threads}");
        }
    }

    #[test]
    fn pool_spawns_only_for_parallel_batches() {
        let data = gaussian_blob(1500, 2, 163);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let queries = gaussian_blob(400, 2, 167);
        // Serial, static-chunked and scoped-spawn batches never touch
        // the pool.
        clf.classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        clf.classify_batch_with(&queries, ExecPolicy::StaticChunked { threads: Some(4) })
            .unwrap();
        clf.classify_batch_with(&queries, ExecPolicy::ScopedSpawn { threads: Some(4) })
            .unwrap();
        assert_eq!(clf.pool.spawned(), 0, "only Parallel engages the pool");
        // A parallel batch wakes the pool once; repeats reuse it.
        let (first, f_stats) = clf
            .classify_batch_with(&queries, ExecPolicy::with_threads(4))
            .unwrap();
        assert_eq!(clf.pool.spawned(), 3, "4 threads ⇒ submitter + 3 workers");
        for batch in 0..3 {
            let (again, a_stats) = clf
                .classify_batch_with(&queries, ExecPolicy::with_threads(4))
                .unwrap();
            assert_eq!(first, again, "batch={batch}");
            assert_eq!(f_stats, a_stats, "batch={batch}");
        }
        assert_eq!(clf.pool.spawned(), 3, "workers persist across batches");
    }

    #[test]
    fn shared_entry_points_match_borrowed() {
        let data = gaussian_blob(1500, 2, 173);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let queries = Arc::new(gaussian_blob(400, 2, 179));
        for policy in [
            ExecPolicy::Serial,
            ExecPolicy::with_threads(4),
            ExecPolicy::ScopedSpawn { threads: Some(4) },
        ] {
            let (borrowed, b_stats) = clf.classify_batch_with(&queries, policy).unwrap();
            let (shared, s_stats) = clf.classify_batch_shared(queries.clone(), policy).unwrap();
            assert_eq!(borrowed, shared, "{policy:?}");
            assert_eq!(b_stats, s_stats, "{policy:?}");
            let (borrowed, b_stats) = clf.bound_density_batch_with(&queries, policy).unwrap();
            let (shared, s_stats) = clf
                .bound_density_batch_shared(queries.clone(), policy)
                .unwrap();
            assert_eq!(borrowed.len(), shared.len(), "{policy:?}");
            for (b, s) in borrowed.iter().zip(&shared) {
                assert_eq!(b.lower, s.lower, "{policy:?}");
                assert_eq!(b.upper, s.upper, "{policy:?}");
                assert_eq!(b.cause, s.cause, "{policy:?}");
            }
            assert_eq!(b_stats, s_stats, "{policy:?}");
        }
    }

    #[test]
    fn fit_weighted_unit_weights_classifies_like_full_fit() {
        let data = gaussian_blob(2000, 2, 131);
        let weights = vec![1.0; data.rows()];
        let clf = Classifier::fit_weighted(&data, &weights, 0.0, &Params::default()).unwrap();
        assert_eq!(clf.coreset_eps(), 0.0);
        assert!(!clf.grid_enabled(), "weighted fits never build a grid");
        assert_eq!(clf.classify(&[0.0, 0.0]).unwrap(), Label::High);
        assert_eq!(clf.classify(&[6.0, 6.0]).unwrap(), Label::Low);
        // Same data through the bootstrap path: thresholds agree within
        // the tolerance both estimators carry.
        let full = Classifier::fit(&data, &Params::default()).unwrap();
        let rel = (clf.threshold() - full.threshold()).abs() / full.threshold();
        assert!(rel < 0.05, "weighted vs full threshold drift {rel}");
    }

    #[test]
    fn fit_weighted_rejects_bad_inputs() {
        let data = gaussian_blob(100, 2, 133);
        let p = Params::default();
        assert!(Classifier::fit_weighted(&data, &[1.0; 99], 0.0, &p).is_err());
        assert!(Classifier::fit_weighted(&data, &[1.0; 100], -0.1, &p).is_err());
        assert!(Classifier::fit_weighted(&data, &[1.0; 100], f64::NAN, &p).is_err());
        assert!(Classifier::fit_weighted(&Matrix::with_cols(2), &[], 0.0, &p).is_err());
    }

    #[test]
    fn coreset_eps_folds_into_certified_labels() {
        let data = gaussian_blob(1500, 2, 139);
        let weights = vec![1.0; data.rows()];
        let eps_c = 0.05;
        let clf = Classifier::fit_weighted(&data, &weights, eps_c, &Params::default()).unwrap();
        let ea = clf.coreset_eps_abs();
        assert!(ea > 0.0);
        let t = clf.threshold();
        let mut scratch = QueryScratch::new();
        let mut rng = Rng::seed_from(17);
        let mut unknowns = 0usize;
        for _ in 0..200 {
            let q = [rng.normal(0.0, 2.0), rng.normal(0.0, 2.0)];
            let exact = clf.exact_density(&q).unwrap();
            match clf.classify_with(&q, &mut scratch).unwrap() {
                // Certified labels must hold even after granting the
                // coreset its full ±ε_abs error against the full data.
                Label::High => assert!(
                    exact > t + ea * 0.99,
                    "HIGH certified but exact {exact} ≤ t+ε_abs {}",
                    t + ea
                ),
                Label::Low => assert!(
                    exact < t - ea * 0.99,
                    "LOW certified but exact {exact} ≥ t−ε_abs {}",
                    t - ea
                ),
                Label::Unknown => unknowns += 1,
            }
        }
        assert!(
            unknowns > 0,
            "a 5% ε-fold must leave some queries uncertifiable"
        );
        // The folded interval is honest: bounds widen by ε_abs each side.
        let b = clf.bound_density_with(&[0.0, 0.0], &mut scratch).unwrap();
        let exact = clf.exact_density(&[0.0, 0.0]).unwrap();
        assert!(b.lower <= exact - ea + 1e-12 * ea.max(1.0));
        assert!(b.upper >= exact + ea - 1e-12 * ea.max(1.0));
        // ThresholdBounds carry the fold too (lower clamps at zero when
        // ε_abs dwarfs a small tail threshold).
        let r = clf.fit_report();
        let expected = ThresholdBounds {
            lower: t * (1.0 - clf.params().epsilon),
            upper: t * (1.0 + clf.params().epsilon),
        }
        .folded(ea);
        assert_eq!(r.threshold_bounds, expected);
    }

    #[test]
    fn fit_weighted_thread_invariant() {
        let data = gaussian_blob(1200, 2, 149);
        let mut rng = Rng::seed_from(23);
        let weights: Vec<f64> = (0..data.rows()).map(|_| 1.0 + rng.next_f64()).collect();
        let params = Params::default();
        let serial = Classifier::fit_weighted(&data, &weights, 1e-3, &params).unwrap();
        for threads in [2, 4] {
            let par = Classifier::fit_weighted_with(
                &data,
                &weights,
                1e-3,
                &params,
                ExecPolicy::with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial.threshold(), par.threshold(), "threads={threads}");
            assert_eq!(
                serial.fit_report().training_stats,
                par.fit_report().training_stats,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn weighted_quantile_matches_order_statistic_for_unit_weights() {
        let values = [5.0, 1.0, 3.0, 2.0, 4.0];
        let weights = [1.0; 5];
        for (p, expect) in [(0.0, 1.0), (0.2, 1.0), (0.5, 3.0), (1.0, 5.0)] {
            assert_eq!(weighted_quantile(&values, &weights, p).unwrap(), expect);
        }
        // A heavy weight drags the quantile onto its value.
        assert_eq!(
            weighted_quantile(&[1.0, 10.0], &[1.0, 99.0], 0.5).unwrap(),
            10.0
        );
        assert!(weighted_quantile(&[], &[], 0.5).is_err());
    }

    #[test]
    fn exec_policy_resolves_threads() {
        assert_eq!(ExecPolicy::Serial.resolved_threads(), 1);
        assert_eq!(ExecPolicy::with_threads(4).resolved_threads(), 4);
        assert_eq!(
            ExecPolicy::StaticChunked { threads: Some(0) }.resolved_threads(),
            1
        );
        assert!(ExecPolicy::parallel().resolved_threads() >= 1);
        assert_eq!(ExecPolicy::default(), ExecPolicy::parallel());
    }

    #[test]
    fn grid_probe_counts_as_bound_eval() {
        let data = gaussian_blob(5000, 2, 83);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        assert!(clf.grid_enabled());
        let mut scratch = QueryScratch::new();
        // Dense center: the grid answers before any traversal, and the
        // probe itself must show up as one bound evaluation so merged
        // statistics don't understate the work mix.
        assert_eq!(
            clf.classify_with(&[0.0, 0.0], &mut scratch).unwrap(),
            Label::High
        );
        assert_eq!(scratch.stats.grid_prunes, 1);
        assert_eq!(scratch.stats.bound_evals, 1);
        assert_eq!(scratch.stats.kernel_evals, 0);
        // A far-tail query misses the grid but still pays the probe.
        scratch.reset_stats();
        assert_eq!(
            clf.classify_with(&[8.0, 8.0], &mut scratch).unwrap(),
            Label::Low
        );
        assert_eq!(scratch.stats.grid_prunes, 0);
        assert!(scratch.stats.bound_evals > 1, "probe + traversal bounds");
    }

    #[test]
    fn fit_with_threads_matches_fit() {
        let data = gaussian_blob(1500, 2, 109);
        let params = Params::default();
        let serial = Classifier::fit(&data, &params).unwrap();
        for threads in [2, 4] {
            let parallel =
                Classifier::fit_with(&data, &params, ExecPolicy::with_threads(threads)).unwrap();
            assert_eq!(
                serial.threshold(),
                parallel.threshold(),
                "threads={threads}"
            );
            assert_eq!(
                serial.fit_report().threshold_bounds.lower,
                parallel.fit_report().threshold_bounds.lower
            );
            assert_eq!(
                serial.fit_report().threshold_bounds.upper,
                parallel.fit_report().threshold_bounds.upper
            );
            assert_eq!(
                serial.fit_report().training_stats,
                parallel.fit_report().training_stats
            );
        }
    }

    #[test]
    fn bound_density_batch_parallel_matches_serial() {
        let data = gaussian_blob(1200, 2, 113);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let queries = gaussian_blob(300, 2, 127);
        let mut scratch = QueryScratch::new();
        let serial: Vec<_> = queries
            .iter_rows()
            .map(|q| clf.bound_density_with(q, &mut scratch).unwrap())
            .collect();
        let (parallel, stats) = clf
            .bound_density_batch_with(&queries, ExecPolicy::with_threads(4))
            .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.lower, p.lower);
            assert_eq!(s.upper, p.upper);
            assert_eq!(s.cause, p.cause);
        }
        assert_eq!(scratch.stats, stats);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let data = gaussian_blob(300, 2, 103);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        assert!(clf.classify(&[1.0]).is_err());
        assert!(clf.classify(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn nan_query_rejected() {
        let data = gaussian_blob(300, 2, 104);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        assert!(clf.classify(&[f64::NAN, 0.0]).is_err());
        assert!(clf.classify(&[0.0, f64::NAN]).is_err());
        // Infinite coordinates are legitimate far-tail queries.
        assert_eq!(clf.classify(&[f64::INFINITY, 0.0]).unwrap(), Label::Low);
    }

    #[test]
    fn threshold_within_bootstrap_bounds() {
        let data = gaussian_blob(2500, 3, 107);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let r = clf.fit_report();
        let eps = clf.params().epsilon;
        assert!(r.threshold >= r.threshold_bounds.lower * (1.0 - eps));
        assert!(r.threshold <= r.threshold_bounds.upper * (1.0 + eps));
        assert_eq!(r.threshold, clf.threshold());
    }

    #[test]
    fn empty_training_rejected() {
        let data = Matrix::with_cols(2);
        assert!(Classifier::fit(&data, &Params::default()).is_err());
    }

    #[test]
    fn tree_backend_identity_via_accessors() {
        let data = gaussian_blob(800, 2, 211);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        assert_eq!(clf.backend_name(), "tree");
        assert!(clf.bound_kind().is_certified());
        assert_eq!(clf.dim(), 2);
        assert!(clf.tree().is_some());
        assert_eq!(clf.n_train(), 800);
    }

    #[test]
    fn hbe_backend_classifies_center_and_tail() {
        let data = gaussian_blob(2000, 2, 223);
        let clf = Classifier::fit(&data, &hbe_params()).unwrap();
        assert_eq!(clf.backend_name(), "hbe");
        assert!(!clf.bound_kind().is_certified());
        assert!(clf.tree().is_none(), "hbe holds no spatial index");
        assert!(!clf.grid_enabled());
        assert!(clf.threshold() > 0.0);
        assert_eq!(clf.classify(&[0.0, 0.0]).unwrap(), Label::High);
        assert_eq!(clf.classify(&[8.0, 8.0]).unwrap(), Label::Low);
        // HBE retains its points, so exact densities stay available.
        assert!(clf.exact_density(&[0.0, 0.0]).unwrap() > 0.0);
    }

    #[test]
    fn rff_backend_classifies_center_and_tail() {
        let data = gaussian_blob(2000, 2, 227);
        let clf = Classifier::fit(&data, &rff_params()).unwrap();
        assert_eq!(clf.backend_name(), "rff");
        assert!(!clf.bound_kind().is_certified());
        assert!(clf.tree().is_none());
        assert!(clf.threshold() > 0.0);
        assert_eq!(clf.classify(&[0.0, 0.0]).unwrap(), Label::High);
        assert_eq!(clf.classify(&[8.0, 8.0]).unwrap(), Label::Low);
        // RFF persists only the coefficient sketch.
        assert!(clf.exact_density(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn estimated_backends_are_thread_invariant() {
        let data = gaussian_blob(1200, 3, 229);
        for params in [hbe_params(), rff_params()] {
            let serial = Classifier::fit(&data, &params).unwrap();
            let queries = gaussian_blob(300, 3, 233);
            let (s_labels, s_stats) = serial
                .classify_batch_with(&queries, ExecPolicy::Serial)
                .unwrap();
            for threads in [2, 4, 8] {
                let par = Classifier::fit_with(&data, &params, ExecPolicy::with_threads(threads))
                    .unwrap();
                assert_eq!(
                    serial.threshold(),
                    par.threshold(),
                    "{} threads={threads}",
                    params.backend.name()
                );
                let (p_labels, p_stats) = serial
                    .classify_batch_with(&queries, ExecPolicy::with_threads(threads))
                    .unwrap();
                assert_eq!(s_labels, p_labels, "threads={threads}");
                assert_eq!(s_stats, p_stats, "threads={threads}");
            }
        }
    }

    #[test]
    fn estimated_weighted_fit_folds_eps() {
        let data = gaussian_blob(1000, 2, 239);
        let weights = vec![1.0; data.rows()];
        let clf = Classifier::fit_weighted(&data, &weights, 0.05, &hbe_params()).unwrap();
        assert_eq!(clf.backend_name(), "hbe");
        assert!(clf.coreset_eps_abs() > 0.0);
        // ε-folded probabilistic intervals straddle more readily; the
        // label set just has to stay within the three-valued contract.
        let mut scratch = QueryScratch::new();
        let l = clf.classify_with(&[0.0, 0.0], &mut scratch).unwrap();
        assert!(matches!(l, Label::High | Label::Unknown));
        // Bad weights are rejected on the estimated path too.
        assert!(
            Classifier::fit_weighted(&data, &vec![0.0; data.rows()], 0.0, &hbe_params()).is_err()
        );
    }
}
