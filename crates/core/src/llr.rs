//! Certified log-likelihood-ratio bounds — the §2.1 statistics use case.
//!
//! "Bounds on the probability density also translate directly into bounds
//! on hazard rate or log likelihood ratios which are used in high energy
//! physics classifiers" (§2.1 of the paper, citing Cranmer [15]). Given
//! two fitted models — e.g. a signal sample and a background sample — the
//! interval arithmetic below turns each model's certified density bounds
//! into a certified interval for `log f_sig(x) / f_bg(x)`, the optimal
//! test statistic by the Neyman–Pearson lemma.

use crate::classifier::Classifier;
use crate::qstats::QueryScratch;
use tkdc_common::error::{Error, Result};

/// A certified interval for the log-likelihood ratio at one query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LlrBounds {
    /// Lower bound on `ln(f_num / f_den)`.
    pub lower: f64,
    /// Upper bound on `ln(f_num / f_den)`.
    pub upper: f64,
}

impl LlrBounds {
    /// Midpoint estimate.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// True when the whole interval is positive (the numerator model is
    /// certainly more likely).
    pub fn favors_numerator(&self) -> bool {
        self.lower > 0.0
    }

    /// True when the whole interval is negative.
    pub fn favors_denominator(&self) -> bool {
        self.upper < 0.0
    }
}

/// Computes certified log-likelihood-ratio bounds
/// `ln f_num(x) − ln f_den(x)` from classification-grade density bounds.
///
/// Classification bounds are only tight near each model's threshold
/// (the threshold rules stop refinement early elsewhere), so intervals
/// from this function are often wide; use [`llr_bounds_with_rtol`] when
/// a usefully narrow LLR interval is the goal.
///
/// Interval arithmetic: `[ln(l_num/u_den), ln(u_num/l_den)]`. When the
/// denominator's lower bound is zero the upper bound is `+∞`; when the
/// numerator's lower bound is zero the lower bound is `−∞` — both honest
/// statements about what the index could certify.
///
/// # Errors
/// Fails when the models' dimensionalities differ from the query's.
pub fn llr_bounds(
    numerator: &Classifier,
    denominator: &Classifier,
    x: &[f64],
    scratch: &mut QueryScratch,
) -> Result<LlrBounds> {
    if numerator.dim() != denominator.dim() {
        return Err(Error::DimensionMismatch {
            expected: numerator.dim(),
            actual: denominator.dim(),
        });
    }
    let num = numerator.bound_density_with(x, scratch)?;
    let den = denominator.bound_density_with(x, scratch)?;
    combine(num.lower, num.upper, den.lower, den.upper)
}

/// Like [`llr_bounds`] but refines each density to relative precision
/// `rtol` (`f_u − f_l ≤ rtol·f_l`), giving an LLR interval of width at
/// most `≈ 2·ln(1+rtol) ≈ 2·rtol` whenever both densities resolve above
/// the floating-point floor.
///
/// # Errors
/// Fails on model/query dimensionality mismatch.
pub fn llr_bounds_with_rtol(
    numerator: &Classifier,
    denominator: &Classifier,
    x: &[f64],
    rtol: f64,
    scratch: &mut QueryScratch,
) -> Result<LlrBounds> {
    if numerator.dim() != denominator.dim() {
        return Err(Error::DimensionMismatch {
            expected: numerator.dim(),
            actual: denominator.dim(),
        });
    }
    if x.len() != numerator.dim() {
        return Err(Error::DimensionMismatch {
            expected: numerator.dim(),
            actual: x.len(),
        });
    }
    let num = numerator.bound_density_relative_with(x, rtol, scratch)?;
    let den = denominator.bound_density_relative_with(x, rtol, scratch)?;
    combine(num.lower, num.upper, den.lower, den.upper)
}

/// Interval division in log space.
fn combine(num_lo: f64, num_hi: f64, den_lo: f64, den_hi: f64) -> Result<LlrBounds> {
    let lower = if num_lo > 0.0 && den_hi > 0.0 {
        (num_lo / den_hi).ln()
    } else {
        f64::NEG_INFINITY
    };
    let upper = if den_lo > 0.0 {
        if num_hi > 0.0 {
            (num_hi / den_lo).ln()
        } else {
            f64::NEG_INFINITY // numerator certainly zero
        }
    } else {
        f64::INFINITY
    };
    Ok(LlrBounds { lower, upper })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use tkdc_common::{Matrix, Rng};

    fn blob(center: f64, n: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(2);
        for _ in 0..n {
            m.push_row(&[rng.normal(center, 1.0), rng.normal(center, 1.0)])
                .unwrap();
        }
        m
    }

    #[test]
    fn llr_separates_two_populations() {
        let signal = blob(3.0, 2000, 1);
        let background = blob(-3.0, 2000, 2);
        let sig = Classifier::fit(&signal, &Params::default().with_seed(3)).unwrap();
        let bg = Classifier::fit(&background, &Params::default().with_seed(4)).unwrap();
        let mut scratch = QueryScratch::new();

        let near_signal = llr_bounds(&sig, &bg, &[3.0, 3.0], &mut scratch).unwrap();
        assert!(
            near_signal.favors_numerator(),
            "LLR at the signal center must be certifiably positive: {near_signal:?}"
        );
        let near_background = llr_bounds(&sig, &bg, &[-3.0, -3.0], &mut scratch).unwrap();
        assert!(
            near_background.favors_denominator(),
            "LLR at the background center must be certifiably negative: {near_background:?}"
        );
        // The midpoint should be roughly antisymmetric between the two
        // centers for symmetric populations.
        assert!(near_signal.midpoint() > 1.0);
        assert!(near_background.midpoint() < -1.0);
    }

    #[test]
    fn llr_interval_contains_exact_ratio() {
        let a = blob(0.0, 1500, 5);
        let b = blob(1.0, 1500, 6);
        let ca = Classifier::fit(&a, &Params::default().with_seed(7)).unwrap();
        let cb = Classifier::fit(&b, &Params::default().with_seed(8)).unwrap();
        let mut scratch = QueryScratch::new();
        let mut rng = Rng::seed_from(9);
        for _ in 0..30 {
            let q = [rng.normal(0.5, 1.0), rng.normal(0.5, 1.0)];
            let bounds = llr_bounds(&ca, &cb, &q, &mut scratch).unwrap();
            let exact = ca.exact_density(&q).unwrap().ln() - cb.exact_density(&q).unwrap().ln();
            assert!(
                bounds.lower <= exact + 1e-9 && exact <= bounds.upper + 1e-9,
                "exact LLR {exact} outside [{}, {}] at {q:?}",
                bounds.lower,
                bounds.upper
            );
        }
    }

    #[test]
    fn rtol_variant_gives_narrow_intervals() {
        let signal = blob(2.0, 1500, 21);
        let background = blob(-2.0, 1500, 22);
        let sig = Classifier::fit(&signal, &Params::default().with_seed(23)).unwrap();
        let bg = Classifier::fit(&background, &Params::default().with_seed(24)).unwrap();
        let mut scratch = QueryScratch::new();
        let rtol = 0.05;
        for q in [[2.0, 2.0], [-2.0, -2.0], [0.0, 0.0]] {
            let wide = llr_bounds(&sig, &bg, &q, &mut scratch).unwrap();
            let tight = llr_bounds_with_rtol(&sig, &bg, &q, rtol, &mut scratch).unwrap();
            // The tight interval nests inside the classification-grade one
            // and has width ≤ 2·ln(1+rtol) when finite.
            assert!(tight.lower >= wide.lower - 1e-9);
            assert!(tight.upper <= wide.upper + 1e-9);
            if tight.lower.is_finite() && tight.upper.is_finite() {
                assert!(
                    tight.upper - tight.lower <= 2.0 * (1.0 + rtol).ln() + 1e-9,
                    "width {} at {q:?}",
                    tight.upper - tight.lower
                );
                // And it contains the exact LLR.
                let exact =
                    sig.exact_density(&q).unwrap().ln() - bg.exact_density(&q).unwrap().ln();
                assert!(tight.lower <= exact + 1e-9 && exact <= tight.upper + 1e-9);
            }
        }
    }

    #[test]
    fn far_tail_gives_infinite_bounds_honestly() {
        let a = blob(0.0, 500, 11);
        let b = blob(0.0, 500, 12);
        let ca = Classifier::fit(&a, &Params::default().with_seed(13)).unwrap();
        let cb = Classifier::fit(&b, &Params::default().with_seed(14)).unwrap();
        let mut scratch = QueryScratch::new();
        // Deep in the tail both densities underflow to certified zero →
        // the interval must widen to ±∞ rather than fabricate a number.
        let bounds = llr_bounds(&ca, &cb, &[100.0, 100.0], &mut scratch).unwrap();
        assert!(bounds.lower == f64::NEG_INFINITY || bounds.upper == f64::INFINITY);
        assert!(!bounds.favors_numerator() || !bounds.favors_denominator());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = blob(0.0, 200, 15);
        let ca = Classifier::fit(&a, &Params::default().with_seed(16)).unwrap();
        let mut one_d = Matrix::with_cols(1);
        let mut rng = Rng::seed_from(17);
        for _ in 0..200 {
            one_d.push_row(&[rng.standard_normal()]).unwrap();
        }
        let cb = Classifier::fit(&one_d, &Params::default().with_seed(18)).unwrap();
        let mut scratch = QueryScratch::new();
        assert!(llr_bounds(&ca, &cb, &[0.0, 0.0], &mut scratch).is_err());
    }
}
