//! Hashing-based density estimator (Charikar & Siminelakis,
//! "Hashing-Based-Estimators for Kernel Density in High Dimensions").
//!
//! Each of `T` independent hash tables projects the (bandwidth-scaled)
//! data through `k` concatenated random projections with bucket width
//! `w` (the classic E2LSH family). A query hashes to one bucket per
//! table; points collide with the query with probability `p(c) =
//! p₁(c)^k`, a known, strictly decreasing function of their scaled
//! distance `c`. Sampling colliders and reweighting by `1/p(c)` gives
//! an unbiased per-table estimate of the kernel density:
//!
//! ```text
//! Z_t = mass(B_t)/W · 1/m · Σ_{X ~ B_t} K(q, X) / p(q, X)
//! ```
//!
//! because near points (large kernel value) collide — and are therefore
//! sampled — with higher probability, the importance weights stay
//! bounded where uniform sampling's would explode. The `T` table
//! estimates form a confidence interval; the backend advertises
//! [`BoundKind::Probabilistic`] with the classifier's `δ`.
//!
//! Determinism: table projections derive from the model seed alone,
//! and the per-query sampling RNG is seeded from the query's coordinate
//! bits ([`super::query_seed`]), so estimates are schedule-invariant.

use super::{ci_multiplier, query_seed, BoundKind, DensityBackend};
use crate::bound::DensityBounds;
use crate::params::HbeParams;
use crate::qstats::{PruneCause, QueryScratch};
use tkdc_common::special::normal_cdf;
use tkdc_common::{Matrix, Rng};
use tkdc_kernel::Kernel;

/// Salt separating the table-generation RNG stream from every other
/// consumer of the model seed.
const TABLE_SALT: u64 = 0x4842_455F_5441_424C; // "HBE_TABL"

/// One E2LSH hash table: `k` projections plus the bucketed point index
/// in CSR form (sorted bucket keys, per-bucket member lists, per-member
/// cumulative masses for weight-proportional sampling).
#[derive(Debug)]
struct Table {
    /// `hashes × dim` projection matrix, row-major, with the reciprocal
    /// bandwidths folded in (so hashing works on raw coordinates).
    proj: Vec<f64>,
    /// Per-hash offsets, uniform in `[0, w)`.
    offs: Vec<f64>,
    /// Sorted bucket keys.
    keys: Vec<u64>,
    /// CSR starts into `members`/`cum_mass` (`keys.len() + 1` entries).
    starts: Vec<u32>,
    /// Point indices grouped by bucket.
    members: Vec<u32>,
    /// Cumulative point masses *within* each bucket (weight-proportional
    /// sampling by binary search; the last entry of a bucket's range is
    /// the bucket's total mass).
    cum_mass: Vec<f64>,
}

impl Table {
    /// Hash a point into this table's bucket key. The mixing constants
    /// make key collisions across distinct hash vectors negligible.
    fn key(&self, x: &[f64], hashes: usize, dim: usize, inv_w: f64) -> u64 {
        let mut key = 0xCBF2_9CE4_8422_2325u64;
        for j in 0..hashes {
            let row = &self.proj[j * dim..(j + 1) * dim];
            let mut dot = self.offs[j];
            for (a, &v) in row.iter().zip(x) {
                dot += a * v;
            }
            // Non-finite projections saturate, which still yields a
            // deterministic (just never-matching) key.
            // CAST: floor of a finite projection fits i64 far before f64 loses integer precision
            let cell = (dot * inv_w).floor() as i64;
            key ^= cell as u64; // CAST: bit-reinterpretation of the cell index is intentional
            key = key.wrapping_mul(0x1000_0000_01B3);
            // CAST: hash row index fits u64
            key = key.rotate_left(29) ^ (j as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
        key
    }

    /// The bucket range for `key`, if the bucket is populated.
    fn bucket(&self, key: u64) -> Option<(usize, usize)> {
        let i = self.keys.binary_search(&key).ok()?;
        // CAST: u32 start offsets widen to usize losslessly
        Some((self.starts[i] as usize, self.starts[i + 1] as usize))
    }
}

/// Hashing-based estimator backend.
#[derive(Debug)]
pub struct HbeBackend {
    kernel: Kernel,
    delta: f64,
    params: HbeParams,
    seed: u64,
    /// Training points (the estimator needs raw point access to sample
    /// kernel values).
    points: Matrix,
    /// Per-point masses for weighted (coreset) fits; `None` = unit.
    weights: Option<Vec<f64>>,
    total_mass: f64,
    tables: Vec<Table>,
}

impl HbeBackend {
    /// Builds the hash tables over the training points. Deterministic
    /// for a fixed `(seed, params, data)` triple: projections come from
    /// a salted seeded RNG and buckets are assembled by stable sort.
    pub(crate) fn build(
        points: Matrix,
        weights: Option<Vec<f64>>,
        kernel: Kernel,
        delta: f64,
        params: HbeParams,
        seed: u64,
    ) -> Self {
        let n = points.rows();
        let dim = kernel.dim();
        let w = params.bucket_width;
        let inv_h = kernel.inv_bandwidths();
        let total_mass = weights
            .as_ref()
            .map(|ws| ws.iter().sum())
            .unwrap_or(n as f64);
        let mut rng = Rng::seed_from(seed ^ TABLE_SALT);
        let mut tables = Vec::with_capacity(params.tables);
        for _ in 0..params.tables {
            let mut proj = Vec::with_capacity(params.hashes * dim);
            let mut offs = Vec::with_capacity(params.hashes);
            for _ in 0..params.hashes {
                for &ih in inv_h {
                    // Standard normal in *scaled* space; folding 1/h_i in
                    // here lets both build and query hash raw coordinates.
                    proj.push(rng.standard_normal() * ih);
                }
                offs.push(rng.uniform(0.0, w));
            }
            let mut t = Table {
                proj,
                offs,
                keys: Vec::new(),
                starts: Vec::new(),
                members: Vec::new(),
                cum_mass: Vec::new(),
            };
            // Bucket every point: key each row, stable-sort by key (ties
            // keep index order — deterministic), then freeze into CSR.
            let mut keyed: Vec<(u64, u32)> = (0..n)
                .map(|i| {
                    (
                        t.key(points.row(i), params.hashes, dim, 1.0 / w),
                        i as u32, // CAST: point count fits u32 (tree arena uses u32 ids)
                    )
                })
                .collect();
            keyed.sort_by_key(|&(k, _)| k);
            let mut acc = 0.0;
            let mut prev_key = None;
            for (pos, &(key, idx)) in keyed.iter().enumerate() {
                if prev_key != Some(key) {
                    t.keys.push(key);
                    t.starts.push(pos as u32); // CAST: member count fits u32
                    acc = 0.0;
                }
                prev_key = Some(key);
                // CAST: u32 point index widens to usize losslessly
                acc += weights.as_ref().map(|ws| ws[idx as usize]).unwrap_or(1.0);
                t.members.push(idx);
                t.cum_mass.push(acc);
            }
            t.starts.push(keyed.len() as u32); // CAST: member count fits u32
            tables.push(t);
        }
        Self {
            kernel,
            delta,
            params,
            seed,
            points,
            weights,
            total_mass,
            tables,
        }
    }

    /// Collision probability of one projection hash for scaled distance
    /// `c` (Datar et al.'s `p₁` for the Gaussian LSH family):
    /// `p₁(c) = 1 − 2Φ(−w/c) − (2/(√(2π)·(w/c)))·(1 − e^{−(w/c)²/2})`.
    fn p1(&self, c: f64) -> f64 {
        if c <= 0.0 {
            return 1.0;
        }
        let t = self.params.bucket_width / c;
        let p = 1.0
            - 2.0 * normal_cdf(-t)
            - (2.0 / ((2.0 * std::f64::consts::PI).sqrt() * t)) * (1.0 - (-t * t / 2.0).exp());
        // Guard the far tail against rounding below zero.
        p.max(f64::MIN_POSITIVE)
    }

    /// Collision probability of the `k`-fold concatenated hash.
    fn collision_prob(&self, c: f64) -> f64 {
        self.p1(c).powi(self.params.hashes as i32) // CAST: hashes ≤ 16 fits i32
    }

    /// The fixed-budget density estimate with its `1 − δ` confidence
    /// interval. Thresholds are ignored — there is no adaptive stopping.
    fn estimate(&self, x: &[f64], scratch: &mut QueryScratch) -> DensityBounds {
        let dim = self.kernel.dim();
        let w = self.params.bucket_width;
        let m = self.params.samples;
        let n_tables = self.tables.len();
        let mut rng = Rng::seed_from(query_seed(self.seed, x));
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for t in &self.tables {
            scratch.stats.bound_evals += 1;
            let key = t.key(x, self.params.hashes, dim, 1.0 / w);
            let z_t = match t.bucket(key) {
                None => 0.0,
                Some((start, end)) => {
                    let cum = &t.cum_mass[start..end];
                    let bucket_mass = cum[cum.len() - 1];
                    let mut acc = 0.0;
                    for _ in 0..m {
                        // Weight-proportional draw from the bucket.
                        let u = rng.next_f64() * bucket_mass;
                        let j = cum.partition_point(|&c| c <= u).min(cum.len() - 1);
                        // CAST: u32 point index widens to usize losslessly
                        let p = self.points.row(t.members[start + j] as usize);
                        let c2 = self.kernel.scaled_sq_dist(x, p);
                        scratch.stats.kernel_evals += 1;
                        acc += self.kernel.eval_scaled_sq(c2) / self.collision_prob(c2.sqrt());
                    }
                    bucket_mass / self.total_mass * acc / m as f64
                }
            };
            sum += z_t;
            sum_sq += z_t * z_t;
        }
        let mean = sum / n_tables as f64;
        let var = (sum_sq - sum * sum / n_tables as f64).max(0.0) / (n_tables - 1) as f64;
        let half = ci_multiplier(self.delta, n_tables) * (var / n_tables as f64).sqrt();
        scratch.stats.record_outcome(PruneCause::Estimated);
        let (lower, upper) = (mean - half, mean + half);
        if scratch.tracer.is_active() {
            let stats = scratch.stats;
            scratch
                .tracer
                .finish(PruneCause::Estimated.as_str(), stats, lower, upper);
        }
        DensityBounds {
            lower,
            upper,
            cause: PruneCause::Estimated,
        }
    }
}

impl DensityBackend for HbeBackend {
    fn name(&self) -> &'static str {
        "hbe"
    }

    fn bound_kind(&self) -> BoundKind {
        BoundKind::Probabilistic { delta: self.delta }
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn n_train(&self) -> usize {
        self.points.rows()
    }

    fn bound_density(
        &self,
        x: &[f64],
        _t_lo: f64,
        _t_hi: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        self.estimate(x, scratch)
    }

    fn bound_density_relative(
        &self,
        x: &[f64],
        _rtol: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        self.estimate(x, scratch)
    }

    fn exact_density(&self, x: &[f64], scratch: &mut QueryScratch) -> Option<f64> {
        let mut acc = 0.0;
        for i in 0..self.points.rows() {
            let k = self.kernel.eval_pair(x, self.points.row(i));
            acc += self.weights.as_ref().map(|ws| ws[i]).unwrap_or(1.0) * k;
        }
        scratch.stats.kernel_evals += self.points.rows() as u64; // CAST: row count fits u64
        Some(acc / self.total_mass)
    }
}

impl HbeBackend {
    /// Training points (persistence).
    pub(crate) fn points(&self) -> &Matrix {
        &self.points
    }

    /// Point masses, when fitted weighted (persistence).
    pub(crate) fn weights(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    fn build_default(n: usize, d: usize, seed: u64) -> HbeBackend {
        let data = blob(n, d, seed);
        let h = tkdc_kernel::scotts_rule(&data, 1.0).unwrap();
        let kernel = Kernel::gaussian(h).unwrap();
        HbeBackend::build(data, None, kernel, 0.01, HbeParams::default(), seed)
    }

    #[test]
    fn collision_prob_decreases_with_distance() {
        let b = build_default(200, 2, 11);
        let mut prev = b.collision_prob(0.0);
        assert!((prev - 1.0).abs() < 1e-12);
        for i in 1..40 {
            let p = b.collision_prob(i as f64 * 0.5);
            assert!(p > 0.0 && p <= prev, "not monotone at c={}", i as f64 * 0.5);
            prev = p;
        }
    }

    #[test]
    fn estimates_are_deterministic_per_query() {
        let b = build_default(500, 4, 13);
        let q = [0.3, -0.2, 0.1, 0.4];
        let mut s1 = QueryScratch::new();
        let mut s2 = QueryScratch::new();
        let e1 = b.bound_density(&q, 0.0, f64::INFINITY, &mut s1);
        let e2 = b.bound_density(&q, 1.0, 2.0, &mut s2);
        // Thresholds are ignored; the estimate is a pure function of the
        // query and the fitted state.
        assert_eq!(e1.lower.to_bits(), e2.lower.to_bits());
        assert_eq!(e1.upper.to_bits(), e2.upper.to_bits());
        assert_eq!(e1.cause, PruneCause::Estimated);
        assert_eq!(s1.stats, s2.stats);
        assert_eq!(s1.stats.estimated, 1);
        assert_eq!(s1.stats.queries, 1);
    }

    #[test]
    fn estimate_tracks_exact_density() {
        // In-distribution queries: the estimate must land near the exact
        // density, and the advertised interval must usually cover it.
        let b = build_default(2000, 2, 17);
        let queries = blob(60, 2, 19);
        let mut scratch = QueryScratch::new();
        let mut covered = 0usize;
        let mut rel_err = 0.0f64;
        for i in 0..queries.rows() {
            let q = queries.row(i);
            let exact = b.exact_density(q, &mut scratch).unwrap();
            let est = b.bound_density(q, 0.0, 0.0, &mut scratch);
            if est.lower <= exact && exact <= est.upper {
                covered += 1;
            }
            rel_err += ((est.midpoint() - exact) / exact).abs();
        }
        let coverage = covered as f64 / queries.rows() as f64;
        assert!(coverage > 0.9, "coverage {coverage}");
        let mean_rel = rel_err / queries.rows() as f64;
        assert!(mean_rel < 0.25, "mean relative error {mean_rel}");
    }

    #[test]
    fn weighted_build_matches_duplicated_points() {
        // A point with mass 3 must act like three unit copies.
        let mut dup = Matrix::with_cols(2);
        let mut wtd = Matrix::with_cols(2);
        let mut rng = Rng::seed_from(23);
        let mut weights = Vec::new();
        for _ in 0..300 {
            let p = [rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)];
            let w = 1 + (rng.next_below(3) as usize);
            for _ in 0..w {
                dup.push_row(&p).unwrap();
            }
            wtd.push_row(&p).unwrap();
            weights.push(w as f64);
        }
        let h = tkdc_kernel::scotts_rule(&dup, 1.0).unwrap();
        let kernel = Kernel::gaussian(h).unwrap();
        let bd = HbeBackend::build(dup, None, kernel.clone(), 0.01, HbeParams::default(), 29);
        let bw = HbeBackend::build(wtd, Some(weights), kernel, 0.01, HbeParams::default(), 29);
        let mut scratch = QueryScratch::new();
        let q = [0.25, -0.75];
        let ed = bd.exact_density(&q, &mut scratch).unwrap();
        let ew = bw.exact_density(&q, &mut scratch).unwrap();
        assert!((ed - ew).abs() < 1e-12 * ed.max(1.0), "{ed} vs {ew}");
        // The sampled estimates see identical bucket masses, so both
        // should land near the same density.
        let dd = bd.bound_density(&q, 0.0, 0.0, &mut scratch).midpoint();
        let dw = bw.bound_density(&q, 0.0, 0.0, &mut scratch).midpoint();
        assert!((dd - ed).abs() / ed < 0.5, "{dd} vs exact {ed}");
        assert!((dw - ew).abs() / ew < 0.5, "{dw} vs exact {ew}");
    }

    #[test]
    #[allow(clippy::float_cmp)] // an all-miss estimate is exactly 0.0
    fn far_query_estimates_near_zero() {
        let b = build_default(500, 2, 31);
        let mut scratch = QueryScratch::new();
        let est = b.bound_density(&[50.0, 50.0], 0.0, 0.0, &mut scratch);
        // Every bucket misses: the estimate collapses to zero, which is
        // the right call for a p-tail classification.
        assert_eq!(est.midpoint(), 0.0);
        // Infinite coordinates must not panic (legitimate far-tail probe).
        let est = b.bound_density(&[f64::INFINITY, 0.0], 0.0, 0.0, &mut scratch);
        assert_eq!(est.midpoint(), 0.0);
    }
}
