//! Random-Fourier-feature density estimator (Rahimi & Recht).
//!
//! Bochner's theorem writes the Gaussian kernel as an expectation over
//! random cosine features: with `ω ~ N(0, I)` in bandwidth-scaled space
//! and `b ~ U[0, 2π)`,
//!
//! ```text
//! exp(−‖u − v‖²/2) = E[2·cos(ω·u + b)·cos(ω·v + b)]
//! ```
//!
//! so the whole training density collapses to one coefficient per
//! feature — `c_j = (1/W) Σ_i w_i cos(ω_j·x_i + b_j)` — and a query
//! costs exactly `D` cosines regardless of `n`:
//!
//! ```text
//! f̂(x) = norm · mean_j [ 2·cos(ω_j·x + b_j) · c_j ]
//! ```
//!
//! The fitted model is the coefficient vector alone (the features
//! regenerate from the seed), which makes RFF the only backend whose
//! persisted size is independent of the training set. The price is an
//! *additive* error of order `norm/√D`, which is why RFF degrades at
//! sharp bandwidths where tail thresholds sit far below `norm`.
//!
//! The confidence interval is an empirical-Bernstein bound (Maurer &
//! Pontil) over the `D` bounded per-feature terms: the feature values
//! `2·cos(ω_j·x + b_j)·c_j` are i.i.d. in `[−2, 2]` with mean equal to
//! the exact (bandwidth-scaled) density, so their sample variance gives
//! a distribution-free `1 − δ` interval. A group-spread interval was
//! tried first and undercovers badly: one feature bank is shared by
//! every query, so a slightly off-center draw shifts *all* estimates
//! coherently while the between-group spread stays small.

use super::{BoundKind, DensityBackend};
use crate::bound::DensityBounds;
use crate::params::RffParams;
use crate::qstats::{PruneCause, QueryScratch};
use tkdc_common::{Matrix, Rng};
use tkdc_kernel::Kernel;

/// Salt separating the feature-generation RNG stream from every other
/// consumer of the model seed.
const FEATURE_SALT: u64 = 0x5246_465F_4645_4154; // "RFF_FEAT"

/// Random-Fourier-feature backend (Gaussian kernel only).
#[derive(Debug)]
pub struct RffBackend {
    kernel: Kernel,
    delta: f64,
    /// `features × dim` frequency matrix, row-major, with the reciprocal
    /// bandwidths folded in (so features evaluate on raw coordinates).
    omega: Vec<f64>,
    /// Per-feature phases in `[0, 2π)`.
    phase: Vec<f64>,
    /// Per-feature training coefficients `c_j`.
    coef: Vec<f64>,
    /// Training-set size (for `n_train`; the points themselves are gone).
    n: usize,
    /// Total training mass `W` (needed only for persistence round-trips).
    total_mass: f64,
}

impl RffBackend {
    /// Draws the feature bank for `(seed, params, kernel.dim())`. Shared
    /// by fitting and loading so a persisted coefficient vector always
    /// re-pairs with the features that produced it.
    fn features(kernel: &Kernel, params: RffParams, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let dim = kernel.dim();
        let mut rng = Rng::seed_from(seed ^ FEATURE_SALT);
        let mut omega = Vec::with_capacity(params.features * dim);
        let mut phase = Vec::with_capacity(params.features);
        for _ in 0..params.features {
            for &ih in kernel.inv_bandwidths() {
                omega.push(rng.standard_normal() * ih);
            }
            phase.push(rng.uniform(0.0, 2.0 * std::f64::consts::PI));
        }
        (omega, phase)
    }

    /// Fits the coefficient vector over the training points.
    pub(crate) fn build(
        points: &Matrix,
        weights: Option<&[f64]>,
        kernel: Kernel,
        delta: f64,
        params: RffParams,
        seed: u64,
    ) -> Self {
        let n = points.rows();
        let dim = kernel.dim();
        let (omega, phase) = Self::features(&kernel, params, seed);
        let total_mass = weights.map(|ws| ws.iter().sum()).unwrap_or(n as f64);
        let mut coef = vec![0.0; params.features];
        for i in 0..n {
            let x = points.row(i);
            let w = weights.map(|ws| ws[i]).unwrap_or(1.0);
            for (j, c) in coef.iter_mut().enumerate() {
                let row = &omega[j * dim..(j + 1) * dim];
                let mut dot = phase[j];
                for (a, &v) in row.iter().zip(x) {
                    dot += a * v;
                }
                *c += w * dot.cos();
            }
        }
        for c in &mut coef {
            *c /= total_mass;
        }
        Self {
            kernel,
            delta,
            omega,
            phase,
            coef,
            n,
            total_mass,
        }
    }

    /// Reassembles a persisted backend: coefficients from disk, features
    /// regenerated from the seed.
    pub(crate) fn from_parts(
        kernel: Kernel,
        delta: f64,
        params: RffParams,
        seed: u64,
        coef: Vec<f64>,
        n: usize,
        total_mass: f64,
    ) -> Self {
        let (omega, phase) = Self::features(&kernel, params, seed);
        Self {
            kernel,
            delta,
            omega,
            phase,
            coef,
            n,
            total_mass,
        }
    }

    /// The fixed-budget estimate with its `1 − δ` confidence interval.
    fn estimate(&self, x: &[f64], scratch: &mut QueryScratch) -> DensityBounds {
        let dim = self.kernel.dim();
        let norm = self.kernel.max_value();
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for (j, &c) in self.coef.iter().enumerate() {
            let row = &self.omega[j * dim..(j + 1) * dim];
            let mut dot = self.phase[j];
            for (a, &v) in row.iter().zip(x) {
                dot += a * v;
            }
            let z = 2.0 * dot.cos() * c;
            sum += z;
            sum_sq += z * z;
        }
        scratch.stats.kernel_evals += self.coef.len() as u64; // CAST: feature count fits u64
        scratch.stats.bound_evals += 1;
        // Empirical-Bernstein interval (Maurer & Pontil, Theorem 4) on
        // the mean of `D` i.i.d. terms bounded in [−2, 2] (range R = 4):
        // |mean − μ| ≤ √(2·V̂·ln(2/δ)/D) + 7·R·ln(2/δ)/(3(D − 1)) with
        // probability ≥ 1 − δ, where μ is the exact scaled density.
        let d_f = self.coef.len() as f64;
        let mean_z = sum / d_f;
        // INVARIANT: params validation enforces features ≥ 16, so the
        // D − 1 divisors below are positive.
        let var = (sum_sq - sum * sum / d_f).max(0.0) / (d_f - 1.0);
        let ln_term = (2.0 / self.delta).ln();
        let half_z = (2.0 * var * ln_term / d_f).sqrt() + 7.0 * 4.0 * ln_term / (3.0 * (d_f - 1.0));
        let mean = norm * mean_z;
        let half = norm * half_z;
        scratch.stats.record_outcome(PruneCause::Estimated);
        let (lower, upper) = (mean - half, mean + half);
        if scratch.tracer.is_active() {
            let stats = scratch.stats;
            scratch
                .tracer
                .finish(PruneCause::Estimated.as_str(), stats, lower, upper);
        }
        DensityBounds {
            lower,
            upper,
            cause: PruneCause::Estimated,
        }
    }

    /// The fitted coefficient vector (persistence).
    pub(crate) fn coef(&self) -> &[f64] {
        &self.coef
    }

    /// Total training mass (persistence).
    pub(crate) fn total_mass(&self) -> f64 {
        self.total_mass
    }
}

impl DensityBackend for RffBackend {
    fn name(&self) -> &'static str {
        "rff"
    }

    fn bound_kind(&self) -> BoundKind {
        BoundKind::Probabilistic { delta: self.delta }
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn n_train(&self) -> usize {
        self.n
    }

    fn bound_density(
        &self,
        x: &[f64],
        _t_lo: f64,
        _t_hi: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        self.estimate(x, scratch)
    }

    fn bound_density_relative(
        &self,
        x: &[f64],
        _rtol: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        self.estimate(x, scratch)
    }

    fn exact_density(&self, _x: &[f64], _scratch: &mut QueryScratch) -> Option<f64> {
        // The training points are not retained; only the sketch exists.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    fn naive_density(data: &Matrix, kernel: &Kernel, q: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..data.rows() {
            acc += kernel.eval_pair(q, data.row(i));
        }
        acc / data.rows() as f64
    }

    #[test]
    fn estimate_tracks_exact_density() {
        let data = blob(1500, 2, 41);
        let h = tkdc_kernel::scotts_rule(&data, 1.0).unwrap();
        let kernel = Kernel::gaussian(h).unwrap();
        let b = RffBackend::build(&data, None, kernel.clone(), 0.01, RffParams::default(), 41);
        let queries = blob(50, 2, 43);
        let mut scratch = QueryScratch::new();
        let mut covered = 0usize;
        let mut abs_err = 0.0f64;
        let norm = kernel.max_value();
        for i in 0..queries.rows() {
            let q = queries.row(i);
            let exact = naive_density(&data, &kernel, q);
            let est = b.bound_density(q, 0.0, 0.0, &mut scratch);
            if est.lower <= exact && exact <= est.upper {
                covered += 1;
            }
            abs_err += (est.midpoint() - exact).abs();
        }
        let coverage = covered as f64 / queries.rows() as f64;
        assert!(coverage > 0.85, "coverage {coverage}");
        // Additive error should be far below norm/√D's worst case.
        let mean_abs = abs_err / queries.rows() as f64;
        assert!(
            mean_abs < norm / (RffParams::default().features as f64).sqrt(),
            "mean |err| {mean_abs}"
        );
        assert_eq!(scratch.stats.estimated as usize, queries.rows());
    }

    #[test]
    fn persistence_round_trip_is_bit_identical() {
        let data = blob(400, 3, 47);
        let h = tkdc_kernel::scotts_rule(&data, 1.0).unwrap();
        let kernel = Kernel::gaussian(h).unwrap();
        let params = RffParams { features: 256 };
        let b = RffBackend::build(&data, None, kernel.clone(), 0.05, params, 47);
        let r = RffBackend::from_parts(
            kernel,
            0.05,
            params,
            47,
            b.coef().to_vec(),
            b.n_train(),
            b.total_mass(),
        );
        let q = [0.1, -0.4, 0.9];
        let mut s1 = QueryScratch::new();
        let mut s2 = QueryScratch::new();
        let e1 = b.bound_density(&q, 0.0, 0.0, &mut s1);
        let e2 = r.bound_density(&q, 0.0, 0.0, &mut s2);
        assert_eq!(e1.lower.to_bits(), e2.lower.to_bits());
        assert_eq!(e1.upper.to_bits(), e2.upper.to_bits());
        assert!(r.exact_density(&q, &mut s2).is_none());
    }

    #[test]
    fn weighted_coefficients_match_duplication() {
        let mut dup = Matrix::with_cols(2);
        let mut wtd = Matrix::with_cols(2);
        let mut rng = Rng::seed_from(53);
        let mut weights = Vec::new();
        for _ in 0..200 {
            let p = [rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)];
            let w = 1 + (rng.next_below(3) as usize);
            for _ in 0..w {
                dup.push_row(&p).unwrap();
            }
            wtd.push_row(&p).unwrap();
            weights.push(w as f64);
        }
        let h = tkdc_kernel::scotts_rule(&dup, 1.0).unwrap();
        let kernel = Kernel::gaussian(h).unwrap();
        let params = RffParams { features: 128 };
        let bd = RffBackend::build(&dup, None, kernel.clone(), 0.01, params, 59);
        let bw = RffBackend::build(&wtd, Some(&weights), kernel, 0.01, params, 59);
        for (a, b) in bd.coef().iter().zip(bw.coef()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
