//! The certified dual-tree backend: the paper's Algorithm 2 extracted
//! behind the [`DensityBackend`] trait with zero behavior change.

use super::{BoundKind, DensityBackend};
use crate::bound::{DensityBounder, DensityBounds};
use crate::params::Optimizations;
use crate::qstats::QueryScratch;
use tkdc_index::{BandwidthGrid, KdTree};
use tkdc_kernel::Kernel;

/// Certified-bounds backend: k-d tree + kernel + optional grid cache.
///
/// Owns everything `BoundDensity` needs. The grid inlier cache is a
/// tree-only optimization — it certifies a density *lower* bound from
/// same-cell point counts, which only makes sense alongside certified
/// traversal bounds — so it lives here rather than in the
/// backend-agnostic classifier core.
#[derive(Debug)]
pub struct TreeBackend {
    tree: KdTree,
    kernel: Kernel,
    grid: Option<BandwidthGrid>,
    grid_diag_sq: f64,
    opts: Optimizations,
    epsilon: f64,
}

impl TreeBackend {
    /// Assembles the backend from fitted parts. The caller (classifier
    /// fit / model load) has already validated dimensional consistency.
    pub(crate) fn new(
        tree: KdTree,
        kernel: Kernel,
        grid: Option<BandwidthGrid>,
        opts: Optimizations,
        epsilon: f64,
    ) -> Self {
        let grid_diag_sq = grid
            .as_ref()
            .map(|g| g.diag_scaled_sq(kernel.inv_bandwidths()))
            .unwrap_or(0.0);
        Self {
            tree,
            kernel,
            grid,
            grid_diag_sq,
            opts,
            epsilon,
        }
    }

    /// The spatial index.
    pub fn tree(&self) -> &KdTree {
        &self.tree
    }

    /// The grid cache, if active.
    pub(crate) fn grid(&self) -> Option<&BandwidthGrid> {
        self.grid.as_ref()
    }

    /// Grid fast-path probe: the certified density lower bound from the
    /// query's cell population (`count/n · K(diag²)`), or `None` when no
    /// grid is active. The caller decides what threshold to test it
    /// against (training and classification use different guards).
    pub(crate) fn grid_lower(&self, x: &[f64]) -> Option<f64> {
        self.grid.as_ref().map(|g| {
            g.cell_count(x) as f64 / self.tree.len() as f64
                * self.kernel.eval_scaled_sq(self.grid_diag_sq)
        })
    }

    fn bounder(&self) -> DensityBounder<'_> {
        DensityBounder::new(&self.tree, &self.kernel, self.opts, self.epsilon)
    }
}

impl DensityBackend for TreeBackend {
    fn name(&self) -> &'static str {
        "tree"
    }

    fn bound_kind(&self) -> BoundKind {
        BoundKind::Certified
    }

    fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    fn dim(&self) -> usize {
        self.tree.dim()
    }

    fn n_train(&self) -> usize {
        self.tree.len()
    }

    fn bound_density(
        &self,
        x: &[f64],
        t_lo: f64,
        t_hi: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        self.bounder().bound_density(x, t_lo, t_hi, scratch)
    }

    fn bound_density_relative(
        &self,
        x: &[f64],
        rtol: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        self.bounder().bound_density_relative(x, rtol, scratch)
    }

    fn exact_density(&self, x: &[f64], scratch: &mut QueryScratch) -> Option<f64> {
        Some(self.bounder().exact_density(x, scratch))
    }
}
