//! Pluggable density-estimation backends.
//!
//! The classifier core is generic over *how* density bounds are
//! produced: the paper's certified dual-tree traversal is one strategy
//! ([`TreeBackend`]), but in high dimensions its pruning collapses and
//! randomized estimators win. This module defines the
//! [`DensityBackend`] contract every estimator implements plus the
//! three shipped backends:
//!
//! * [`TreeBackend`] — Algorithm 2's best-first traversal with
//!   certified bounds (the default; bit-identical to the pre-trait
//!   classifier).
//! * [`HbeBackend`] — Charikar–Siminelakis hashing-based estimator:
//!   E2LSH importance sampling with probabilistic `(ε, δ)` bounds.
//! * [`RffBackend`] — fixed-budget random-Fourier-feature estimator for
//!   the Gaussian kernel.
//!
//! Bound provenance is explicit: [`BoundKind::Certified`] intervals
//! hold deterministically, [`BoundKind::Probabilistic`] intervals hold
//! with probability `1 − δ` per query. The provenance rides through
//! the classifier into serve stats and trace output so clients can
//! never mistake a sampled estimate for a certified answer.

pub mod hbe;
pub mod rff;
pub mod tree;

pub use hbe::HbeBackend;
pub use rff::RffBackend;
pub use tree::TreeBackend;

use crate::bound::DensityBounds;
use crate::qstats::QueryScratch;
use tkdc_kernel::Kernel;

/// Provenance of the density intervals a backend returns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundKind {
    /// Intervals hold deterministically (up to f64 rounding): the
    /// paper's contract.
    Certified,
    /// Intervals hold with probability at least `1 − delta` per query
    /// over the backend's internal randomness.
    Probabilistic {
        /// Per-query failure probability.
        delta: f64,
    },
}

impl BoundKind {
    /// Stable lowercase name (serve stats, bench JSON, trace output).
    pub fn as_str(&self) -> &'static str {
        match self {
            BoundKind::Certified => "certified",
            BoundKind::Probabilistic { .. } => "probabilistic",
        }
    }

    /// Whether intervals from this backend are deterministic guarantees.
    pub fn is_certified(&self) -> bool {
        matches!(self, BoundKind::Certified)
    }
}

/// The estimator contract the classifier routes every density query
/// through.
///
/// Implementations are immutable after fitting and `Sync`; per-query
/// mutable state lives in the caller's [`QueryScratch`]. Queries are
/// pre-validated by the classifier (dimension and NaN checks), so the
/// methods here are infallible. Every implementation must be
/// *schedule-invariant*: the result for a query depends only on the
/// query and the fitted state, never on thread count or batch order.
pub trait DensityBackend: Send + Sync {
    /// Stable lowercase backend name (`"tree"`, `"hbe"`, `"rff"`).
    fn name(&self) -> &'static str;

    /// Provenance of the intervals this backend produces.
    fn bound_kind(&self) -> BoundKind;

    /// The kernel (with fitted bandwidths) the density is defined by.
    fn kernel(&self) -> &Kernel;

    /// Dimensionality of the training data.
    fn dim(&self) -> usize {
        self.kernel().dim()
    }

    /// Number of training points behind the density.
    fn n_train(&self) -> usize;

    /// Density interval for `x` against threshold bounds `[t_lo, t_hi]`.
    ///
    /// The tree traversal prunes against the thresholds (Algorithm 2);
    /// fixed-budget estimators ignore them and return their full-budget
    /// interval. Certified backends guarantee `lower ≤ f(x) ≤ upper`;
    /// probabilistic backends guarantee it with probability `1 − δ`.
    /// The lower bound may be negative for probabilistic backends (a
    /// trivially true statement about a non-negative density).
    fn bound_density(
        &self,
        x: &[f64],
        t_lo: f64,
        t_hi: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds;

    /// Density interval refined to relative precision `rtol`
    /// (`upper − lower ≤ rtol·lower`) where the backend supports
    /// refinement; fixed-budget estimators return the same interval as
    /// [`Self::bound_density`].
    fn bound_density_relative(
        &self,
        x: &[f64],
        rtol: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds;

    /// Exhaustive (exact) density of `x` over the retained training
    /// points, when the backend retains them. `None` for backends that
    /// persist only sketches (RFF).
    fn exact_density(&self, x: &[f64], scratch: &mut QueryScratch) -> Option<f64>;
}

/// Enum dispatch over the shipped backends. The classifier's model
/// holds one of these; the enum (rather than a boxed trait object)
/// keeps the model `Debug` + deep-cloneable and lets the tree path keep
/// its grid fast path without downcasting.
#[derive(Debug)]
pub(crate) enum BackendImpl {
    /// Certified dual-tree traversal.
    Tree(TreeBackend),
    /// Hashing-based estimator.
    Hbe(HbeBackend),
    /// Random-Fourier-feature estimator.
    Rff(RffBackend),
}

impl BackendImpl {
    /// The active backend as the trait object the generic paths use.
    pub(crate) fn as_dyn(&self) -> &dyn DensityBackend {
        match self {
            BackendImpl::Tree(b) => b,
            BackendImpl::Hbe(b) => b,
            BackendImpl::Rff(b) => b,
        }
    }

    /// The tree backend, when active (grid fast path, model
    /// persistence, LLR diagnostics).
    pub(crate) fn as_tree(&self) -> Option<&TreeBackend> {
        match self {
            BackendImpl::Tree(b) => Some(b),
            _ => None,
        }
    }
}

/// Derives a per-query seed from the model seed and the query
/// coordinates. Mixing the raw coordinate bits makes the randomized
/// backends *deterministic per query* — the same query gets the same
/// estimate regardless of batch order, thread count, or scheduling —
/// while distinct queries get decorrelated sample streams.
pub(crate) fn query_seed(model_seed: u64, x: &[f64]) -> u64 {
    let mut h = model_seed ^ 0x9E37_79B9_7F4A_7C15;
    for &v in x {
        h ^= v.to_bits();
        h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
        h ^= h >> 29;
    }
    h
}

/// Half-width multiplier for a `1 − δ` two-sided confidence interval on
/// a mean estimated from `m` i.i.d. replicates: the normal quantile
/// `z_{1−δ/2}` with a first-order Cornish–Fisher small-sample
/// inflation toward the Student-t quantile (the replicate variance is
/// itself estimated).
pub(crate) fn ci_multiplier(delta: f64, m: usize) -> f64 {
    debug_assert!(m >= 2);
    let z = tkdc_common::special::normal_quantile(1.0 - delta / 2.0);
    z * (1.0 + (z * z + 1.0) / (4.0 * (m as f64 - 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_kind_names() {
        assert_eq!(BoundKind::Certified.as_str(), "certified");
        assert!(BoundKind::Certified.is_certified());
        let p = BoundKind::Probabilistic { delta: 0.01 };
        assert_eq!(p.as_str(), "probabilistic");
        assert!(!p.is_certified());
    }

    #[test]
    fn query_seed_is_coordinate_determined() {
        let a = query_seed(7, &[1.0, 2.0]);
        assert_eq!(a, query_seed(7, &[1.0, 2.0]));
        assert_ne!(a, query_seed(8, &[1.0, 2.0]));
        assert_ne!(a, query_seed(7, &[2.0, 1.0]));
        assert_ne!(a, query_seed(7, &[1.0, 2.0, 0.0]));
    }

    #[test]
    fn ci_multiplier_tracks_student_t() {
        // df = 31 at δ = 0.01: t ≈ 2.744 vs z ≈ 2.576.
        let m = ci_multiplier(0.01, 32);
        assert!(m > 2.70 && m < 2.80, "got {m}");
        // Small replicate counts inflate harder.
        assert!(ci_multiplier(0.01, 8) > m);
        // Large m converges to the plain normal quantile.
        let big = ci_multiplier(0.01, 100_000);
        assert!((big - 2.5758).abs() < 1e-2, "got {big}");
    }
}
