//! Stage-level timing spans for fit and batch execution.
//!
//! [`Spans`] is the engine-side adapter between the fit/batch drivers
//! and the hierarchical span records of `tkdc-obs` — the stage-grained
//! sibling of [`Tracer`](crate::trace::Tracer)'s per-query records. It
//! follows the same vanishing pattern:
//!
//! * With the `obs` cargo feature disabled, [`Spans`] is a zero-sized
//!   `Copy` struct whose methods are empty `#[inline]` bodies.
//! * With the feature on but no sink attached ([`Spans::off`], the
//!   default everywhere), every hook is one `Option` check.
//!
//! Spans are stage-grained — a fit phase, a whole batch traversal, a
//! serve request — never per query point, so recording cost is
//! irrelevant to the traversal hot loops. The one per-query-adjacent
//! measurement, the leaf kernel-sum share, is accumulated as plain
//! nanosecond arithmetic in `QueryScratch` (see
//! [`QueryScratch::time_leaves`](crate::qstats::QueryScratch)) and
//! emitted afterwards as one synthetic span per worker scratch.

#[cfg(feature = "obs")]
use std::time::Instant;

#[cfg(feature = "obs")]
use tkdc_sync::Arc;

#[cfg(feature = "obs")]
pub use tkdc_obs::span::{SpanGuard, SpanRecord, SpanSink};

/// Handle to an optional span sink (see module docs). Inert by default;
/// cloning shares the underlying sink.
#[cfg(feature = "obs")]
#[derive(Debug, Clone, Default)]
pub struct Spans {
    sink: Option<Arc<SpanSink>>,
}

#[cfg(feature = "obs")]
impl Spans {
    /// An inert handle: every hook is a no-op.
    pub fn off() -> Self {
        Self::default()
    }

    /// A recording handle over a fresh sink based at "now".
    pub fn enabled() -> Self {
        Self {
            sink: Some(Arc::new(SpanSink::new())),
        }
    }

    /// A recording handle over a fresh sink whose timestamps count from
    /// `base` — lets many handles (e.g. one per serve request) share a
    /// single timeline.
    pub fn enabled_with_base(base: Instant) -> Self {
        Self {
            sink: Some(Arc::new(SpanSink::with_base(base))),
        }
    }

    /// A handle recording into an existing shared sink.
    pub fn from_sink(sink: Arc<SpanSink>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether this handle records anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Enters a span on the calling thread; the returned guard records
    /// the exit when dropped. `None` when inert.
    #[inline]
    pub fn enter(&self, name: &'static str) -> Option<SpanGuard> {
        self.sink.as_ref().map(|s| s.enter(name))
    }

    /// Microseconds since the sink's base (0 when inert).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.now_us())
    }

    /// Records an already-measured interval on an explicit track (see
    /// [`SpanSink::record_complete`]). No-op when inert.
    #[inline]
    pub fn record_complete(&self, name: &'static str, tid: u64, ts_us: u64, dur_us: u64) {
        if let Some(s) = &self.sink {
            s.record_complete(name, tid, ts_us, dur_us);
        }
    }

    /// Drains the recorded events (empty when inert).
    pub fn take(&self) -> Vec<SpanRecord> {
        self.sink.as_ref().map(|s| s.take()).unwrap_or_default()
    }

    /// The calling (submitting) thread's track id — the base from which
    /// batch drivers derive synthetic tracks for per-worker spans.
    #[inline]
    pub fn submitter_track(&self) -> u64 {
        tkdc_obs::span::current_tid()
    }
}

/// Feature-off stand-in: a zero-sized handle whose hooks compile to
/// nothing, so spanned entry points cost exactly their unspanned twins.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct Spans;

/// Feature-off stand-in guard: zero-sized, nothing happens on drop.
/// Deliberately not `Copy` so `drop(guard)` closes a "span" exactly
/// like the real guard does.
#[cfg(not(feature = "obs"))]
#[derive(Debug)]
pub struct SpanGuard;

#[cfg(not(feature = "obs"))]
impl Spans {
    /// An inert handle (the only kind in a feature-off build).
    #[inline]
    pub fn off() -> Self {
        Self
    }

    /// Always `false`: nothing records in a feature-off build.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// No-op; the returned zero-sized guard drops for free.
    #[inline]
    pub fn enter(&self, _name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// Always 0.
    #[inline]
    pub fn now_us(&self) -> u64 {
        0
    }

    /// No-op.
    #[inline]
    pub fn record_complete(&self, _name: &'static str, _tid: u64, _ts_us: u64, _dur_us: u64) {}

    /// Always 0 in a feature-off build.
    #[inline]
    pub fn submitter_track(&self) -> u64 {
        0
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    #[test]
    fn inert_spans_record_nothing() {
        let s = Spans::off();
        assert!(!s.is_enabled());
        assert!(s.enter("fit.tree_build").is_none());
        s.record_complete("classify.leaf_sum", 0, 0, 1);
        assert_eq!(s.now_us(), 0);
        assert!(s.take().is_empty());
    }

    #[test]
    fn enabled_spans_share_a_sink_across_clones() {
        let s = Spans::enabled();
        let s2 = s.clone();
        drop(s.enter("fit.bootstrap"));
        drop(s2.enter("fit.threshold"));
        let recs = s.take();
        assert_eq!(recs.len(), 4);
        assert!(s2.take().is_empty(), "clones drain the same sink");
    }

    #[test]
    fn shared_base_yields_one_timeline() {
        let base = Instant::now();
        let a = Spans::enabled_with_base(base);
        let b = Spans::enabled_with_base(base);
        drop(a.enter("serve.request"));
        drop(b.enter("serve.request"));
        let (ra, rb) = (a.take(), b.take());
        // Later sink's timestamps are not reset: b's enter is at or
        // after a's enter on the shared base.
        assert!(rb[0].ts_us >= ra[0].ts_us);
    }
}
