//! Per-query tracing hooks for the pruned traversal.
//!
//! [`Tracer`] is the engine-side adapter between the hot loops
//! (`bound.rs`, `dualtree.rs`, the grid fast path) and the plain-data
//! trace records of `tkdc-obs`. It rides inside [`QueryScratch`] so the
//! parallel engine threads it through workers for free, and it is built
//! to vanish:
//!
//! * With the `obs` cargo feature disabled, [`Tracer`] is a zero-sized
//!   struct whose methods are empty `#[inline]` bodies — the traversal
//!   compiles exactly as before the observability layer existed.
//! * With the feature on but the tracer inert (the default, or sampling
//!   set to 0), every hook is guarded by [`Tracer::is_active`], a single
//!   discriminant check.
//!
//! Sampling is by *query index* — a tracer built with
//! [`Tracer::enabled`]`(every)` records queries whose batch index is a
//! multiple of `every`. Index-based sampling (rather than a shared
//! counter) keeps traces identical at every thread count: which queries
//! are traced, and each trace's content, depend only on the query
//! itself, never on the schedule.
//!
//! [`QueryScratch`]: crate::qstats::QueryScratch

use crate::qstats::QueryStats;

#[cfg(feature = "obs")]
pub use tkdc_obs::{QueryTrace, TraceStep, TraceWriter, TRACE_SCHEMA};

/// Per-scratch trace recorder (see module docs). Inert by default.
#[cfg(feature = "obs")]
#[derive(Debug, Default)]
pub struct Tracer {
    active: Option<ActiveTracer>,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct ActiveTracer {
    /// Record queries whose index is a multiple of this.
    every: u64,
    /// The query being traced right now, if any.
    current: Option<Current>,
    /// Completed traces, in the order this scratch finished them.
    traces: Vec<QueryTrace>,
}

#[cfg(feature = "obs")]
#[derive(Debug)]
struct Current {
    trace: QueryTrace,
    /// Scratch-level counter values when the query began; per-query
    /// counters are diffs against this, so one trace's numbers are this
    /// query's exact share of the accumulated [`QueryStats`].
    base: QueryStats,
}

#[cfg(feature = "obs")]
impl Tracer {
    /// An inert tracer: every hook is a no-op.
    pub fn off() -> Self {
        Self::default()
    }

    /// A tracer that records every `every`-th query by index (`1` =
    /// every query, `0` = inert, matching "sampling at 0 disables").
    pub fn enabled(every: u64) -> Self {
        if every == 0 {
            Self::default()
        } else {
            Self {
                active: Some(ActiveTracer {
                    every,
                    current: None,
                    traces: Vec::new(),
                }),
            }
        }
    }

    /// Whether this tracer records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.active.is_some()
    }

    /// Whether a query is being traced *right now* — the guard the hot
    /// loops check before assembling step data.
    #[inline]
    pub fn is_active(&self) -> bool {
        matches!(&self.active, Some(a) if a.current.is_some())
    }

    /// Starts (or, per sampling, skips) the trace for the query at
    /// `index`, diffing future counters against `base`.
    pub fn begin(&mut self, index: u64, base: QueryStats) {
        let Some(a) = &mut self.active else { return };
        a.current = index.is_multiple_of(a.every).then(|| Current {
            trace: QueryTrace {
                query: index,
                t_lo: f64::NAN,
                t_hi: f64::NAN,
                cause: "",
                lower: f64::NAN,
                upper: f64::NAN,
                nodes_expanded: 0,
                kernel_evals: 0,
                bound_evals: 0,
                steps: Vec::new(),
            },
            base,
        });
    }

    /// Records the threshold bounds the current traversal prunes
    /// against.
    pub fn set_thresholds(&mut self, t_lo: f64, t_hi: f64) {
        if let Some(c) = self.current_mut() {
            c.trace.t_lo = t_lo;
            c.trace.t_hi = t_hi;
        }
    }

    /// Appends one refinement step: the running bounds after a node
    /// expansion, with counters diffed against the trace's base.
    pub fn step(&mut self, stats: QueryStats, lower: f64, upper: f64) {
        if let Some(c) = self.current_mut() {
            c.trace.steps.push(TraceStep {
                nodes_expanded: stats.nodes_expanded - c.base.nodes_expanded,
                kernel_evals: stats.kernel_evals - c.base.kernel_evals,
                lower,
                upper,
            });
        }
    }

    /// Completes the current trace with its final bounds and cause.
    pub fn finish(&mut self, cause: &'static str, stats: QueryStats, lower: f64, upper: f64) {
        let Some(a) = &mut self.active else { return };
        if let Some(mut c) = a.current.take() {
            c.trace.cause = cause;
            c.trace.lower = lower;
            c.trace.upper = upper;
            c.trace.nodes_expanded = stats.nodes_expanded - c.base.nodes_expanded;
            c.trace.kernel_evals = stats.kernel_evals - c.base.kernel_evals;
            c.trace.bound_evals = stats.bound_evals - c.base.bound_evals;
            a.traces.push(c.trace);
        }
    }

    /// Completes the current trace as a grid prune: threshold `t`, the
    /// grid's certified `lower` bound, no upper bound (`NAN` → JSON
    /// `null`), no refinement steps.
    pub fn finish_grid(&mut self, t: f64, stats: QueryStats, lower: f64) {
        self.set_thresholds(t, t);
        self.finish("grid", stats, lower, f64::NAN);
    }

    /// Emits a complete step-less trace for a query classified
    /// wholesale by the dual-tree driver (sampling applies; counters are
    /// zero because the group's shared work is not attributable to one
    /// query).
    pub fn emit_group(&mut self, index: u64, t: f64, lower: f64, upper: f64) {
        let Some(a) = &mut self.active else { return };
        if index.is_multiple_of(a.every) {
            a.traces.push(QueryTrace {
                query: index,
                t_lo: t,
                t_hi: t,
                cause: "group",
                lower,
                upper,
                nodes_expanded: 0,
                kernel_evals: 0,
                bound_evals: 0,
                steps: Vec::new(),
            });
        }
    }

    /// Drains the completed traces (in this scratch's completion order;
    /// batch drivers sort merged traces by query index).
    pub fn take_traces(&mut self) -> Vec<QueryTrace> {
        self.active
            .as_mut()
            .map(|a| std::mem::take(&mut a.traces))
            .unwrap_or_default()
    }

    fn current_mut(&mut self) -> Option<&mut Current> {
        self.active.as_mut().and_then(|a| a.current.as_mut())
    }
}

/// Feature-off stand-in: a zero-sized tracer whose hooks compile to
/// nothing, so the traversal is bit-identical to the pre-observability
/// engine.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Default, Clone, Copy)]
pub struct Tracer;

#[cfg(not(feature = "obs"))]
impl Tracer {
    /// An inert tracer (the only kind in a feature-off build).
    #[inline]
    pub fn off() -> Self {
        Self
    }

    /// Always `false`: nothing records in a feature-off build.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        false
    }

    /// Always `false`: nothing records in a feature-off build.
    #[inline]
    pub fn is_active(&self) -> bool {
        false
    }

    /// No-op.
    #[inline]
    pub fn begin(&mut self, _index: u64, _base: QueryStats) {}

    /// No-op.
    #[inline]
    pub fn set_thresholds(&mut self, _t_lo: f64, _t_hi: f64) {}

    /// No-op.
    #[inline]
    pub fn step(&mut self, _stats: QueryStats, _lower: f64, _upper: f64) {}

    /// No-op.
    #[inline]
    pub fn finish(&mut self, _cause: &'static str, _stats: QueryStats, _lower: f64, _upper: f64) {}

    /// No-op.
    #[inline]
    pub fn finish_grid(&mut self, _t: f64, _stats: QueryStats, _lower: f64) {}

    /// No-op.
    #[inline]
    pub fn emit_group(&mut self, _index: u64, _t: f64, _lower: f64, _upper: f64) {}
}

#[cfg(all(test, feature = "obs"))]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    fn stats(nodes: u64, kernels: u64, bounds: u64) -> QueryStats {
        QueryStats {
            nodes_expanded: nodes,
            kernel_evals: kernels,
            bound_evals: bounds,
            ..Default::default()
        }
    }

    #[test]
    fn inert_tracer_records_nothing() {
        for mut t in [Tracer::off(), Tracer::enabled(0)] {
            assert!(!t.is_enabled());
            t.begin(0, QueryStats::default());
            assert!(!t.is_active());
            t.step(stats(1, 2, 3), 0.1, 0.2);
            t.finish("tolerance", stats(1, 2, 3), 0.1, 0.2);
            assert!(t.take_traces().is_empty());
        }
    }

    #[test]
    fn sampling_selects_by_index() {
        let mut t = Tracer::enabled(3);
        for i in 0..7u64 {
            t.begin(i, QueryStats::default());
            assert_eq!(t.is_active(), i % 3 == 0, "index {i}");
            t.finish("exhausted", QueryStats::default(), 0.0, 0.0);
        }
        let traces = t.take_traces();
        let indices: Vec<u64> = traces.iter().map(|tr| tr.query).collect();
        assert_eq!(indices, vec![0, 3, 6]);
    }

    #[test]
    fn counters_are_diffed_against_begin_base() {
        let mut t = Tracer::enabled(1);
        // Scratch already accumulated work from earlier queries.
        t.begin(5, stats(10, 100, 20));
        t.set_thresholds(0.5, 0.7);
        t.step(stats(11, 100, 22), 0.0, 1.0);
        t.step(stats(12, 116, 22), 0.4, 0.6);
        t.finish("tolerance", stats(12, 116, 22), 0.4, 0.6);
        let traces = t.take_traces();
        assert_eq!(traces.len(), 1);
        let tr = &traces[0];
        assert_eq!(tr.query, 5);
        assert_eq!(tr.t_lo, 0.5);
        assert_eq!(tr.t_hi, 0.7);
        assert_eq!(tr.cause, "tolerance");
        assert_eq!(tr.nodes_expanded, 2);
        assert_eq!(tr.kernel_evals, 16);
        assert_eq!(tr.bound_evals, 2);
        assert_eq!(
            tr.steps,
            vec![
                TraceStep {
                    nodes_expanded: 1,
                    kernel_evals: 0,
                    lower: 0.0,
                    upper: 1.0
                },
                TraceStep {
                    nodes_expanded: 2,
                    kernel_evals: 16,
                    lower: 0.4,
                    upper: 0.6
                },
            ]
        );
    }

    #[test]
    fn grid_finish_has_no_upper_bound() {
        let mut t = Tracer::enabled(1);
        t.begin(0, stats(0, 0, 0));
        t.finish_grid(0.01, stats(0, 0, 1), 0.02);
        let traces = t.take_traces();
        assert_eq!(traces[0].cause, "grid");
        assert_eq!(traces[0].bound_evals, 1);
        assert_eq!(traces[0].lower, 0.02);
        assert!(traces[0].upper.is_nan());
        assert!(traces[0].steps.is_empty());
    }

    #[test]
    fn group_emission_respects_sampling() {
        let mut t = Tracer::enabled(2);
        t.emit_group(4, 0.1, 0.2, 0.3);
        t.emit_group(5, 0.1, 0.2, 0.3);
        let traces = t.take_traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].query, 4);
        assert_eq!(traces[0].cause, "group");
        assert_eq!(traces[0].nodes_expanded, 0);
    }

    #[test]
    fn unsampled_query_leaves_tracer_enabled_but_inactive() {
        let mut t = Tracer::enabled(2);
        t.begin(1, QueryStats::default());
        assert!(t.is_enabled());
        assert!(!t.is_active());
        // finish on an inactive tracer is a no-op, not a panic.
        t.finish("exhausted", QueryStats::default(), 0.0, 0.0);
        assert!(t.take_traces().is_empty());
    }
}
