//! Dual-tree batch classification — the "dual-tree techniques" the paper
//! flags as future work (§5).
//!
//! When classifying many queries at once (a grid for contour rendering,
//! or the whole dataset during training), nearby queries repeat almost
//! identical traversal work. The dual-tree driver indexes the *queries*
//! in a second k-d tree and maintains density bounds that hold
//! simultaneously for every query inside a query-tree node, using
//! box-to-box distance bounds:
//!
//! * `K(d_min(Q, R))` upper-bounds the contribution of any point in
//!   reference node `R` to any query in `Q`;
//! * `K(d_max(Q, R))` lower-bounds it.
//!
//! If a whole query node's shared bounds clear the threshold, every query
//! in it is classified in one shot; otherwise the query node splits and
//! the (partially refined) reference frontier is pushed down. Queries
//! reaching a leaf fall back to the exact single-point traversal of
//! Algorithm 2, so correctness is identical — the dual tree only changes
//! how much work is shared.
//!
//! Performance profile: group certification pays off when queries
//! cluster inside decisively-HIGH or decisively-LOW regions (contour
//! grids over dense areas, batch scoring of clustered telemetry). For
//! sparse queries the single-point path is already so cheap — the
//! threshold rule fires after a handful of node expansions — that the
//! frontier bookkeeping roughly breaks even; the `ablation` Criterion
//! bench quantifies both regimes.

use crate::classifier::{Classifier, Label};
use crate::qstats::{QueryScratch, QueryStats};
#[cfg(feature = "obs")]
use crate::trace::QueryTrace;
use crate::trace::Tracer;
use tkdc_common::error::{Error, Result};
use tkdc_common::Matrix;
use tkdc_index::bbox::{max_scaled_sq_dist_boxes, min_scaled_sq_dist_boxes};
use tkdc_index::{KdTree, SplitRule};

/// One reference-frontier entry: a reference node with the bound
/// contribution it adds for the *current* query box.
#[derive(Debug, Clone, Copy)]
struct FrontierEntry {
    node: u32,
    w_lo: f64,
    w_hi: f64,
    /// Whether the bounds were computed against the *current* query box
    /// (false for entries inherited from the parent query node, whose
    /// bounds are valid but looser).
    tight: bool,
}

/// Statistics from a dual-tree batch run.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualTreeStats {
    /// Queries classified wholesale at internal query-tree nodes.
    pub group_classified: u64,
    /// Queries that fell back to single-point traversals.
    pub leaf_fallbacks: u64,
    /// Aggregated single-point traversal statistics.
    pub point_stats: QueryStats,
}

/// Configuration for the dual-tree driver.
#[derive(Debug, Clone, Copy)]
pub struct DualTreeConfig {
    /// Query-tree leaf capacity.
    pub query_leaf_size: usize,
    /// Maximum reference-frontier size carried per query node; larger
    /// frontiers sharpen group bounds at more memory/copy cost.
    pub max_frontier: usize,
}

impl Default for DualTreeConfig {
    fn default() -> Self {
        Self {
            query_leaf_size: 8,
            max_frontier: 512,
        }
    }
}

/// Classifies every row of `queries` using shared dual-tree bounds.
///
/// Returns labels in query order plus statistics. Results agree with
/// [`Classifier::classify_batch_with`] on every query outside the ε-band
/// (both drivers implement Problem 1's contract).
pub fn classify_batch_dual(
    clf: &Classifier,
    queries: &Matrix,
    config: &DualTreeConfig,
) -> Result<(Vec<Label>, DualTreeStats)> {
    let (labels, stats, _) = run_dual(clf, queries, config, Tracer::off())?;
    Ok((labels, stats))
}

/// [`classify_batch_dual`] with per-query tracing: labels and statistics
/// are identical to the untraced driver; the third element holds one
/// [`QueryTrace`] per sampled query (every `every`-th *original* index;
/// `1` = all, `0` = none), sorted by query index. Queries certified
/// wholesale at an internal query-tree node yield step-less traces with
/// cause `group` and zero counters (the shared frontier work is not
/// attributable to a single query, so group traces do not participate in
/// the trace-vs-`point_stats` accounting identity).
///
/// # Errors
/// Propagates dimension-mismatch and NaN-input errors.
#[cfg(feature = "obs")]
pub fn classify_batch_dual_traced(
    clf: &Classifier,
    queries: &Matrix,
    config: &DualTreeConfig,
    every: u64,
) -> Result<(Vec<Label>, DualTreeStats, Vec<QueryTrace>)> {
    let (labels, stats, mut tracer) = run_dual(clf, queries, config, Tracer::enabled(every))?;
    let mut traces = tracer.take_traces();
    traces.sort_by_key(|t| t.query);
    Ok((labels, stats, traces))
}

/// Shared driver behind the traced and untraced entry points.
fn run_dual(
    clf: &Classifier,
    queries: &Matrix,
    config: &DualTreeConfig,
    tracer: Tracer,
) -> Result<(Vec<Label>, DualTreeStats, Tracer)> {
    let rtree = clf.tree().ok_or_else(|| {
        tkdc_common::error::invalid_param(
            "backend",
            "dual-tree classification requires the tree backend",
        )
    })?;
    if queries.cols() != rtree.dim() {
        return Err(Error::DimensionMismatch {
            expected: rtree.dim(),
            actual: queries.cols(),
        });
    }
    if queries.rows() == 0 {
        return Ok((Vec::new(), DualTreeStats::default(), tracer));
    }

    // Index the queries. We must map reordered tree rows back to input
    // rows, so attach the original index as a trailing coordinate is not
    // possible (distances would change) — instead build the query tree
    // over the queries and recover positions by exact row matching via a
    // parallel index sort. Simpler and robust: build the tree on an
    // augmented matrix is unsafe; we instead keep our own recursion over
    // *index ranges* mirroring KdTree's reordering. KdTree reorders rows
    // internally, so we rebuild the permutation by classifying the
    // reordered rows and scattering labels back by content would be
    // ambiguous for duplicate rows. The clean approach: classify the
    // query tree's reordered points (its `node_points` order) and return
    // labels in that order alongside the reordered matrix — so instead we
    // build the query tree over an explicit copy and classify *its* rows,
    // then match output order by construction below.
    let qtree = KdTree::build(queries, config.query_leaf_size, SplitRule::Median)?;

    let t = clf.threshold();
    let eps = clf.params().epsilon;
    let n = rtree.len() as f64;
    let inv_h = clf.kernel().inv_bandwidths();

    // Labels for the query tree's internal (reordered) row order, plus
    // the reordered-position → original-row permutation (needed up front
    // so traces can carry original query indices).
    let perm = qtree.reorder_permutation(queries);
    let mut reordered_labels: Vec<Label> = vec![Label::Low; queries.rows()];
    let mut stats = DualTreeStats::default();
    let mut scratch = QueryScratch::new();
    scratch.tracer = tracer;

    // Root frontier: the reference root.
    let root_entry = {
        let (u_min, u_max) = box_pair_bounds(&qtree, qtree.root(), rtree, rtree.root(), inv_h);
        let c = rtree.count(rtree.root()) as f64;
        FrontierEntry {
            node: rtree.root(),
            w_lo: c / n * clf.kernel().eval_scaled_sq(u_max),
            w_hi: c / n * clf.kernel().eval_scaled_sq(u_min),
            tight: true,
        }
    };

    recurse(
        clf,
        rtree,
        &qtree,
        qtree.root(),
        vec![root_entry],
        t,
        eps,
        config,
        &perm,
        &mut reordered_labels,
        &mut stats,
        &mut scratch,
    )?;
    stats.point_stats = scratch.stats;

    // Scatter back: the query tree reordered rows; recover the mapping by
    // classifying in reordered order and matching positions through a
    // stable pairing of identical rows. We reconstruct the permutation by
    // walking both matrices' rows lexicographically.
    let mut labels = vec![Label::Low; queries.rows()];
    for (reordered_pos, &orig_pos) in perm.iter().enumerate() {
        labels[orig_pos] = reordered_labels[reordered_pos];
    }
    Ok((labels, stats, scratch.tracer))
}

/// Box-to-box scaled squared distance bounds between a query node and a
/// reference node.
fn box_pair_bounds(
    qtree: &KdTree,
    qnode: u32,
    rtree: &KdTree,
    rnode: u32,
    inv_h: &[f64],
) -> (f64, f64) {
    let (q_lo, q_hi) = (qtree.box_lo(qnode), qtree.box_hi(qnode));
    let (r_lo, r_hi) = (rtree.box_lo(rnode), rtree.box_hi(rnode));
    (
        min_scaled_sq_dist_boxes(q_lo, q_hi, r_lo, r_hi, inv_h),
        max_scaled_sq_dist_boxes(q_lo, q_hi, r_lo, r_hi, inv_h),
    )
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    clf: &Classifier,
    rtree: &KdTree,
    qtree: &KdTree,
    qnode: u32,
    mut frontier: Vec<FrontierEntry>,
    t: f64,
    eps: f64,
    config: &DualTreeConfig,
    perm: &[usize],
    labels: &mut [Label],
    stats: &mut DualTreeStats,
    scratch: &mut QueryScratch,
) -> Result<()> {
    let kernel = clf.kernel();
    let inv_h = kernel.inv_bandwidths();
    let n = rtree.len() as f64;
    let high_cut = t * (1.0 + eps);
    let low_cut = t * (1.0 - eps);

    // Entries inherited from the parent carry bounds computed against
    // the parent's (larger) query box — valid here but looser. Tighten
    // the whole frontier once in a single linear pass.
    let mut f_lo = 0.0;
    let mut f_hi = 0.0;
    for e in frontier.iter_mut() {
        if !e.tight {
            let (u_min, u_max) = box_pair_bounds(qtree, qnode, rtree, e.node, inv_h);
            let c = rtree.count(e.node) as f64;
            e.w_lo = c / n * kernel.eval_scaled_sq(u_max);
            e.w_hi = c / n * kernel.eval_scaled_sq(u_min);
            e.tight = true;
        }
        f_lo += e.w_lo;
        f_hi += e.w_hi;
    }

    // Greedy refinement: split the frontier entry with the widest bound
    // gap until the group rules fire or the frontier budget is reached.
    // The budget scales with the group size — refining a frontier for a
    // 4-query node must not cost more than classifying those queries
    // individually would.
    let group = qtree.count(qnode);
    let budget = (16 + 2 * group).min(config.max_frontier);
    loop {
        if f_lo > high_cut {
            let count = mark(qtree, qnode, labels, Label::High);
            emit_group_traces(qtree, qnode, perm, t, f_lo, f_hi, scratch);
            stats.group_classified += count;
            return Ok(());
        }
        if f_hi < low_cut {
            let count = mark(qtree, qnode, labels, Label::Low);
            emit_group_traces(qtree, qnode, perm, t, f_lo, f_hi, scratch);
            stats.group_classified += count;
            return Ok(());
        }
        if frontier.len() >= budget {
            break;
        }
        // Widest-gap entry with children to split into.
        let mut best: Option<(usize, f64)> = None;
        for (i, e) in frontier.iter().enumerate() {
            if rtree.children(e.node).is_some() {
                let gap = e.w_hi - e.w_lo;
                if best.is_none_or(|(_, g)| gap > g) {
                    best = Some((i, gap));
                }
            }
        }
        let Some((i, gap)) = best else { break };
        if gap <= 0.0 {
            break;
        }
        let entry = frontier.swap_remove(i);
        f_lo -= entry.w_lo;
        f_hi -= entry.w_hi;
        // INVARIANT: only internal nodes produce a positive refinement gap.
        let (l, r) = rtree.children(entry.node).expect("selected as splittable");
        for child in [l, r] {
            let (u_min, u_max) = box_pair_bounds(qtree, qnode, rtree, child, inv_h);
            let c = rtree.count(child) as f64;
            let e = FrontierEntry {
                node: child,
                w_lo: c / n * kernel.eval_scaled_sq(u_max),
                w_hi: c / n * kernel.eval_scaled_sq(u_min),
                tight: true,
            };
            f_lo += e.w_lo;
            f_hi += e.w_hi;
            if e.w_hi > 0.0 {
                frontier.push(e);
            }
        }
    }
    // Entries handed down to children are no longer tight for them.
    for e in frontier.iter_mut() {
        e.tight = false;
    }

    match qtree.children(qnode) {
        Some((l, r)) => {
            recurse(
                clf,
                rtree,
                qtree,
                l,
                frontier.clone(),
                t,
                eps,
                config,
                perm,
                labels,
                stats,
                scratch,
            )?;
            recurse(
                clf, rtree, qtree, r, frontier, t, eps, config, perm, labels, stats, scratch,
            )?;
            Ok(())
        }
        None => {
            // Leaf fallback: per-query classification through the full
            // single-point path (grid fast-path included). Traces carry
            // the *original* row index so they line up with the input
            // order regardless of the query tree's reordering.
            let node = qnode;
            let start = leaf_start(qtree, node);
            for (offset, q) in qtree.node_points(node).enumerate() {
                scratch.begin_trace(perm[start + offset] as u64); // CAST: row index widens to u64
                labels[start + offset] = clf.classify_with(q, scratch)?;
                stats.leaf_fallbacks += 1;
            }
            Ok(())
        }
    }
}

/// Emits step-less `group` traces for every (sampled) query under a
/// wholesale-classified node. A no-op unless tracing is enabled.
fn emit_group_traces(
    qtree: &KdTree,
    qnode: u32,
    perm: &[usize],
    t: f64,
    f_lo: f64,
    f_hi: f64,
    scratch: &mut QueryScratch,
) {
    if !scratch.tracer.is_enabled() {
        return;
    }
    let start = leaf_start(qtree, qnode);
    for pos in start..start + qtree.count(qnode) {
        scratch.tracer.emit_group(perm[pos] as u64, t, f_lo, f_hi); // CAST: row index widens to u64
    }
}

/// Marks every query under `qnode` with `label`; returns how many.
fn mark(qtree: &KdTree, qnode: u32, labels: &mut [Label], label: Label) -> u64 {
    let start = leaf_start(qtree, qnode);
    let count = qtree.count(qnode);
    for l in &mut labels[start..start + count] {
        *l = label;
    }
    count as u64 // CAST: usize count widens to u64
}

/// Row offset of a node's range within the tree's reordered point order.
fn leaf_start(qtree: &KdTree, qnode: u32) -> usize {
    qtree.node_range(qnode).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Params;
    use tkdc_common::Rng;

    fn blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.5);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    #[test]
    fn dual_tree_agrees_with_serial_outside_band() {
        let data = blob(3000, 2, 111);
        let clf = Classifier::fit(&data, &Params::default().with_seed(7)).unwrap();
        let queries = blob(800, 2, 222);
        let (serial, _) = clf
            .classify_batch_with(&queries, crate::ExecPolicy::Serial)
            .unwrap();
        let (dual, stats) =
            classify_batch_dual(&clf, &queries, &DualTreeConfig::default()).unwrap();
        assert_eq!(serial.len(), dual.len());
        // Agreement required outside the ε-band; compare via exact
        // densities where the two disagree.
        let t = clf.threshold();
        let eps = clf.params().epsilon;
        let mut disagreements = 0;
        for i in 0..queries.rows() {
            if serial[i] != dual[i] {
                let exact = clf.exact_density(queries.row(i)).unwrap();
                assert!(
                    (exact - t).abs() <= 2.0 * eps * t,
                    "disagreement outside ε-band at row {i}: density {exact}, t {t}"
                );
                disagreements += 1;
            }
        }
        assert!(disagreements < queries.rows() / 20);
        assert!(stats.group_classified + stats.leaf_fallbacks >= queries.rows() as u64);
    }

    #[test]
    fn dual_tree_groups_clustered_queries() {
        // A tight grid of queries in the dense center should classify
        // mostly in groups.
        let data = blob(5000, 2, 333);
        let clf = Classifier::fit(&data, &Params::default().with_seed(11)).unwrap();
        let mut queries = Matrix::with_cols(2);
        for i in 0..40 {
            for j in 0..40 {
                queries
                    .push_row(&[-0.5 + i as f64 * 0.025, -0.5 + j as f64 * 0.025])
                    .unwrap();
            }
        }
        let (labels, stats) =
            classify_batch_dual(&clf, &queries, &DualTreeConfig::default()).unwrap();
        assert!(labels.iter().all(|&l| l == Label::High));
        assert!(
            stats.group_classified > stats.leaf_fallbacks,
            "expected group classification to dominate: {stats:?}"
        );
    }

    #[test]
    fn dual_tree_handles_duplicates_and_empty() {
        let data = blob(1000, 2, 444);
        let clf = Classifier::fit(&data, &Params::default().with_seed(13)).unwrap();
        // Duplicate query rows.
        let queries = Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 0.0], vec![9.0, 9.0]]).unwrap();
        let (labels, _) = classify_batch_dual(&clf, &queries, &DualTreeConfig::default()).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], Label::Low);
        // Empty query set.
        let empty = Matrix::with_cols(2);
        let (labels, _) = classify_batch_dual(&clf, &empty, &DualTreeConfig::default()).unwrap();
        assert!(labels.is_empty());
    }

    #[test]
    fn dual_tree_rejects_dim_mismatch() {
        let data = blob(500, 2, 555);
        let clf = Classifier::fit(&data, &Params::default().with_seed(17)).unwrap();
        let queries = blob(10, 3, 666);
        assert!(classify_batch_dual(&clf, &queries, &DualTreeConfig::default()).is_err());
    }
}
