//! Bootstrapped threshold bound estimation (Algorithm 3 of the paper).
//!
//! Picking the quantile threshold `t(p)` requires densities, but computing
//! densities efficiently requires threshold bounds — a chicken-and-egg
//! problem. The bootstrap resolves it by training mini-KDEs on
//! geometrically growing subsets `X_r ⊆ X`, using the (probabilistic)
//! threshold bounds derived from each round to prune density computations
//! in the next. Order-statistic confidence intervals (Eq. 10/11) turn a
//! sample of `s` densities into `1-δ` bounds on the population quantile;
//! when a round's densities overflow the previous bounds, the bounds are
//! multiplicatively backed off and the round retried.

use crate::bound::DensityBounder;
use crate::classifier::ExecPolicy;
use crate::engine;
use crate::params::Params;
use crate::qstats::{QueryScratch, QueryStats};
use tkdc_common::error::{Error, Result};
use tkdc_common::order::quantile_ci_ranks;
use tkdc_common::{Matrix, Rng};
use tkdc_index::KdTree;
use tkdc_kernel::{scotts_rule, Kernel};

/// Probabilistic bounds on the quantile threshold `t(p)`.
///
/// With probability at least `1 − δ`, `lower ≤ t(p) ≤ upper`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdBounds {
    /// Lower bound `t_l`.
    pub lower: f64,
    /// Upper bound `t_u`.
    pub upper: f64,
}

impl ThresholdBounds {
    /// Bounds widened additively by a certified absolute density error
    /// `eps_abs` (the coreset ε-fold): when these bounds hold for a KDE
    /// within `±eps_abs` of the full-data KDE (a coreset guarantee), the
    /// folded bounds hold for the full-data threshold. The lower bound is
    /// clamped at zero — densities are non-negative.
    pub fn folded(self, eps_abs: f64) -> Self {
        debug_assert!(eps_abs >= 0.0);
        Self {
            lower: (self.lower - eps_abs).max(0.0),
            upper: self.upper + eps_abs,
        }
    }
}

/// Diagnostics from a bootstrap run.
#[derive(Debug, Clone, Default)]
pub struct BootstrapReport {
    /// Training-subset sizes visited, in order (repeats mean backoff
    /// retries).
    pub rounds: Vec<usize>,
    /// Number of invalid-bound backoffs performed.
    pub backoffs: usize,
    /// Aggregate traversal statistics across every bootstrap query.
    pub stats: QueryStats,
}

/// Runs Algorithm 3: estimates `1-δ` bounds on `t(p)` for the KDE over
/// the full dataset, bootstrapping through growing training subsets.
///
/// Returns the bounds plus a diagnostics report.
pub fn bound_threshold(
    data: &Matrix,
    params: &Params,
) -> Result<(ThresholdBounds, BootstrapReport)> {
    bound_threshold_with(data, params, ExecPolicy::Serial)
}

/// [`bound_threshold`] with each round's density queries work-stolen
/// across the policy's resolved thread count.
///
/// Bit-identical to the serial path for any thread count and the same
/// seed: the seeded RNG is only consumed by the (sequential) subset
/// sampling at the top of each round, every density query is an
/// independent deterministic traversal, and densities are merged back in
/// index order — so the sorted order statistics, the backoff/retry
/// trajectory, and therefore the RNG stream itself never depend on the
/// thread count. Statistics counters merge by summation, which is
/// order-independent.
pub fn bound_threshold_with(
    data: &Matrix,
    params: &Params,
    policy: ExecPolicy,
) -> Result<(ThresholdBounds, BootstrapReport)> {
    params.validate()?;
    let n = data.rows();
    if n == 0 {
        return Err(Error::EmptyInput("bootstrap training data"));
    }
    let n_threads = policy.resolved_threads();
    let mut rng = Rng::seed_from(params.seed);
    let mut report = BootstrapReport::default();
    let mut scratch = QueryScratch::new();

    let mut t_lo = 0.0f64;
    let mut t_hi = f64::INFINITY;
    let mut r = params.bootstrap.r0.min(n);
    let mut retries_left = params.bootstrap.max_retries;

    loop {
        report.rounds.push(r);
        // Sample the round's training subset and its query subsample.
        // Final round trains on the full dataset; avoid cloning it.
        let sampled;
        let xr: &Matrix = if r == n {
            data
        } else {
            sampled = data.sample_rows(r, &mut rng);
            &sampled
        };
        let s = params.bootstrap.s0.min(r);
        let xs = xr.sample_rows(s, &mut rng);

        // Mini-KDE over the subset: fresh index and bandwidth (Scott's
        // rule depends on the subset size).
        let tree = KdTree::build(xr, params.leaf_size, params.opts.split_rule())?;
        let h = scotts_rule(xr, params.bandwidth_factor)?;
        let kernel = Kernel::new(params.kernel, h)?;
        let bounder = DensityBounder::new(&tree, &kernel, params.opts, params.epsilon);
        let self_contrib = kernel.max_value() / r as f64;

        // Density estimates for the query subsample, corrected for the
        // contribution each training point makes to itself (Eq. 1).
        // The threshold bounds live in *corrected* density space while
        // BoundDensity prunes *raw* densities, so shift the bounds by f₀
        // — otherwise a raw density just above t_hi could be pruned as
        // certainly-HIGH even though its corrected value belongs inside
        // the CI ranks, corrupting the order statistics.
        let raw_hi = if t_hi.is_finite() {
            t_hi + self_contrib
        } else {
            t_hi
        };
        // Work-stolen across threads; densities come back in index order
        // and the per-worker counters merge by summation, so the round is
        // bit-identical to a serial loop for every thread count.
        let (mut densities, worker_scratches) =
            engine::run_batch(s, n_threads, QueryScratch::new, |i, sc| {
                let b = bounder.bound_density(xs.row(i), t_lo + self_contrib, raw_hi, sc);
                Ok((b.midpoint() - self_contrib).max(0.0))
            })?;
        for ws in &worker_scratches {
            scratch.stats.merge(&ws.stats);
        }
        // IEEE total order: a NaN density (which bound_density should
        // never produce, but a poisoned input could) sorts last instead of
        // panicking mid-bootstrap.
        densities.sort_by(f64::total_cmp);

        let (l, u) = quantile_ci_ranks(s, params.p, params.delta)?;
        let d_l = densities[l];
        let d_u = densities[u];

        if d_u > t_hi {
            // Upper bound was invalid: the pruning may have truncated the
            // very densities the CI needs. Relax and retry this round.
            // Relax at least to the observed order statistic (plus
            // buffer) — pure multiplicative backoff cannot escape a zero
            // bound, which compact-support kernels can produce.
            let relaxed = if t_hi.is_finite() {
                t_hi * params.bootstrap.backoff
            } else {
                t_hi
            };
            t_hi = relaxed.max(d_u * params.bootstrap.buffer);
            report.backoffs += 1;
            retries_left = retries_left.checked_sub(1).ok_or_else(|| {
                Error::Numeric("threshold bootstrap exceeded backoff budget".into())
            })?;
            continue;
        }
        if d_l < t_lo {
            t_lo = (t_lo / params.bootstrap.backoff).min(d_l / params.bootstrap.buffer);
            report.backoffs += 1;
            retries_left = retries_left.checked_sub(1).ok_or_else(|| {
                Error::Numeric("threshold bootstrap exceeded backoff budget".into())
            })?;
            continue;
        }

        if r == n {
            // Final round ran on the full dataset: the CI ranks are the
            // answer. The midpoint estimates carry up to ±ε·t/2 tolerance
            // error, so widen the returned bounds by that slack — without
            // it the documented 1−δ coverage could be eroded by the
            // approximation itself.
            report.stats.merge(&scratch.stats);
            return Ok((
                ThresholdBounds {
                    lower: d_l * (1.0 - params.epsilon),
                    upper: d_u * (1.0 + params.epsilon),
                },
                report,
            ));
        }

        // Valid intermediate bounds: buffer them for the next, larger
        // round (densities shift as n and the bandwidth change).
        t_hi = d_u * params.bootstrap.buffer;
        t_lo = d_l / params.bootstrap.buffer;
        retries_left = params.bootstrap.max_retries;
        let grown = (r as f64 * params.bootstrap.growth) as usize; // CAST: r*growth is a sample count far below 2^53
        r = grown.min(n).max(r + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Optimizations;
    use tkdc_common::order::quantile;

    fn gaussian_blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    /// Exact t(p): p-quantile of self-corrected naive densities.
    fn exact_threshold(data: &Matrix, params: &Params) -> f64 {
        let h = scotts_rule(data, params.bandwidth_factor).unwrap();
        let kernel = Kernel::new(params.kernel, h).unwrap();
        let n = data.rows() as f64;
        let self_contrib = kernel.max_value() / n;
        let dens: Vec<f64> = data
            .iter_rows()
            .map(|x| {
                let mut acc = 0.0;
                for y in data.iter_rows() {
                    acc += kernel.eval_pair(x, y);
                }
                acc / n - self_contrib
            })
            .collect();
        quantile(&dens, params.p).unwrap()
    }

    #[test]
    fn bounds_bracket_exact_threshold() {
        let data = gaussian_blob(3000, 2, 41);
        let params = Params::default().with_p(0.05).with_seed(1);
        let (bounds, report) = bound_threshold(&data, &params).unwrap();
        assert!(bounds.lower <= bounds.upper);
        assert!(bounds.lower > 0.0, "threshold should be positive");
        let exact = exact_threshold(&data, &params);
        assert!(
            bounds.lower <= exact * 1.02 && exact <= bounds.upper * 1.02,
            "exact t(p)={exact} outside [{}, {}]",
            bounds.lower,
            bounds.upper
        );
        // Geometric growth: r0, 4·r0, …, n.
        assert!(report.rounds.len() >= 2);
        assert_eq!(*report.rounds.last().unwrap(), 3000);
    }

    #[test]
    fn small_dataset_single_round() {
        let data = gaussian_blob(150, 2, 43);
        let params = Params::default();
        let (bounds, report) = bound_threshold(&data, &params).unwrap();
        // n < r0 ⇒ one round over the whole dataset.
        assert_eq!(report.rounds, vec![150]);
        assert!(bounds.lower <= bounds.upper);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = gaussian_blob(1200, 2, 47);
        let params = Params::default().with_seed(5);
        let (b1, _) = bound_threshold(&data, &params).unwrap();
        let (b2, _) = bound_threshold(&data, &params).unwrap();
        assert_eq!(b1, b2);
    }

    #[test]
    fn parallel_bootstrap_bit_identical() {
        let data = gaussian_blob(1500, 2, 61);
        let params = Params::default().with_seed(9);
        let (serial, s_report) = bound_threshold(&data, &params).unwrap();
        for threads in [2, 4, 8] {
            let (parallel, p_report) =
                bound_threshold_with(&data, &params, ExecPolicy::with_threads(threads)).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(s_report.rounds, p_report.rounds, "threads={threads}");
            assert_eq!(s_report.backoffs, p_report.backoffs, "threads={threads}");
            assert_eq!(s_report.stats, p_report.stats, "threads={threads}");
        }
    }

    #[test]
    fn works_without_optimizations() {
        let data = gaussian_blob(800, 2, 53);
        let params = Params::default().with_opts(Optimizations::none());
        let (bounds, _) = bound_threshold(&data, &params).unwrap();
        let exact = exact_threshold(&data, &params);
        assert!(bounds.lower <= exact * 1.02 && exact <= bounds.upper * 1.02);
    }

    #[test]
    fn rejects_empty_input() {
        let data = Matrix::with_cols(2);
        assert!(bound_threshold(&data, &Params::default()).is_err());
    }

    #[test]
    #[allow(clippy::float_cmp)] // exact-value asserts are deliberate
    fn folded_bounds_widen_and_clamp() {
        let b = ThresholdBounds {
            lower: 0.5,
            upper: 2.0,
        };
        let f = b.folded(0.25);
        assert_eq!(f.lower, 0.25);
        assert_eq!(f.upper, 2.25);
        // Folding never produces a negative density lower bound.
        let g = b.folded(1.0);
        assert_eq!(g.lower, 0.0);
        // Zero fold is the identity.
        assert_eq!(b.folded(0.0), b);
    }

    #[test]
    fn different_p_orders_thresholds() {
        let data = gaussian_blob(2000, 2, 59);
        let (b_low, _) = bound_threshold(&data, &Params::default().with_p(0.01)).unwrap();
        let (b_high, _) = bound_threshold(&data, &Params::default().with_p(0.5)).unwrap();
        // The median-density threshold must exceed the 1% tail threshold.
        assert!(b_high.lower > b_low.upper);
    }
}
