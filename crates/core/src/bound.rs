//! The `BoundDensity` traversal (Algorithm 2 of the paper).
//!
//! Maintains running lower/upper bounds `(f_l, f_u)` on the kernel density
//! of a query point by iteratively replacing k-d tree nodes with their
//! children, always refining the node with the greatest potential bound
//! improvement `n_r (K(d_min) − K(d_max))`. The traversal stops as soon as
//! either threshold rule (Eq. 9) or the tolerance rule (Eq. 8) fires, or
//! the tree is exhausted (in which case the bounds coincide with the exact
//! density up to floating-point error).

use crate::params::Optimizations;
use crate::qstats::{HeapEntry, PruneCause, QueryScratch};
use tkdc_index::KdTree;
use tkdc_kernel::Kernel;

/// Density bounds plus the cause that ended the traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityBounds {
    /// Certified lower bound on `f(x)`.
    pub lower: f64,
    /// Certified upper bound on `f(x)`.
    pub upper: f64,
    /// Which pruning rule terminated the computation.
    pub cause: PruneCause,
}

impl DensityBounds {
    /// Midpoint estimate `(f_l + f_u)/2` used by Algorithm 1 both for
    /// quantile estimation and final classification.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }
}

/// Bound-computation engine borrowing the spatial index and kernel.
///
/// The engine itself is stateless (and `Sync`); per-thread mutable state
/// lives in the caller-supplied [`QueryScratch`].
#[derive(Debug, Clone, Copy)]
pub struct DensityBounder<'a> {
    tree: &'a KdTree,
    kernel: &'a Kernel,
    opts: Optimizations,
    epsilon: f64,
}

impl<'a> DensityBounder<'a> {
    /// Creates a bounder over a tree/kernel pair.
    ///
    /// # Panics
    /// Panics when the tree and kernel dimensionalities disagree — this
    /// is a programming error, not a data error.
    pub fn new(tree: &'a KdTree, kernel: &'a Kernel, opts: Optimizations, epsilon: f64) -> Self {
        assert_eq!(
            tree.dim(),
            kernel.dim(),
            "tree and kernel dimensionality must match"
        );
        Self {
            tree,
            kernel,
            opts,
            epsilon,
        }
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &Kernel {
        self.kernel
    }

    /// The index in use.
    pub fn tree(&self) -> &KdTree {
        self.tree
    }

    /// Bounds the kernel density of `x` against threshold bounds
    /// `[t_lo, t_hi]` (Algorithm 2). Pass `t_lo == t_hi == t̃` for
    /// classification queries, or the bootstrap's current coarse bounds
    /// during training.
    ///
    /// Guarantees on return, writing `f` for the exact KDE density:
    /// `lower ≤ f ≤ upper` always (up to f64 rounding), and one of
    ///
    /// * `lower > t_hi·(1+ε)` (certain HIGH),
    /// * `upper < t_lo·(1−ε)` (certain LOW),
    /// * `upper − lower < ε·t_lo` (tolerance precision reached), or
    /// * the bounds are exact (tree exhausted).
    pub fn bound_density(
        &self,
        x: &[f64],
        t_lo: f64,
        t_hi: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        debug_assert!(t_lo <= t_hi);
        let high_cut = t_hi * (1.0 + self.epsilon);
        let low_cut = t_lo * (1.0 - self.epsilon);
        let tol_cut = self.epsilon * t_lo;
        let opts = self.opts;
        if scratch.tracer.is_active() {
            scratch.tracer.set_thresholds(t_lo, t_hi);
        }
        // Pruning rules (checked before each refinement, in the
        // pseudocode's order: HIGH, LOW, then tolerance).
        self.traverse(x, scratch, |f_lo, f_hi| {
            if opts.threshold_rule {
                if f_lo > high_cut {
                    return Some(PruneCause::ThresholdHigh);
                }
                if f_hi < low_cut {
                    return Some(PruneCause::ThresholdLow);
                }
            }
            if opts.tolerance_rule && f_hi - f_lo < tol_cut {
                return Some(PruneCause::Tolerance);
            }
            None
        })
    }

    /// Bounds the density with a *relative* tolerance: the traversal
    /// stops when `f_u − f_l ≤ rtol · f_l`, i.e. the scikit-learn /
    /// Gray & Moore stopping rule used by the paper's `nocut`/`sklearn`
    /// baselines. No threshold is involved; the threshold rule and grid
    /// are ignored.
    pub fn bound_density_relative(
        &self,
        x: &[f64],
        rtol: f64,
        scratch: &mut QueryScratch,
    ) -> DensityBounds {
        debug_assert!(rtol >= 0.0);
        if scratch.tracer.is_active() {
            // No threshold is involved; the trace records null bounds.
            scratch.tracer.set_thresholds(f64::NAN, f64::NAN);
        }
        self.traverse(x, scratch, |f_lo, f_hi| {
            (f_hi - f_lo <= rtol * f_lo).then_some(PruneCause::Tolerance)
        })
    }

    /// The shared best-first refinement loop behind both public bounding
    /// modes. `stop` inspects the running bounds before each refinement
    /// and returns the prune cause that should end the traversal, if any;
    /// exhaustion of the tree always terminates regardless.
    ///
    /// Leaves are evaluated through the SoA kernel fast path
    /// ([`Kernel::sum_block_soa`]) over the node's cached
    /// dimension-major block: stride-1 columns autovectorize at any
    /// dimensionality, where the row-major block walk lost to scalar
    /// `eval_pair` beyond the unrolled small-`d` specializations.
    fn traverse(
        &self,
        x: &[f64],
        scratch: &mut QueryScratch,
        stop: impl Fn(f64, f64) -> Option<PruneCause>,
    ) -> DensityBounds {
        debug_assert_eq!(x.len(), self.tree.dim());
        // Density bounds are phrased in node *masses*: for an unweighted
        // tree `node_mass(id)` is bit-identical to `count(id) as f64`, so
        // this generalization changes nothing for full-data fits; for a
        // weighted (coreset) tree each point contributes its weight and
        // the normalizer is the total mass `W = Σ w_i`.
        let n = self.tree.total_mass();
        let inv_h = self.kernel.inv_bandwidths();

        scratch.heap.clear();

        // Seed with the root's coarse bounds.
        let root = self.tree.root();
        let (u_min, u_max) = self.tree.scaled_sq_dist_bounds(root, x, inv_h);
        scratch.stats.bound_evals += 2;
        let count = self.tree.node_mass(root);
        let w_hi = count / n * self.kernel.eval_scaled_sq(u_min);
        let w_lo = count / n * self.kernel.eval_scaled_sq(u_max);
        let mut f_lo = w_lo;
        let mut f_hi = w_hi;
        if w_hi > 0.0 {
            scratch.heap.push(HeapEntry {
                priority: w_hi - w_lo,
                node: root,
                w_lo,
                w_hi,
            });
        }

        let cause = loop {
            if let Some(cause) = stop(f_lo, f_hi) {
                break cause;
            }
            let Some(entry) = scratch.heap.pop() else {
                break PruneCause::Exhausted;
            };
            scratch.stats.nodes_expanded += 1;
            f_lo -= entry.w_lo;
            f_hi -= entry.w_hi;

            match self.tree.children(entry.node) {
                None => {
                    // Leaf: replace the bound with the exact contribution,
                    // summed over the leaf's dimension-major SoA block
                    // (weight-scaled when the tree carries point masses).
                    let rows = self.tree.count(entry.node);
                    let soa = self.tree.node_block_soa(entry.node);
                    // One predictable branch per leaf when disabled (the
                    // default) — the leaf_sum overhead gate holds this
                    // whole hook under 2%.
                    let leaf_t0 = scratch.time_leaves.then(std::time::Instant::now);
                    let exact = match self.tree.node_weights(entry.node) {
                        Some(w) => self.kernel.sum_block_soa_weighted(x, soa, rows, w) / n,
                        None => self.kernel.sum_block_soa(x, soa, rows) / n,
                    };
                    if let Some(t0) = leaf_t0 {
                        // CAST: a single leaf sum is far below u64 ns.
                        scratch.leaf_ns += t0.elapsed().as_nanos() as u64;
                    }
                    scratch.stats.kernel_evals += self.tree.count(entry.node) as u64; // CAST: usize count widens to u64
                    f_lo += exact;
                    f_hi += exact;
                }
                Some((left, right)) => {
                    for child in [left, right] {
                        let (u_min, u_max) = self.tree.scaled_sq_dist_bounds(child, x, inv_h);
                        scratch.stats.bound_evals += 2;
                        let c = self.tree.node_mass(child);
                        let w_hi = c / n * self.kernel.eval_scaled_sq(u_min);
                        let w_lo = c / n * self.kernel.eval_scaled_sq(u_max);
                        f_lo += w_lo;
                        f_hi += w_hi;
                        // A zero upper bound means the subtree contributes
                        // nothing resolvable — skip the push entirely
                        // (exact for compact-support kernels; for the
                        // Gaussian it only skips fully-underflowed boxes).
                        if w_hi > 0.0 {
                            scratch.heap.push(HeapEntry {
                                priority: w_hi - w_lo,
                                node: child,
                                w_lo,
                                w_hi,
                            });
                        }
                    }
                }
            }
            if scratch.tracer.is_active() {
                let stats = scratch.stats;
                scratch.tracer.step(stats, f_lo, f_hi);
            }
        };
        scratch.stats.record_outcome(cause);
        // Guard against tiny negative drift from repeated subtract/add.
        if f_lo < 0.0 {
            f_lo = 0.0;
        }
        let upper = f_hi.max(f_lo);
        if scratch.tracer.is_active() {
            // Finish after the clamp so the trace's final bounds equal
            // the returned `DensityBounds` bitwise.
            let stats = scratch.stats;
            scratch.tracer.finish(cause.as_str(), stats, f_lo, upper);
        }
        DensityBounds {
            lower: f_lo,
            upper,
            cause,
        }
    }

    /// Exact kernel density via exhaustive traversal (all pruning
    /// disabled). Used as the ground-truth oracle by tests.
    pub fn exact_density(&self, x: &[f64], scratch: &mut QueryScratch) -> f64 {
        let saved = self.opts;
        let exact = DensityBounder {
            opts: Optimizations {
                threshold_rule: false,
                tolerance_rule: false,
                ..saved
            },
            ..*self
        };
        let b = exact.bound_density(x, 0.0, f64::INFINITY, scratch);
        debug_assert_eq!(b.cause, PruneCause::Exhausted);
        b.midpoint()
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use tkdc_common::{Matrix, Rng};
    use tkdc_index::SplitRule;
    use tkdc_kernel::{scotts_rule, KernelKind};

    fn gaussian_blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    fn naive_density(data: &Matrix, kernel: &Kernel, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for row in data.iter_rows() {
            acc += kernel.eval_pair(x, row);
        }
        acc / data.rows() as f64
    }

    fn setup(n: usize, d: usize, seed: u64) -> (Matrix, KdTree, Kernel) {
        let data = gaussian_blob(n, d, seed);
        let tree = KdTree::build(&data, 16, SplitRule::TrimmedMidpoint).unwrap();
        let h = scotts_rule(&data, 1.0).unwrap();
        let kernel = Kernel::new(KernelKind::Gaussian, h).unwrap();
        (data, tree, kernel)
    }

    #[test]
    fn exhaustive_bounds_equal_naive_density() {
        let (data, tree, kernel) = setup(400, 2, 3);
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::none(), 0.01);
        let mut scratch = QueryScratch::new();
        // The running add/subtract accumulation drifts relative to the
        // *intermediate* bound magnitudes (≈ K(0)), so tolerance scales
        // with the kernel maximum rather than the (possibly tiny) result.
        let tol = 1e-11 * kernel.max_value();
        for q in [[0.0, 0.0], [1.0, -1.0], [4.0, 4.0]] {
            let b = bounder.bound_density(&q, 0.0, f64::INFINITY, &mut scratch);
            assert_eq!(b.cause, PruneCause::Exhausted);
            let exact = naive_density(&data, &kernel, &q);
            assert!((b.lower - exact).abs() < tol, "{} vs {exact}", b.lower);
            assert!((b.upper - exact).abs() < tol, "{} vs {exact}", b.upper);
        }
    }

    #[test]
    fn bounds_always_sandwich_exact_density() {
        let (data, tree, kernel) = setup(600, 3, 5);
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let mut scratch = QueryScratch::new();
        let mut rng = Rng::seed_from(77);
        // Pick a plausible threshold: the 5th-percentile naive density.
        let mut dens: Vec<f64> = data
            .iter_rows()
            .map(|r| naive_density(&data, &kernel, r))
            .collect();
        dens.sort_by(f64::total_cmp);
        let t = dens[dens.len() / 20];
        for _ in 0..50 {
            let q = [
                rng.normal(0.0, 2.0),
                rng.normal(0.0, 2.0),
                rng.normal(0.0, 2.0),
            ];
            let b = bounder.bound_density(&q, t, t, &mut scratch);
            let exact = naive_density(&data, &kernel, &q);
            assert!(
                b.lower <= exact * (1.0 + 1e-9) + 1e-300,
                "lower bound {} exceeds exact {}",
                b.lower,
                exact
            );
            assert!(
                b.upper >= exact * (1.0 - 1e-9) - 1e-300,
                "upper bound {} below exact {}",
                b.upper,
                exact
            );
        }
    }

    #[test]
    fn pruned_traversal_matches_exact_classification() {
        let (data, tree, kernel) = setup(500, 2, 11);
        let eps = 0.01;
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), eps);
        let mut scratch = QueryScratch::new();
        let mut dens: Vec<f64> = data
            .iter_rows()
            .map(|r| naive_density(&data, &kernel, r))
            .collect();
        dens.sort_by(f64::total_cmp);
        let t = dens[dens.len() / 100]; // 1% threshold
        let mut rng = Rng::seed_from(13);
        for _ in 0..200 {
            let q = [rng.normal(0.0, 2.5), rng.normal(0.0, 2.5)];
            let exact = naive_density(&data, &kernel, &q);
            let b = bounder.bound_density(&q, t, t, &mut scratch);
            let predicted_high = b.midpoint() > t;
            // Outside the ±εt ambiguity band, classification must agree.
            if exact > t * (1.0 + eps) {
                assert!(predicted_high, "exact {exact} > t(1+ε) but classified LOW");
            } else if exact < t * (1.0 - eps) {
                assert!(
                    !predicted_high,
                    "exact {exact} < t(1−ε) but classified HIGH"
                );
            }
        }
    }

    #[test]
    fn threshold_rule_saves_kernel_evaluations() {
        let (_, tree, kernel) = setup(4000, 2, 17);
        let mut s_all = QueryScratch::new();
        let mut s_tol = QueryScratch::new();
        let all = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let tol_only = DensityBounder::new(
            &tree,
            &kernel,
            Optimizations {
                threshold_rule: false,
                tolerance_rule: true,
                ..Optimizations::all()
            },
            0.01,
        );
        // A dense-center query with a tiny threshold is instantly HIGH for
        // the threshold rule but needs precision work for tolerance-only.
        let q = [0.0, 0.0];
        let t = 1e-4;
        all.bound_density(&q, t, t, &mut s_all);
        tol_only.bound_density(&q, t, t, &mut s_tol);
        assert!(
            s_all.stats.kernel_evals + s_all.stats.nodes_expanded
                < s_tol.stats.kernel_evals + s_tol.stats.nodes_expanded,
            "threshold rule should reduce work: {:?} vs {:?}",
            s_all.stats,
            s_tol.stats
        );
        assert_eq!(s_all.stats.threshold_high, 1);
    }

    #[test]
    fn tolerance_rule_bounds_width() {
        let (_, tree, kernel) = setup(1000, 2, 23);
        let eps = 0.05;
        let bounder = DensityBounder::new(
            &tree,
            &kernel,
            Optimizations {
                threshold_rule: false,
                tolerance_rule: true,
                ..Optimizations::all()
            },
            eps,
        );
        let mut scratch = QueryScratch::new();
        let t = 0.01;
        let b = bounder.bound_density(&[0.2, -0.4], t, t, &mut scratch);
        assert!(
            b.upper - b.lower < eps * t || b.cause == PruneCause::Exhausted,
            "width {} vs ε·t {}",
            b.upper - b.lower,
            eps * t
        );
    }

    #[test]
    fn far_query_is_certain_low_quickly() {
        let (_, tree, kernel) = setup(5000, 2, 29);
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let mut scratch = QueryScratch::new();
        let b = bounder.bound_density(&[50.0, 50.0], 0.001, 0.002, &mut scratch);
        assert_eq!(b.cause, PruneCause::ThresholdLow);
        // Should prune after very few kernel evaluations.
        assert!(
            scratch.stats.kernel_evals < 100,
            "kernel evals {}",
            scratch.stats.kernel_evals
        );
    }

    #[test]
    fn exact_density_helper_matches_naive() {
        let (data, tree, kernel) = setup(300, 2, 31);
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let mut scratch = QueryScratch::new();
        let q = [0.3, 0.7];
        let exact = bounder.exact_density(&q, &mut scratch);
        let naive = naive_density(&data, &kernel, &q);
        assert!((exact - naive).abs() < 1e-12);
    }

    #[test]
    fn relative_tolerance_bound_honors_rtol() {
        let (data, tree, kernel) = setup(1500, 2, 41);
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let mut scratch = QueryScratch::new();
        let mut rng = Rng::seed_from(43);
        for rtol in [0.1, 0.01] {
            for _ in 0..20 {
                let q = [rng.normal(0.0, 1.5), rng.normal(0.0, 1.5)];
                let b = bounder.bound_density_relative(&q, rtol, &mut scratch);
                let exact = naive_density(&data, &kernel, &q);
                // Sandwich plus the advertised relative width.
                assert!(b.lower <= exact * (1.0 + 1e-9) + 1e-300);
                assert!(b.upper >= exact * (1.0 - 1e-9) - 1e-300);
                assert!(
                    b.upper - b.lower <= rtol * b.lower.max(1e-300)
                        || b.cause == PruneCause::Exhausted,
                    "width {} vs rtol·f {}",
                    b.upper - b.lower,
                    rtol * b.lower
                );
                // Midpoint error is within rtol/2 of the exact density.
                assert!(
                    (b.midpoint() - exact).abs() <= rtol * exact + 1e-300,
                    "midpoint {} vs exact {exact} at rtol {rtol}",
                    b.midpoint()
                );
            }
        }
    }

    #[test]
    fn relative_tolerance_coarser_rtol_does_less_work() {
        let (_, tree, kernel) = setup(6000, 2, 47);
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::all(), 0.01);
        let mut s_loose = QueryScratch::new();
        let mut s_tight = QueryScratch::new();
        let q = [0.1, -0.2];
        bounder.bound_density_relative(&q, 0.2, &mut s_loose);
        bounder.bound_density_relative(&q, 0.001, &mut s_tight);
        assert!(
            s_loose.stats.kernel_evals + s_loose.stats.nodes_expanded
                < s_tight.stats.kernel_evals + s_tight.stats.nodes_expanded,
            "loose {:?} vs tight {:?}",
            s_loose.stats,
            s_tight.stats
        );
    }

    #[test]
    fn epanechnikov_compact_support_prunes_hard() {
        let data = gaussian_blob(2000, 2, 37);
        let tree = KdTree::build(&data, 16, SplitRule::TrimmedMidpoint).unwrap();
        let h = scotts_rule(&data, 1.0).unwrap();
        let kernel = Kernel::new(KernelKind::Epanechnikov, h).unwrap();
        let bounder = DensityBounder::new(&tree, &kernel, Optimizations::none(), 0.01);
        let mut scratch = QueryScratch::new();
        // Query far outside all supports: exhausts instantly because
        // zero-bound subtrees are never pushed.
        let b = bounder.bound_density(&[100.0, 100.0], 0.0, f64::INFINITY, &mut scratch);
        assert_eq!(b.cause, PruneCause::Exhausted);
        assert_eq!(b.lower, 0.0);
        assert_eq!(b.upper, 0.0);
        assert_eq!(scratch.stats.kernel_evals, 0);
    }
}
