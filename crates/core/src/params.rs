//! Task parameters (paper Table 1), optimization toggles, and the
//! estimator-backend selection.

use tkdc_common::error::{invalid_param, Result};
use tkdc_index::SplitRule;
use tkdc_kernel::KernelKind;

/// Configuration of the hashing-based estimator backend
/// (Charikar–Siminelakis E2LSH importance sampling).
///
/// The estimator's per-query budget is `tables · samples` kernel
/// evaluations plus `tables · hashes` hash projections; its variance
/// shrinks with both `tables` and `samples`. `bucket_width` is expressed
/// in *scaled* space (coordinates divided by the per-dimension
/// bandwidths), so a width of a few units captures kernel-relevant
/// neighbors regardless of the raw data scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbeParams {
    /// Number of independent hash tables `T` (one unbiased density
    /// estimate per table). Default 32.
    pub tables: usize,
    /// Concatenated hashes per table `k` — bucket collision probability
    /// is `p₁(c)^k`. Default 2.
    pub hashes: usize,
    /// Projection bucket width `w` in scaled space. Default 4.
    pub bucket_width: f64,
    /// Points sampled per table from the query's bucket. Default 8.
    pub samples: usize,
}

impl Default for HbeParams {
    fn default() -> Self {
        Self {
            tables: 32,
            hashes: 2,
            bucket_width: 4.0,
            samples: 8,
        }
    }
}

impl HbeParams {
    fn validate(&self) -> Result<()> {
        if self.tables < 2 {
            // The confidence interval needs a sample variance across
            // table estimates.
            return Err(invalid_param("hbe.tables", "must be at least 2"));
        }
        if self.hashes == 0 || self.hashes > 16 {
            return Err(invalid_param("hbe.hashes", "must be in 1..=16"));
        }
        if !self.bucket_width.is_finite() || self.bucket_width <= 0.0 {
            return Err(invalid_param(
                "hbe.bucket_width",
                "must be positive and finite",
            ));
        }
        if self.samples == 0 {
            return Err(invalid_param("hbe.samples", "must be positive"));
        }
        Ok(())
    }
}

/// Configuration of the random-Fourier-feature estimator backend
/// (Gaussian kernel only).
///
/// The per-query budget is exactly `features` cosine evaluations; the
/// estimator's additive error shrinks as `1/√features`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RffParams {
    /// Number of random Fourier features `D`. Default 2048.
    pub features: usize,
}

impl Default for RffParams {
    fn default() -> Self {
        Self { features: 2048 }
    }
}

impl RffParams {
    fn validate(&self) -> Result<()> {
        // The empirical-Bernstein interval needs a meaningful sample
        // variance over the feature terms; a handful of features would
        // make the variance estimate itself the dominant error.
        if self.features < 16 {
            return Err(invalid_param("rff.features", "must be at least 16"));
        }
        Ok(())
    }
}

/// Which density-estimation backend the classifier routes queries
/// through (see `tkdc::backend`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum BackendSpec {
    /// The paper's certified-bounds dual-tree traversal (the default).
    #[default]
    Tree,
    /// Hashing-based estimator: probabilistic bounds, wins at high `d`.
    Hbe(HbeParams),
    /// Random-Fourier-feature estimator: fixed budget, Gaussian only.
    Rff(RffParams),
}

impl BackendSpec {
    /// Stable lowercase backend name (CLI `--backend` values, serve
    /// stats, bench JSON).
    pub fn name(&self) -> &'static str {
        match self {
            BackendSpec::Tree => "tree",
            BackendSpec::Hbe(_) => "hbe",
            BackendSpec::Rff(_) => "rff",
        }
    }

    fn validate(&self, kernel: KernelKind) -> Result<()> {
        match self {
            BackendSpec::Tree => Ok(()),
            BackendSpec::Hbe(p) => p.validate(),
            BackendSpec::Rff(p) => {
                if kernel != KernelKind::Gaussian {
                    return Err(invalid_param(
                        "backend",
                        "the rff backend supports only the Gaussian kernel",
                    ));
                }
                p.validate()
            }
        }
    }
}

/// Toggles for tKDC's individual optimizations, supporting the paper's
/// cumulative factor analysis (Fig. 12) and lesion analysis (Fig. 16).
///
/// With everything disabled, the traversal still uses the k-d tree but
/// exhausts it (equivalent to an exact tree-based KDE); with only
/// `tolerance_rule` enabled it matches the Gray & Moore / scikit-learn
/// approximation ("nocut"); with everything enabled it is full tKDC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// The threshold pruning rules (Eq. 9) — the core contribution.
    pub threshold_rule: bool,
    /// The tolerance pruning rule (Eq. 8) from prior work.
    pub tolerance_rule: bool,
    /// Trimmed-midpoint ("equi-width") k-d tree splits (§3.7) instead of
    /// median splits.
    pub equiwidth_split: bool,
    /// The bandwidth hypergrid inlier cache (§3.7); auto-disabled when
    /// `d > 4` regardless of this flag, matching the paper.
    pub grid: bool,
}

impl Optimizations {
    /// Full tKDC (the default).
    pub fn all() -> Self {
        Self {
            threshold_rule: true,
            tolerance_rule: true,
            equiwidth_split: true,
            grid: true,
        }
    }

    /// Everything off: exhaustive tree traversal (the Fig. 12 baseline).
    pub fn none() -> Self {
        Self {
            threshold_rule: false,
            tolerance_rule: false,
            equiwidth_split: false,
            grid: false,
        }
    }

    /// The split rule implied by the `equiwidth_split` toggle.
    pub fn split_rule(&self) -> SplitRule {
        if self.equiwidth_split {
            SplitRule::TrimmedMidpoint
        } else {
            SplitRule::Median
        }
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Self::all()
    }
}

/// Constants steering the threshold bootstrap (Algorithm 3). The paper
/// reports `r0 = 200`, `s0 = 20000`, `h_growth = 4`, `h_backoff = 4`,
/// `h_buffer = 1.5` as well-performing defaults; none affect correctness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapParams {
    /// Initial training-subset size.
    pub r0: usize,
    /// Number of query points sampled per bootstrap round.
    pub s0: usize,
    /// Multiplicative growth of the training subset per round.
    pub growth: f64,
    /// Multiplicative relaxation applied to an invalidated bound.
    pub backoff: f64,
    /// Safety margin applied to valid bounds before the next round.
    pub buffer: f64,
    /// Cap on consecutive backoff retries within one round.
    pub max_retries: usize,
}

impl Default for BootstrapParams {
    fn default() -> Self {
        Self {
            r0: 200,
            s0: 20_000,
            growth: 4.0,
            backoff: 4.0,
            buffer: 1.5,
            max_retries: 64,
        }
    }
}

impl BootstrapParams {
    /// Builder-style setter for the initial training-subset size `r0`.
    #[must_use]
    pub fn with_r0(mut self, r0: usize) -> Self {
        self.r0 = r0;
        self
    }

    /// Builder-style setter for the per-round query-sample size `s0`.
    #[must_use]
    pub fn with_s0(mut self, s0: usize) -> Self {
        self.s0 = s0;
        self
    }

    /// Builder-style setter for the subset growth factor.
    #[must_use]
    pub fn with_growth(mut self, growth: f64) -> Self {
        self.growth = growth;
        self
    }

    /// Builder-style setter for the invalid-bound backoff factor.
    #[must_use]
    pub fn with_backoff(mut self, backoff: f64) -> Self {
        self.backoff = backoff;
        self
    }

    /// Builder-style setter for the valid-bound safety buffer.
    #[must_use]
    pub fn with_buffer(mut self, buffer: f64) -> Self {
        self.buffer = buffer;
        self
    }

    /// Builder-style setter for the per-round retry cap.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: usize) -> Self {
        self.max_retries = max_retries;
        self
    }

    fn validate(&self) -> Result<()> {
        if self.r0 == 0 {
            return Err(invalid_param("bootstrap.r0", "must be positive"));
        }
        if self.s0 == 0 {
            return Err(invalid_param("bootstrap.s0", "must be positive"));
        }
        if !self.growth.is_finite() || self.growth <= 1.0 {
            return Err(invalid_param("bootstrap.growth", "must exceed 1"));
        }
        if !self.backoff.is_finite() || self.backoff <= 1.0 {
            return Err(invalid_param("bootstrap.backoff", "must exceed 1"));
        }
        if !self.buffer.is_finite() || self.buffer < 1.0 {
            return Err(invalid_param("bootstrap.buffer", "must be at least 1"));
        }
        Ok(())
    }
}

/// Density classification task parameters (paper Table 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// Classification rate: the fraction of training data expected to fall
    /// below the threshold `t(p)`. Default 0.01.
    pub p: f64,
    /// Multiplicative error tolerance ε around the threshold. Default 0.01.
    pub epsilon: f64,
    /// Acceptable failure probability δ of the threshold bootstrap.
    /// Default 0.01.
    pub delta: f64,
    /// Bandwidth scale factor `b` applied on top of Scott's rule.
    /// Default 1.
    pub bandwidth_factor: f64,
    /// Kernel family; the paper uses Gaussian throughout.
    pub kernel: KernelKind,
    /// k-d tree leaf capacity.
    pub leaf_size: usize,
    /// Optimization toggles.
    pub opts: Optimizations,
    /// Bootstrap constants.
    pub bootstrap: BootstrapParams,
    /// Seed for the bootstrap's sampling (and, for the randomized
    /// backends, hash/feature generation).
    pub seed: u64,
    /// Density-estimation backend the classifier routes through.
    pub backend: BackendSpec,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            p: 0.01,
            epsilon: 0.01,
            delta: 0.01,
            bandwidth_factor: 1.0,
            kernel: KernelKind::Gaussian,
            leaf_size: 32,
            opts: Optimizations::all(),
            bootstrap: BootstrapParams::default(),
            seed: 0xF1D0,
            backend: BackendSpec::Tree,
        }
    }
}

impl Params {
    /// Validates every field's domain.
    pub fn validate(&self) -> Result<()> {
        if !self.p.is_finite() || self.p <= 0.0 || self.p >= 1.0 {
            return Err(invalid_param(
                "p",
                format!("must be in (0,1), got {}", self.p),
            ));
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 || self.epsilon >= 1.0 {
            return Err(invalid_param(
                "epsilon",
                format!("must be in (0,1), got {}", self.epsilon),
            ));
        }
        if !self.delta.is_finite() || self.delta <= 0.0 || self.delta >= 1.0 {
            return Err(invalid_param(
                "delta",
                format!("must be in (0,1), got {}", self.delta),
            ));
        }
        if !self.bandwidth_factor.is_finite() || self.bandwidth_factor <= 0.0 {
            return Err(invalid_param(
                "bandwidth_factor",
                format!("must be positive, got {}", self.bandwidth_factor),
            ));
        }
        if self.leaf_size == 0 {
            return Err(invalid_param("leaf_size", "must be positive"));
        }
        self.backend.validate(self.kernel)?;
        self.bootstrap.validate()
    }

    /// Builder-style setter for `p`.
    #[must_use]
    pub fn with_p(mut self, p: f64) -> Self {
        self.p = p;
        self
    }

    /// Builder-style setter for ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style setter for δ.
    #[must_use]
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Builder-style setter for the bandwidth scale factor `b`.
    #[must_use]
    pub fn with_bandwidth_factor(mut self, b: f64) -> Self {
        self.bandwidth_factor = b;
        self
    }

    /// Builder-style setter for the kernel family.
    #[must_use]
    pub fn with_kernel(mut self, kernel: KernelKind) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builder-style setter for the k-d tree leaf capacity.
    #[must_use]
    pub fn with_leaf_size(mut self, leaf_size: usize) -> Self {
        self.leaf_size = leaf_size;
        self
    }

    /// Builder-style setter for the optimization toggles.
    #[must_use]
    pub fn with_opts(mut self, opts: Optimizations) -> Self {
        self.opts = opts;
        self
    }

    /// Builder-style setter for the bootstrap constants.
    #[must_use]
    pub fn with_bootstrap(mut self, bootstrap: BootstrapParams) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    /// Builder-style setter for the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the estimator backend.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let p = Params::default();
        assert_eq!(p.p, 0.01);
        assert_eq!(p.epsilon, 0.01);
        assert_eq!(p.delta, 0.01);
        assert_eq!(p.bandwidth_factor, 1.0);
        assert_eq!(p.kernel, KernelKind::Gaussian);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn bootstrap_defaults_match_paper() {
        let b = BootstrapParams::default();
        assert_eq!(b.r0, 200);
        assert_eq!(b.s0, 20_000);
        assert_eq!(b.growth, 4.0);
        assert_eq!(b.backoff, 4.0);
        assert_eq!(b.buffer, 1.5);
    }

    #[test]
    fn validation_rejects_bad_domains() {
        assert!(Params::default().with_p(0.0).validate().is_err());
        assert!(Params::default().with_p(1.0).validate().is_err());
        assert!(Params::default().with_epsilon(0.0).validate().is_err());
        assert!(Params::default()
            .with_bandwidth_factor(-1.0)
            .validate()
            .is_err());
        let p = Params {
            delta: 2.0,
            ..Params::default()
        };
        assert!(p.validate().is_err());
        let p = Params {
            leaf_size: 0,
            ..Params::default()
        };
        assert!(p.validate().is_err());
        let mut p = Params::default();
        p.bootstrap.growth = 1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn backend_spec_validation() {
        assert_eq!(Params::default().backend, BackendSpec::Tree);
        assert_eq!(BackendSpec::default().name(), "tree");
        let hbe = Params::default().with_backend(BackendSpec::Hbe(HbeParams::default()));
        assert!(hbe.validate().is_ok());
        assert_eq!(hbe.backend.name(), "hbe");
        // The CI needs a variance across tables: one table is invalid.
        let bad = Params::default().with_backend(BackendSpec::Hbe(HbeParams {
            tables: 1,
            ..HbeParams::default()
        }));
        assert!(bad.validate().is_err());
        let bad = Params::default().with_backend(BackendSpec::Hbe(HbeParams {
            bucket_width: 0.0,
            ..HbeParams::default()
        }));
        assert!(bad.validate().is_err());
        let rff = Params::default().with_backend(BackendSpec::Rff(RffParams::default()));
        assert!(rff.validate().is_ok());
        assert_eq!(rff.backend.name(), "rff");
        // RFF is Gaussian-only.
        let bad = rff.with_kernel(KernelKind::Epanechnikov);
        assert!(bad.validate().is_err());
        let bad = Params::default().with_backend(BackendSpec::Rff(RffParams { features: 4 }));
        assert!(bad.validate().is_err());
    }

    #[test]
    fn optimization_presets() {
        assert_eq!(Optimizations::default(), Optimizations::all());
        let none = Optimizations::none();
        assert!(!none.threshold_rule && !none.grid);
        assert_eq!(
            Optimizations::all().split_rule(),
            SplitRule::TrimmedMidpoint
        );
        assert_eq!(Optimizations::none().split_rule(), SplitRule::Median);
    }

    #[test]
    fn builders_chain() {
        let p = Params::default()
            .with_p(0.05)
            .with_epsilon(0.1)
            .with_delta(0.02)
            .with_bandwidth_factor(2.0)
            .with_kernel(KernelKind::Epanechnikov)
            .with_leaf_size(64)
            .with_seed(9)
            .with_opts(Optimizations::none())
            .with_bootstrap(
                BootstrapParams::default()
                    .with_r0(100)
                    .with_s0(5000)
                    .with_growth(3.0)
                    .with_backoff(2.0)
                    .with_buffer(1.25)
                    .with_max_retries(16),
            );
        assert_eq!(p.p, 0.05);
        assert_eq!(p.epsilon, 0.1);
        assert_eq!(p.delta, 0.02);
        assert_eq!(p.bandwidth_factor, 2.0);
        assert_eq!(p.kernel, KernelKind::Epanechnikov);
        assert_eq!(p.leaf_size, 64);
        assert_eq!(p.seed, 9);
        assert_eq!(p.opts, Optimizations::none());
        assert_eq!(p.bootstrap.r0, 100);
        assert_eq!(p.bootstrap.s0, 5000);
        assert_eq!(p.bootstrap.growth, 3.0);
        assert_eq!(p.bootstrap.backoff, 2.0);
        assert_eq!(p.bootstrap.buffer, 1.25);
        assert_eq!(p.bootstrap.max_retries, 16);
        assert!(p.validate().is_ok());
    }
}
