//! Model persistence: save a fitted [`Classifier`] to a compact binary
//! file and load it back without retraining.
//!
//! Training cost is dominated by the threshold bootstrap plus the
//! whole-dataset density pass, so production deployments want to fit
//! once and serve many query sessions. The format is a simple
//! little-endian binary layout with a magic/version header — no external
//! serialization dependency.
//!
//! Persisted: parameters, fitted threshold (and its bootstrap bounds),
//! kernel, spatial index (with its reordered points), the grid cache,
//! and — since format version 2 — per-point weights plus the coreset's
//! certified error ε for weighted (coreset-backed) models. Not
//! persisted: training diagnostics (`FitReport` bootstrap traces and
//! traversal statistics), which load back as empty.
//!
//! Version-2 files append the weighted tail *after* the complete
//! version-1 layout, so every version-1 field keeps its byte offset;
//! version-1 files still load (with unit weights and ε = 0).
//!
//! Version-3 files insert a one-byte backend tag right after the
//! version field (`0` = tree, `1` = hbe, `2` = rff). Tag 0 keeps the
//! complete version-2 layout after the tag. Tags 1 and 2 persist the
//! estimator's parameters plus its payload — points and weights for
//! HBE (hash tables rebuild deterministically from the seed), the
//! coefficient sketch for RFF (the feature bank regenerates from the
//! seed). Version-1/2 files carry no tag and load as tree models.

use crate::backend::{BackendImpl, DensityBackend};
use crate::classifier::Classifier;
use crate::params::{BackendSpec, BootstrapParams, HbeParams, Optimizations, Params, RffParams};
use crate::threshold::ThresholdBounds;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use tkdc_common::error::{format_error, Error, Result};
use tkdc_index::{BandwidthGrid, GridRaw, KdTree, KdTreeRaw};
use tkdc_kernel::{Kernel, KernelKind};

const MAGIC: &[u8; 4] = b"TKDC";
const VERSION: u32 = 3;
/// Oldest format version this build still reads.
const MIN_VERSION: u32 = 1;

/// The current model-file format version, exposed so compatibility
/// tooling (and negative tests) can construct version probes without
/// hardcoding the constant.
pub const FORMAT_VERSION: u32 = VERSION;

/// Writer with little-endian primitive helpers.
struct Enc<W: Write>(W);

impl<W: Write> Enc<W> {
    fn u32(&mut self, v: u32) -> Result<()> {
        self.0.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn u64(&mut self, v: u64) -> Result<()> {
        self.0.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn u128(&mut self, v: u128) -> Result<()> {
        self.0.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn f64(&mut self, v: f64) -> Result<()> {
        self.0.write_all(&v.to_le_bytes())?;
        Ok(())
    }
    fn f64s(&mut self, vs: &[f64]) -> Result<()> {
        self.u64(vs.len() as u64)?; // CAST: usize -> u64 is lossless
        for &v in vs {
            self.f64(v)?;
        }
        Ok(())
    }
    fn byte(&mut self, v: u8) -> Result<()> {
        self.0.write_all(&[v])?;
        Ok(())
    }
}

/// Reader with little-endian primitive helpers.
struct Dec<R: Read>(R);

impl<R: Read> Dec<R> {
    fn u32(&mut self) -> Result<u32> {
        let mut b = [0u8; 4];
        self.0.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
    fn u64(&mut self) -> Result<u64> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
    fn u128(&mut self) -> Result<u128> {
        let mut b = [0u8; 16];
        self.0.read_exact(&mut b)?;
        Ok(u128::from_le_bytes(b))
    }
    fn f64(&mut self) -> Result<f64> {
        let mut b = [0u8; 8];
        self.0.read_exact(&mut b)?;
        Ok(f64::from_le_bytes(b))
    }
    fn f64s(&mut self) -> Result<Vec<f64>> {
        let n = self.len_checked()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f64()?);
        }
        Ok(out)
    }
    fn byte(&mut self) -> Result<u8> {
        let mut b = [0u8; 1];
        self.0.read_exact(&mut b)?;
        Ok(b[0])
    }
    /// Length prefix with a sanity cap so corrupt files fail fast
    /// instead of attempting enormous allocations.
    fn len_checked(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > (1 << 40) {
            return Err(Error::Numeric(format!("implausible length field {n}")));
        }
        Ok(n as usize) // CAST: n <= 2^40 checked above
    }
}

/// Serializes a fitted classifier to any writer.
pub fn save_model_to(clf: &Classifier, writer: impl Write) -> Result<()> {
    let mut w = Enc(BufWriter::new(writer));
    w.0.write_all(MAGIC)?;
    w.u32(VERSION)?;
    let backend = clf.backend_impl();
    w.byte(match backend {
        BackendImpl::Tree(_) => 0,
        BackendImpl::Hbe(_) => 1,
        BackendImpl::Rff(_) => 2,
    })?;

    // Parameters.
    let p = clf.params();
    w.f64(p.p)?;
    w.f64(p.epsilon)?;
    w.f64(p.delta)?;
    w.f64(p.bandwidth_factor)?;
    w.byte(match p.kernel {
        KernelKind::Gaussian => 0,
        KernelKind::Epanechnikov => 1,
    })?;
    w.u64(p.leaf_size as u64)?; // CAST: usize -> u64 is lossless
    let opts = p.opts;
    w.byte(
        (opts.threshold_rule as u8) // CAST: bool is 0 or 1
            | (opts.tolerance_rule as u8) << 1 // CAST: bool is 0 or 1
            | (opts.equiwidth_split as u8) << 2 // CAST: bool is 0 or 1
            | (opts.grid as u8) << 3, // CAST: bool is 0 or 1
    )?;
    w.u64(p.seed)?;
    w.u64(p.bootstrap.r0 as u64)?; // CAST: usize -> u64 is lossless
    w.u64(p.bootstrap.s0 as u64)?; // CAST: usize -> u64 is lossless
    w.f64(p.bootstrap.growth)?;
    w.f64(p.bootstrap.backoff)?;
    w.f64(p.bootstrap.buffer)?;
    w.u64(p.bootstrap.max_retries as u64)?; // CAST: usize -> u64 is lossless

    // Backend-specific parameters (nothing for the tree).
    match &p.backend {
        BackendSpec::Tree => {}
        BackendSpec::Hbe(hp) => {
            w.u64(hp.tables as u64)?; // CAST: usize -> u64 is lossless
            w.u64(hp.hashes as u64)?; // CAST: usize -> u64 is lossless
            w.f64(hp.bucket_width)?;
            w.u64(hp.samples as u64)?; // CAST: usize -> u64 is lossless
        }
        BackendSpec::Rff(rp) => {
            w.u64(rp.features as u64)?; // CAST: usize -> u64 is lossless
        }
    }

    // Threshold.
    w.f64(clf.threshold())?;
    let b = clf.fit_report().threshold_bounds;
    w.f64(b.lower)?;
    w.f64(b.upper)?;

    // Kernel bandwidths (kind already encoded in params).
    w.f64s(clf.kernel().bandwidths())?;

    match backend {
        BackendImpl::Tree(tb) => {
            // Tree.
            let raw = tb.tree().to_raw_parts();
            w.u64(raw.dim as u64)?; // CAST: usize -> u64 is lossless
            w.u64(raw.leaf_size as u64)?; // CAST: usize -> u64 is lossless
            w.f64s(&raw.points)?;
            w.u64(raw.nodes.len() as u64)?; // CAST: usize -> u64 is lossless
            for t in &raw.nodes {
                for &v in t {
                    w.u32(v)?;
                }
            }
            w.f64s(&raw.node_lo)?;
            w.f64s(&raw.node_hi)?;

            // Grid (optional).
            match clf.grid_raw() {
                None => w.byte(0)?,
                Some(g) => {
                    w.byte(1)?;
                    w.f64s(&g.cell)?;
                    w.u64(g.n_points as u64)?; // CAST: usize -> u64 is lossless
                    w.u64(g.entries.len() as u64)?; // CAST: usize -> u64 is lossless
                    for &(k, c) in &g.entries {
                        w.u128(k)?;
                        w.u32(c)?;
                    }
                }
            }
            // Weighted tail (format v2): weights + coreset ε, appended
            // after the complete v1 layout so every earlier field keeps
            // its byte offset.
            match tb.tree().weights() {
                None => w.byte(0)?,
                Some(ws) => {
                    w.byte(1)?;
                    w.f64s(ws)?;
                }
            }
            w.f64(clf.coreset_eps())?;
        }
        BackendImpl::Hbe(hb) => {
            // Points row-major; the hash tables rebuild deterministically
            // from the model seed on load, so they are not persisted.
            let pts = hb.points();
            w.u64(pts.rows() as u64)?; // CAST: usize -> u64 is lossless
            w.u64(pts.cols() as u64)?; // CAST: usize -> u64 is lossless
            for &v in pts.as_slice() {
                w.f64(v)?;
            }
            match hb.weights() {
                None => w.byte(0)?,
                Some(ws) => {
                    w.byte(1)?;
                    w.f64s(ws)?;
                }
            }
            w.f64(clf.coreset_eps())?;
        }
        BackendImpl::Rff(rb) => {
            // The feature bank regenerates from the seed; only the
            // coefficient sketch and its normalization persist.
            w.f64s(rb.coef())?;
            w.u64(rb.n_train() as u64)?; // CAST: usize -> u64 is lossless
            w.f64(rb.total_mass())?;
            w.f64(clf.coreset_eps())?;
        }
    }

    w.0.flush()?;
    Ok(())
}

/// Serializes a fitted classifier to a file.
pub fn save_model(clf: &Classifier, path: impl AsRef<Path>) -> Result<()> {
    save_model_to(clf, std::fs::File::create(path)?)
}

/// Loads a classifier from any reader.
pub fn load_model_from(reader: impl Read) -> Result<Classifier> {
    let mut r = Dec(BufReader::new(reader));
    let mut magic = [0u8; 4];
    r.0.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(format_error(format!(
            "not a tKDC model file (bad magic {magic:02x?}, expected {MAGIC:02x?})"
        )));
    }
    let version = r.u32()?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(format_error(format!(
            "unsupported model format version {version} (this build reads versions \
             {MIN_VERSION} through {VERSION}); re-save the model with a matching tkdc release"
        )));
    }
    // Backend tag (format v3); earlier versions predate the trait and
    // are always tree models.
    let backend_tag = if version >= 3 { r.byte()? } else { 0 };
    if backend_tag > 2 {
        return Err(format_error(format!("unknown backend tag {backend_tag}")));
    }

    let p = r.f64()?;
    let epsilon = r.f64()?;
    let delta = r.f64()?;
    let bandwidth_factor = r.f64()?;
    let kernel_kind = match r.byte()? {
        0 => KernelKind::Gaussian,
        1 => KernelKind::Epanechnikov,
        other => {
            return Err(Error::Numeric(format!("unknown kernel kind {other}")));
        }
    };
    let leaf_size = r.u64()? as usize; // CAST: u64 -> usize is lossless on 64-bit targets
    let opt_bits = r.byte()?;
    let opts = Optimizations {
        threshold_rule: opt_bits & 1 != 0,
        tolerance_rule: opt_bits & 2 != 0,
        equiwidth_split: opt_bits & 4 != 0,
        grid: opt_bits & 8 != 0,
    };
    let seed = r.u64()?;
    let bootstrap = BootstrapParams {
        r0: r.u64()? as usize, // CAST: u64 -> usize is lossless on 64-bit targets
        s0: r.u64()? as usize, // CAST: u64 -> usize is lossless on 64-bit targets
        growth: r.f64()?,
        backoff: r.f64()?,
        buffer: r.f64()?,
        max_retries: r.u64()? as usize, // CAST: u64 -> usize is lossless on 64-bit targets
    };
    let backend_spec = match backend_tag {
        0 => BackendSpec::Tree,
        1 => BackendSpec::Hbe(HbeParams {
            tables: r.u64()? as usize, // CAST: u64 -> usize is lossless on 64-bit targets
            hashes: r.u64()? as usize, // CAST: u64 -> usize is lossless on 64-bit targets
            bucket_width: r.f64()?,
            samples: r.u64()? as usize, // CAST: u64 -> usize is lossless on 64-bit targets
        }),
        _ => BackendSpec::Rff(RffParams {
            features: r.u64()? as usize, // CAST: u64 -> usize is lossless on 64-bit targets
        }),
    };
    let params = Params {
        p,
        epsilon,
        delta,
        bandwidth_factor,
        kernel: kernel_kind,
        leaf_size,
        opts,
        bootstrap,
        seed,
        backend: backend_spec,
    };
    params.validate()?;

    let threshold = r.f64()?;
    let bounds = ThresholdBounds {
        lower: r.f64()?,
        upper: r.f64()?,
    };
    if !threshold.is_finite() || threshold < 0.0 || !bounds.lower.is_finite() {
        return Err(Error::Numeric("corrupt threshold fields".into()));
    }

    let bandwidths = r.f64s()?;
    let kernel = Kernel::new(kernel_kind, bandwidths)?;

    match backend_tag {
        1 => return load_hbe_payload(&mut r, params, kernel, threshold, bounds),
        2 => return load_rff_payload(&mut r, params, kernel, threshold, bounds),
        _ => {}
    }

    let dim = r.u64()? as usize; // CAST: u64 -> usize is lossless on 64-bit targets
    let tree_leaf = r.u64()? as usize; // CAST: u64 -> usize is lossless on 64-bit targets
    let points = r.f64s()?;
    let n_nodes = r.len_checked()?;
    let mut nodes = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        nodes.push([r.u32()?, r.u32()?, r.u32()?, r.u32()?]);
    }
    let node_lo = r.f64s()?;
    let node_hi = r.f64s()?;

    let grid = match r.byte()? {
        0 => None,
        1 => {
            let cell = r.f64s()?;
            let n_points = r.u64()? as usize; // CAST: u64 -> usize is lossless on 64-bit targets
            let n_entries = r.len_checked()?;
            let mut entries = Vec::with_capacity(n_entries);
            for _ in 0..n_entries {
                let k = r.u128()?;
                let c = r.u32()?;
                entries.push((k, c));
            }
            Some(BandwidthGrid::from_raw_parts(GridRaw {
                cell,
                entries,
                n_points,
            })?)
        }
        other => {
            return Err(Error::Numeric(format!("bad grid flag {other}")));
        }
    };

    // Weighted tail (format v2). Truncation inside this section is a
    // *format* problem of the file, not an environment I/O failure, so
    // the raw `UnexpectedEof` is mapped to a named parse error.
    let in_weights_section = |e: Error| match e {
        Error::Io(_) => format_error("model file truncated in weights section"),
        other => other,
    };
    let (weights, coreset_eps) = if version >= 2 {
        let flag = r.byte().map_err(in_weights_section)?;
        let weights = match flag {
            0 => Vec::new(),
            1 => r.f64s().map_err(in_weights_section)?,
            other => {
                return Err(format_error(format!("bad weighted flag {other}")));
            }
        };
        let eps = r.f64().map_err(in_weights_section)?;
        if !eps.is_finite() || eps < 0.0 {
            return Err(format_error(format!("corrupt coreset epsilon {eps}")));
        }
        (weights, eps)
    } else {
        // Version-1 files predate weighted models: unit weights, no fold.
        (Vec::new(), 0.0)
    };

    let tree = KdTree::from_raw_parts(KdTreeRaw {
        dim,
        leaf_size: tree_leaf,
        points,
        nodes,
        node_lo,
        node_hi,
        weights,
    })?;
    if kernel.dim() != tree.dim() {
        return Err(Error::DimensionMismatch {
            expected: tree.dim(),
            actual: kernel.dim(),
        });
    }

    Classifier::from_loaded_parts(params, tree, kernel, grid, threshold, bounds, coreset_eps)
}

/// HBE payload: points (row-major), optional weights, coreset ε.
fn load_hbe_payload(
    r: &mut Dec<impl Read>,
    params: Params,
    kernel: Kernel,
    threshold: f64,
    bounds: ThresholdBounds,
) -> Result<Classifier> {
    let rows = r.len_checked()?;
    let cols = r.len_checked()?;
    let total = rows
        .checked_mul(cols)
        .ok_or_else(|| format_error("implausible point matrix shape"))?;
    if total > (1 << 40) {
        return Err(format_error("implausible point matrix shape"));
    }
    let mut data = Vec::with_capacity(total);
    for _ in 0..total {
        data.push(r.f64()?);
    }
    let points = tkdc_common::Matrix::from_vec(data, rows, cols)?;
    let weights = match r.byte()? {
        0 => None,
        1 => Some(r.f64s()?),
        other => {
            return Err(format_error(format!("bad weighted flag {other}")));
        }
    };
    let coreset_eps = r.f64()?;
    Classifier::from_loaded_hbe(
        params,
        kernel,
        points,
        weights,
        threshold,
        bounds,
        coreset_eps,
    )
}

/// RFF payload: coefficient sketch, training count, total mass, ε.
fn load_rff_payload(
    r: &mut Dec<impl Read>,
    params: Params,
    kernel: Kernel,
    threshold: f64,
    bounds: ThresholdBounds,
) -> Result<Classifier> {
    let coef = r.f64s()?;
    let n = r.u64()? as usize; // CAST: u64 -> usize is lossless on 64-bit targets
    let total_mass = r.f64()?;
    let coreset_eps = r.f64()?;
    Classifier::from_loaded_rff(
        params,
        kernel,
        coef,
        n,
        total_mass,
        threshold,
        bounds,
        coreset_eps,
    )
}

/// Loads a classifier from a file.
pub fn load_model(path: impl AsRef<Path>) -> Result<Classifier> {
    load_model_from(std::fs::File::open(path)?)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use crate::classifier::Label;
    use tkdc_common::{Matrix, Rng};

    fn blob(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 1.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    #[test]
    fn round_trip_preserves_classification() {
        let data = blob(2000, 2, 777);
        let clf = Classifier::fit(&data, &Params::default().with_seed(5)).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        let loaded = load_model_from(buf.as_slice()).unwrap();

        assert_eq!(loaded.threshold(), clf.threshold());
        assert_eq!(loaded.n_train(), clf.n_train());
        assert_eq!(loaded.grid_enabled(), clf.grid_enabled());
        assert_eq!(loaded.kernel().bandwidths(), clf.kernel().bandwidths());
        // Identical labels on every training point.
        use crate::classifier::ExecPolicy;
        let (a, _) = clf.classify_batch_with(&data, ExecPolicy::Serial).unwrap();
        let (b, _) = loaded
            .classify_batch_with(&data, ExecPolicy::Serial)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn round_trip_without_grid() {
        let data = blob(800, 6, 888); // d > 4: no grid
        let clf = Classifier::fit(&data, &Params::default().with_seed(9)).unwrap();
        assert!(!clf.grid_enabled());
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        let loaded = load_model_from(buf.as_slice()).unwrap();
        assert!(!loaded.grid_enabled());
        assert_eq!(
            loaded.classify(&[0.0; 6]).unwrap(),
            clf.classify(&[0.0; 6]).unwrap()
        );
    }

    #[test]
    fn file_round_trip() {
        let data = blob(500, 2, 999);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let path = std::env::temp_dir().join("tkdc_model_io_test.tkdc");
        save_model(&clf, &path).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.classify(&[0.0, 0.0]).unwrap(), Label::High);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(load_model_from(&b"NOPE"[..]).is_err());
        assert!(load_model_from(&b"TK"[..]).is_err());
        // Valid header then truncation.
        let data = blob(300, 2, 31);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_model_from(buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        assert!(load_model_from(buf.as_slice()).is_err());
    }

    #[test]
    fn weighted_round_trip_preserves_weights_and_eps() {
        let data = blob(600, 2, 4040);
        let mut rng = Rng::seed_from(11);
        let weights: Vec<f64> = (0..data.rows())
            .map(|_| 1.0 + 3.0 * rng.next_f64())
            .collect();
        let eps_c = 2.5e-3;
        let clf = Classifier::fit_weighted(&data, &weights, eps_c, &Params::default().with_seed(3))
            .unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        let loaded = load_model_from(buf.as_slice()).unwrap();

        assert_eq!(loaded.threshold().to_bits(), clf.threshold().to_bits());
        assert_eq!(loaded.coreset_eps().to_bits(), clf.coreset_eps().to_bits());
        assert!(loaded.tree().unwrap().is_weighted());
        // Bit-identical weights in tree order, and identical node masses.
        let a = clf.tree().unwrap().weights().unwrap();
        let b = loaded.tree().unwrap().weights().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(
            clf.tree().unwrap().total_mass().to_bits(),
            loaded.tree().unwrap().total_mass().to_bits()
        );
        // Labels (including Unknown) agree everywhere.
        use crate::classifier::ExecPolicy;
        let queries = blob(150, 2, 4141);
        let (x, _) = clf
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        let (y, _) = loaded
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn v1_unweighted_file_loads_with_unit_weights() {
        // A version-1 file is the v3 byte stream minus the backend tag
        // byte and the 9-byte weighted tail (flag byte + coreset-ε f64),
        // with the version field rewritten — v1 predates all three.
        let data = blob(400, 2, 2020);
        let clf = Classifier::fit(&data, &Params::default().with_seed(5)).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        buf.remove(8); // the v3 backend tag
        buf.truncate(buf.len() - 9);
        buf[4..8].copy_from_slice(&1u32.to_le_bytes());

        let loaded = load_model_from(buf.as_slice()).unwrap();
        // Unit weights: unweighted representation, masses equal counts.
        assert!(!loaded.tree().unwrap().is_weighted());
        assert!(loaded.tree().unwrap().weights().is_none());
        assert_eq!(loaded.tree().unwrap().total_mass(), loaded.n_train() as f64);
        assert_eq!(loaded.coreset_eps(), 0.0);
        assert_eq!(loaded.threshold().to_bits(), clf.threshold().to_bits());
        assert_eq!(
            loaded.classify(&[0.0, 0.0]).unwrap(),
            clf.classify(&[0.0, 0.0]).unwrap()
        );
    }

    #[test]
    fn truncated_weights_section_is_a_named_parse_error() {
        let data = blob(300, 2, 3030);
        let weights = vec![2.0; data.rows()];
        let clf = Classifier::fit_weighted(&data, &weights, 1e-3, &Params::default()).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        // Cut inside the weights array (the tail ends with the 8-byte ε,
        // preceded by 8·n weight bytes), and again with only ε missing.
        for cut in [buf.len() - 12, buf.len() - 8] {
            let err = load_model_from(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, Error::Parse { line: 0, .. }),
                "expected a named Parse error, got {err:?}"
            );
            assert!(
                err.to_string().contains("weights section"),
                "unhelpful message: {err}"
            );
        }
    }

    #[test]
    fn rejects_corrupt_length_fields() {
        let data = blob(300, 2, 33);
        let clf = Classifier::fit(&data, &Params::default()).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        // Stomp the bandwidth-vector length prefix (fixed offset by
        // format layout: 8 header + 1 backend tag + 98 params + 24
        // threshold fields).
        let off = 131;
        for b in &mut buf[off..off + 8] {
            *b = 0xFF;
        }
        assert!(load_model_from(buf.as_slice()).is_err());
        // And NaN-stomping the threshold itself must also be caught.
        let mut buf2 = Vec::new();
        save_model_to(&clf, &mut buf2).unwrap();
        for b in &mut buf2[115..123] {
            *b = 0xFF;
        }
        assert!(load_model_from(buf2.as_slice()).is_err());
    }

    #[test]
    fn hbe_round_trip_is_bit_identical() {
        use crate::classifier::ExecPolicy;
        use crate::params::{BackendSpec, HbeParams};
        let data = blob(800, 3, 5050);
        let params = Params::default()
            .with_seed(7)
            .with_backend(BackendSpec::Hbe(HbeParams::default()));
        let clf = Classifier::fit(&data, &params).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        let loaded = load_model_from(buf.as_slice()).unwrap();

        assert_eq!(loaded.backend_name(), "hbe");
        assert_eq!(loaded.threshold().to_bits(), clf.threshold().to_bits());
        assert_eq!(loaded.n_train(), clf.n_train());
        assert_eq!(loaded.params().backend, clf.params().backend);
        assert!(loaded.tree().is_none());
        // Per-query determinism + seed-rebuilt tables ⇒ identical labels
        // and identical merged statistics.
        let queries = blob(200, 3, 5151);
        let (a, sa) = clf
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        let (b, sb) = loaded
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn hbe_weighted_round_trip_preserves_weights() {
        use crate::params::{BackendSpec, HbeParams};
        let data = blob(400, 2, 5252);
        let mut rng = Rng::seed_from(13);
        let weights: Vec<f64> = (0..data.rows()).map(|_| 1.0 + rng.next_f64()).collect();
        let params = Params::default().with_backend(BackendSpec::Hbe(HbeParams::default()));
        let clf = Classifier::fit_weighted(&data, &weights, 1e-3, &params).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        let loaded = load_model_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.coreset_eps().to_bits(), clf.coreset_eps().to_bits());
        assert_eq!(loaded.threshold().to_bits(), clf.threshold().to_bits());
        let mut s1 = crate::qstats::QueryScratch::new();
        let mut s2 = crate::qstats::QueryScratch::new();
        let b1 = clf.bound_density_with(&[0.0, 0.0], &mut s1).unwrap();
        let b2 = loaded.bound_density_with(&[0.0, 0.0], &mut s2).unwrap();
        assert_eq!(b1.lower.to_bits(), b2.lower.to_bits());
        assert_eq!(b1.upper.to_bits(), b2.upper.to_bits());
    }

    #[test]
    fn rff_round_trip_is_bit_identical() {
        use crate::classifier::ExecPolicy;
        use crate::params::{BackendSpec, RffParams};
        let data = blob(800, 3, 5353);
        let params = Params::default()
            .with_seed(11)
            .with_backend(BackendSpec::Rff(RffParams::default()));
        let clf = Classifier::fit(&data, &params).unwrap();
        let mut buf = Vec::new();
        save_model_to(&clf, &mut buf).unwrap();
        let loaded = load_model_from(buf.as_slice()).unwrap();

        assert_eq!(loaded.backend_name(), "rff");
        assert_eq!(loaded.threshold().to_bits(), clf.threshold().to_bits());
        assert_eq!(loaded.n_train(), clf.n_train());
        assert!(loaded.tree().is_none());
        // The sketch persists verbatim and the feature bank regenerates
        // from the seed, so estimates are bit-identical.
        let queries = blob(200, 3, 5454);
        let (a, sa) = clf
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        let (b, sb) = loaded
            .classify_batch_with(&queries, ExecPolicy::Serial)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        // Truncating inside the estimator payload fails cleanly.
        buf.truncate(buf.len() - 4);
        assert!(load_model_from(buf.as_slice()).is_err());
    }
}
