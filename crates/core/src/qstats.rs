//! Instrumentation for the pruned traversal.
//!
//! The paper's factor analysis (Fig. 12) and lesion analysis (Fig. 16)
//! report both throughput and the number of *kernel evaluations per
//! query*; this module records those counters plus which rule terminated
//! each traversal, so the benchmark harness can regenerate both panels.

use crate::trace::Tracer;
use std::collections::BinaryHeap;

/// Why a `BoundDensity` traversal stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneCause {
    /// Lower bound rose above the upper threshold: certain HIGH.
    ThresholdHigh,
    /// Upper bound fell below the lower threshold: certain LOW.
    ThresholdLow,
    /// Bounds converged within `ε·t_l` (Eq. 8).
    Tolerance,
    /// The k-d tree was exhausted: the density is exact.
    Exhausted,
    /// The grid cache classified the point before any traversal.
    Grid,
    /// A randomized backend (HBE/RFF) answered with a fixed-budget
    /// probabilistic estimate — the bounds are *not* certified.
    Estimated,
}

impl PruneCause {
    /// Stable lowercase name used by trace records (`tkdc-trace/v1`) and
    /// metric labels. This is the dependency boundary with `tkdc-obs`:
    /// the observability layer sees causes only as these strings.
    pub fn as_str(&self) -> &'static str {
        match self {
            PruneCause::ThresholdHigh => "threshold_high",
            PruneCause::ThresholdLow => "threshold_low",
            PruneCause::Tolerance => "tolerance",
            PruneCause::Exhausted => "exhausted",
            PruneCause::Grid => "grid",
            PruneCause::Estimated => "estimated",
        }
    }
}

/// Aggregate statistics over one or more queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries recorded.
    pub queries: u64,
    /// Individual point-kernel evaluations (leaf scans).
    pub kernel_evals: u64,
    /// Interior/leaf nodes popped from the priority queue.
    pub nodes_expanded: u64,
    /// Bounding-box kernel bound evaluations (two per child push plus the
    /// root).
    pub bound_evals: u64,
    /// Queries answered purely by the grid cache.
    pub grid_prunes: u64,
    /// Queries terminated by the HIGH threshold rule.
    pub threshold_high: u64,
    /// Queries terminated by the LOW threshold rule.
    pub threshold_low: u64,
    /// Queries terminated by the tolerance rule.
    pub tolerance: u64,
    /// Queries that exhausted the index (exact densities).
    pub exhausted: u64,
    /// Queries answered by a randomized backend's fixed-budget estimate.
    pub estimated: u64,
}

impl QueryStats {
    /// Records a traversal outcome.
    pub fn record_outcome(&mut self, cause: PruneCause) {
        self.queries += 1;
        match cause {
            PruneCause::ThresholdHigh => self.threshold_high += 1,
            PruneCause::ThresholdLow => self.threshold_low += 1,
            PruneCause::Tolerance => self.tolerance += 1,
            PruneCause::Exhausted => self.exhausted += 1,
            PruneCause::Grid => self.grid_prunes += 1,
            PruneCause::Estimated => self.estimated += 1,
        }
    }

    /// Merges another stats block into this one (used when gathering
    /// per-thread scratches after a parallel batch).
    pub fn merge(&mut self, other: &QueryStats) {
        self.queries += other.queries;
        self.kernel_evals += other.kernel_evals;
        self.nodes_expanded += other.nodes_expanded;
        self.bound_evals += other.bound_evals;
        self.grid_prunes += other.grid_prunes;
        self.threshold_high += other.threshold_high;
        self.threshold_low += other.threshold_low;
        self.tolerance += other.tolerance;
        self.exhausted += other.exhausted;
        self.estimated += other.estimated;
    }

    /// Every counter as a `(stable name, value)` pair, in declaration
    /// order — the single source of truth for reporting these counters
    /// through a metrics registry or a JSON renderer. Adding a field to
    /// `QueryStats` must extend this list (the merge proptest counts on
    /// it covering everything).
    pub fn named_counters(&self) -> [(&'static str, u64); 10] {
        [
            ("queries", self.queries),
            ("kernel_evals", self.kernel_evals),
            ("nodes_expanded", self.nodes_expanded),
            ("bound_evals", self.bound_evals),
            ("grid_prunes", self.grid_prunes),
            ("threshold_high", self.threshold_high),
            ("threshold_low", self.threshold_low),
            ("tolerance", self.tolerance),
            ("exhausted", self.exhausted),
            ("estimated", self.estimated),
        ]
    }

    /// Mean point-kernel evaluations per recorded query.
    pub fn kernels_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.kernel_evals as f64 / self.queries as f64
        }
    }
}

/// Priority-queue entry for the traversal: a node plus the bound
/// contribution it currently adds to the running totals (so popping it
/// can subtract exactly what was added).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeapEntry {
    /// Refinement priority `n_r (K(d_min) − K(d_max))`.
    pub priority: f64,
    /// Arena node id.
    pub node: u32,
    /// This node's current lower-bound contribution.
    pub w_lo: f64,
    /// This node's current upper-bound contribution.
    pub w_hi: f64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority.total_cmp(&other.priority)
    }
}

/// Reusable per-thread workspace for queries: the traversal priority
/// queue plus accumulated statistics. Reusing the heap across queries
/// avoids an allocation per classification (the hot loop of the whole
/// system).
#[derive(Debug, Default)]
pub struct QueryScratch {
    pub(crate) heap: BinaryHeap<HeapEntry>,
    /// Statistics accumulated by every query run through this scratch.
    pub stats: QueryStats,
    /// Per-query trace recorder (inert by default; see
    /// [`crate::trace::Tracer`]).
    pub tracer: Tracer,
    /// When set, the traversal accumulates wall time spent in leaf
    /// kernel sums into [`Self::leaf_ns`]. Off by default — timing is
    /// nondeterministic, so it must never ride in [`QueryStats`]
    /// (whose thread-invariance tests assert exact equality); spanned
    /// batch drivers turn it on and emit the total as one synthetic
    /// `classify.leaf_sum` span per worker scratch.
    pub time_leaves: bool,
    /// Nanoseconds spent in leaf kernel sums (see [`Self::time_leaves`]).
    pub leaf_ns: u64,
}

impl QueryScratch {
    /// Fresh scratch with empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets statistics (the heap is already drained between queries).
    pub fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }

    /// Arms the tracer for the query at `index` (a no-op unless the
    /// tracer is enabled and the index is sampled). Must be called
    /// *before* the query's first counter increment: per-query counters
    /// are diffed against the stats snapshot taken here.
    pub fn begin_trace(&mut self, index: u64) {
        self.tracer.begin(index, self.stats);
    }
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    #[test]
    fn outcome_recording() {
        let mut s = QueryStats::default();
        s.record_outcome(PruneCause::ThresholdHigh);
        s.record_outcome(PruneCause::ThresholdLow);
        s.record_outcome(PruneCause::Tolerance);
        s.record_outcome(PruneCause::Exhausted);
        s.record_outcome(PruneCause::Grid);
        s.record_outcome(PruneCause::Estimated);
        assert_eq!(s.queries, 6);
        assert_eq!(s.threshold_high, 1);
        assert_eq!(s.threshold_low, 1);
        assert_eq!(s.tolerance, 1);
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.grid_prunes, 1);
        assert_eq!(s.estimated, 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = QueryStats {
            queries: 2,
            kernel_evals: 10,
            nodes_expanded: 4,
            bound_evals: 8,
            ..Default::default()
        };
        let b = QueryStats {
            queries: 3,
            kernel_evals: 5,
            threshold_high: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.queries, 5);
        assert_eq!(a.kernel_evals, 15);
        assert_eq!(a.nodes_expanded, 4);
        assert_eq!(a.threshold_high, 2);
    }

    #[test]
    fn merge_and_named_counters_cover_every_field() {
        // Exhaustive struct literal (no `..Default::default()`): adding
        // a field to `QueryStats` fails compilation here until this
        // audit — and `named_counters` — are extended. Every value is
        // distinct and nonzero so no counter can hide behind another.
        let a = QueryStats {
            queries: 1,
            kernel_evals: 2,
            nodes_expanded: 3,
            bound_evals: 4,
            grid_prunes: 5,
            threshold_high: 6,
            threshold_low: 7,
            tolerance: 8,
            exhausted: 9,
            estimated: 10,
        };
        let named = a.named_counters();
        let mut seen: Vec<u64> = named.iter().map(|&(_, v)| v).collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            (1..=10).collect::<Vec<u64>>(),
            "counter missing from named_counters"
        );
        let mut m = a;
        m.merge(&a);
        for ((name, before), (_, after)) in named.iter().zip(m.named_counters()) {
            assert_eq!(after, before * 2, "`{name}` not merged");
        }
        // A merged-in default changes nothing.
        let mut d = a;
        d.merge(&QueryStats::default());
        assert_eq!(d, a);
    }

    #[test]
    fn kernels_per_query_guards_zero() {
        let s = QueryStats::default();
        assert_eq!(s.kernels_per_query(), 0.0);
        let s = QueryStats {
            queries: 4,
            kernel_evals: 10,
            ..Default::default()
        };
        assert_eq!(s.kernels_per_query(), 2.5);
    }

    #[test]
    fn heap_orders_by_priority() {
        let mut h: BinaryHeap<HeapEntry> = BinaryHeap::new();
        for (p, n) in [(1.0, 1u32), (5.0, 2), (3.0, 3)] {
            h.push(HeapEntry {
                priority: p,
                node: n,
                w_lo: 0.0,
                w_hi: 0.0,
            });
        }
        assert_eq!(h.pop().unwrap().node, 2);
        assert_eq!(h.pop().unwrap().node, 3);
        assert_eq!(h.pop().unwrap().node, 1);
    }

    #[test]
    fn scratch_reset() {
        let mut s = QueryScratch::new();
        s.stats.record_outcome(PruneCause::Tolerance);
        assert_eq!(s.stats.queries, 1);
        s.reset_stats();
        assert_eq!(s.stats.queries, 0);
    }
}
