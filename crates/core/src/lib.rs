#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc
//!
//! Thresholded Kernel Density Classification — a Rust reproduction of the
//! SIGMOD 2017 paper *"Scalable Kernel Density Classification via
//! Threshold-Based Pruning"* (Gan & Bailis).
//!
//! ## What it does
//!
//! Given a training dataset `X` and a quantile probability `p`, tKDC
//! classifies query points as lying in HIGH or LOW density regions of the
//! kernel density estimate of `X`, *without* computing exact densities.
//! It maintains upper and lower density bounds from a multi-resolution
//! k-d tree and short-circuits (prunes) a query's computation the moment
//! the bounds land entirely above or below the classification threshold
//! `t(p)` — a classic predicate-pushdown applied to density estimation.
//! Per-query cost drops from `O(n)` to `O(n^{(d-1)/d})` for `d > 1`.
//!
//! ## Quick start
//!
//! ```
//! use tkdc_common::{Matrix, Rng};
//! use tkdc::{Classifier, Label, Params};
//!
//! // A small 2-d Gaussian blob.
//! let mut rng = Rng::seed_from(7);
//! let mut data = Matrix::with_cols(2);
//! for _ in 0..2000 {
//!     data.push_row(&[rng.normal(0.0, 1.0), rng.normal(0.0, 1.0)]).unwrap();
//! }
//!
//! // Classify the densest 99% vs. the 1% low-density tail.
//! let params = Params::default();          // p = 0.01, ε = 0.01, δ = 0.01
//! let clf = Classifier::fit(&data, &params).unwrap();
//!
//! assert_eq!(clf.classify(&[0.0, 0.0]).unwrap(), Label::High);  // dense center
//! assert_eq!(clf.classify(&[8.0, 8.0]).unwrap(), Label::Low);   // far tail
//! ```
//!
//! ## Module map
//!
//! * [`params`] — task parameters (Table 1) and optimization toggles.
//! * [`bound`] — the `BoundDensity` traversal (Algorithm 2) with the
//!   threshold and tolerance pruning rules (Eq. 8–9).
//! * [`threshold`] — the bootstrapped threshold estimator (Algorithm 3).
//! * [`classifier`] — the end-to-end classifier (Algorithm 1), including
//!   the grid cache fast path and the unified batch entry points
//!   (`classify_batch_with` / `bound_density_batch_with`, scheduled by
//!   [`classifier::ExecPolicy`]).
//! * [`engine`] — the dependency-free work-stealing batch scheduler
//!   behind every parallel driver (classification, bootstrap, training
//!   densities).
//! * [`qstats`] — per-query and aggregate instrumentation (kernel
//!   evaluations, node expansions, prune causes) used by the paper's
//!   factor/lesion analyses (Fig. 12/16).
//! * [`trace`] — per-query tracing hooks (the `tkdc-obs` adapter behind
//!   the `obs` cargo feature; a zero-sized no-op without it).
//! * [`span`] — stage-level timing spans over fit phases and batch
//!   execution (same feature gating and vanishing pattern as [`trace`]).

pub mod backend;
pub mod bound;
pub mod classifier;
pub mod dualtree;
pub mod engine;
pub mod llr;
pub mod model_io;
pub mod params;
pub mod qstats;
pub mod span;
pub mod threshold;
pub mod trace;

pub use backend::{BoundKind, DensityBackend, HbeBackend, RffBackend, TreeBackend};
pub use classifier::{Classifier, ExecPolicy, Label};
#[cfg(feature = "obs")]
pub use dualtree::classify_batch_dual_traced;
pub use dualtree::{classify_batch_dual, DualTreeConfig, DualTreeStats};
pub use llr::{llr_bounds, llr_bounds_with_rtol, LlrBounds};
pub use params::{BackendSpec, BootstrapParams, HbeParams, Optimizations, Params, RffParams};
pub use qstats::{PruneCause, QueryScratch, QueryStats};
pub use span::Spans;
pub use threshold::ThresholdBounds;
pub use trace::Tracer;
#[cfg(feature = "obs")]
pub use trace::{QueryTrace, TraceStep, TraceWriter, TRACE_SCHEMA};
