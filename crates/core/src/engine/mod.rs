//! Work-stealing batch execution engine.
//!
//! Threshold-pruned query costs are heavy-tailed: a query far from the
//! ±ε·t ambiguity band prunes after a handful of node expansions, while a
//! near-threshold query can expand orders of magnitude more nodes. Static
//! chunking (splitting the batch into `n_threads` equal ranges up front)
//! therefore leaves most cores idle whenever the hard queries cluster in
//! one chunk. This module provides the alternative used by every parallel
//! driver in the workspace: scoped worker threads (via the `tkdc-sync`
//! facade, so `cargo xtask model-check` can explore their interleavings)
//! pulling index ranges from a shared [`WorkQueue`] — an `AtomicUsize`
//! cursor with
//! *guided* (adaptive) grain size. Early ranges are coarse (cheap to
//! claim, good locality); as the queue drains, grains shrink toward one
//! item so a single pathological query never strands more than itself on
//! one core.
//!
//! The engine is dependency-free (no rayon/crossbeam) and deterministic
//! in its *results*: each item's output is computed independently and
//! reassembled in index order, so the output vector — and any
//! order-independent reduction over per-worker state, such as summed
//! [`crate::qstats::QueryStats`] counters — is identical for every thread
//! count.

use std::ops::Range;

use tkdc_sync::atomic::{AtomicUsize, Ordering};
use tkdc_sync::thread;

use tkdc_common::error::Result;

pub mod pool;

pub use pool::{Pool, PoolTelemetry, WorkerCounters, WorkerTelemetry};

/// Divisor steering the guided grain size: each claimed range is
/// `remaining / (workers * GRAIN_DIVISOR)`, so every worker expects to
/// come back for more work a few times and the tail is finely sliced.
const GRAIN_DIVISOR: usize = 4;

/// Upper bound on a single claimed range, so enormous batches still
/// rebalance at a reasonable frequency.
const MAX_GRAIN: usize = 1024;

/// A shared range dispenser over `0..total`.
///
/// Workers call [`WorkQueue::next_range`] until it returns `None`. The
/// queue hands out disjoint, in-order ranges whose sizes shrink as work
/// remains — guided self-scheduling. All operations are lock-free; the
/// only shared state is one atomic cursor.
#[derive(Debug)]
pub struct WorkQueue {
    cursor: AtomicUsize,
    total: usize,
    workers: usize,
}

impl WorkQueue {
    /// A queue over `0..total` expected to be drained by `workers`
    /// threads (the worker count only tunes grain size; any number of
    /// threads may actually pull from the queue).
    pub fn new(total: usize, workers: usize) -> Self {
        Self {
            cursor: AtomicUsize::new(0),
            total,
            workers: workers.max(1),
        }
    }

    /// Claims the next range of work, or `None` when the queue is empty.
    ///
    /// Grain size is `remaining / (workers · 4)` clamped to
    /// `[1, 1024]` — coarse while the batch is full, single items at the
    /// tail.
    pub fn next_range(&self) -> Option<Range<usize>> {
        // ORDERING: Relaxed suffices — CAS atomicity alone guarantees
        // ranges are disjoint, and the results written under a claimed
        // range are published to the caller by thread join, not by this
        // cursor. Model-checked by `engine_cursor_*` in
        // tests/model_check.rs.
        let mut cur = self.cursor.load(Ordering::Relaxed);
        loop {
            if cur >= self.total {
                return None;
            }
            let remaining = self.total - cur;
            let grain = (remaining / (self.workers * GRAIN_DIVISOR))
                .clamp(1, MAX_GRAIN)
                .min(remaining);
            // ORDERING: Relaxed on both edges — see the load above; the
            // cursor transfers no data, only disjointness.
            match self.cursor.compare_exchange_weak(
                cur,
                cur + grain,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(cur..cur + grain),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Marks the queue as drained so other workers stop pulling ranges
    /// (used to cut the batch short once a worker hits an error).
    pub fn abort(&self) {
        // ORDERING: Relaxed — aborting is advisory (workers may claim a
        // few more items); the authoritative error is carried in the
        // worker's own output and published by join.
        self.cursor.store(self.total, Ordering::Relaxed);
    }
}

/// Output of one worker thread: completed `(start, results)` segments,
/// the worker's final state, and the first error it encountered (if any)
/// tagged with the item index it occurred at.
type WorkerOutput<T, S> = (
    Vec<(usize, Vec<T>)>,
    S,
    Option<(usize, tkdc_common::error::Error)>,
);

/// Runs `work(i, &mut state)` for every `i` in `0..total` across
/// `n_threads` scoped worker threads pulling from a shared [`WorkQueue`],
/// and returns the per-item results in index order plus every worker's
/// final state (for merging statistics).
///
/// Guarantees:
/// * results are in index order and identical for any `n_threads`
///   (assuming `work` is deterministic per index);
/// * with `n_threads <= 1` no thread is spawned — the batch runs inline,
///   so the single-threaded path stays allocation- and syscall-free;
/// * on error, the error raised at the *smallest* item index is returned,
///   independent of thread interleaving.
///
/// # Errors
/// Propagates the first (lowest-index) error returned by `work`.
pub fn run_batch<T, S, G, F>(
    total: usize,
    n_threads: usize,
    init: G,
    work: F,
) -> Result<(Vec<T>, Vec<S>)>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> Result<T> + Sync,
{
    let n_threads = n_threads.max(1).min(total.max(1));
    if n_threads == 1 {
        let mut state = init();
        let mut out = Vec::with_capacity(total);
        for i in 0..total {
            out.push(work(i, &mut state)?);
        }
        return Ok((out, vec![state]));
    }

    let queue = WorkQueue::new(total, n_threads);
    let mut outputs: Vec<WorkerOutput<T, S>> = Vec::with_capacity(n_threads);
    thread::scope(|scope| {
        let queue = &queue;
        let init = &init;
        let work = &work;
        let mut handles = Vec::with_capacity(n_threads);
        for _ in 0..n_threads {
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut segments: Vec<(usize, Vec<T>)> = Vec::new();
                let mut error: Option<(usize, tkdc_common::error::Error)> = None;
                'pull: while let Some(range) = queue.next_range() {
                    let start = range.start;
                    let mut seg = Vec::with_capacity(range.len());
                    for i in range {
                        match work(i, &mut state) {
                            Ok(v) => seg.push(v),
                            Err(e) => {
                                error = Some((i, e));
                                queue.abort();
                                break 'pull;
                            }
                        }
                    }
                    segments.push((start, seg));
                }
                (segments, state, error)
            }));
        }
        for h in handles {
            // INVARIANT: re-raising a worker panic is the only sound option here.
            outputs.push(h.join().expect("batch worker panicked"));
        }
    });

    // Deterministic error selection: the failure at the smallest index
    // wins, whatever thread happened to hit it.
    let mut first_err: Option<(usize, tkdc_common::error::Error)> = None;
    let mut segments: Vec<(usize, Vec<T>)> = Vec::new();
    let mut states = Vec::with_capacity(outputs.len());
    for (segs, state, err) in outputs {
        segments.extend(segs);
        states.push(state);
        if let Some((i, e)) = err {
            if first_err.as_ref().is_none_or(|(fi, _)| i < *fi) {
                first_err = Some((i, e));
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }

    // Reassemble in index order. Segments are disjoint and cover
    // `0..total` exactly when no error occurred.
    segments.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(total);
    for (start, seg) in segments {
        // INVARIANT: the queue hands out 0..total in order without gaps,
        // so sorted segments tile the output exactly.
        assert_eq!(start, out.len(), "work queue segments must tile");
        out.extend(seg);
    }
    assert_eq!(out.len(), total, "work queue must cover the batch");
    Ok((out, states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::error::Error;

    /// Sizes shrink under Miri (CI's miri-smoke job runs these tests
    /// interpreted, ~3 orders of magnitude slower than native).
    const N_COVER: usize = if cfg!(miri) { 300 } else { 10_000 };

    #[test]
    fn queue_covers_every_index_exactly_once() {
        let q = WorkQueue::new(N_COVER, 4);
        let mut seen = vec![false; N_COVER];
        while let Some(r) = q.next_range() {
            for i in r {
                assert!(!seen[i], "index {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every index must be handed out");
    }

    #[test]
    fn queue_grain_shrinks_toward_tail() {
        let q = WorkQueue::new(4096, 4);
        let mut sizes = Vec::new();
        while let Some(r) = q.next_range() {
            sizes.push(r.len());
        }
        // Guided scheduling: first grain is the largest, last is 1.
        assert!(sizes.first().unwrap() > sizes.last().unwrap());
        assert_eq!(*sizes.last().unwrap(), 1);
        assert!(sizes.iter().all(|&s| s <= MAX_GRAIN));
    }

    #[test]
    fn queue_empty_returns_none() {
        let q = WorkQueue::new(0, 4);
        assert!(q.next_range().is_none());
    }

    #[test]
    fn abort_stops_distribution() {
        let q = WorkQueue::new(100, 2);
        assert!(q.next_range().is_some());
        q.abort();
        assert!(q.next_range().is_none());
    }

    #[test]
    fn run_batch_matches_serial_for_any_thread_count() {
        let n = if cfg!(miri) { 64 } else { 1000 };
        let work = |i: usize, acc: &mut u64| -> Result<u64> {
            *acc += 1;
            Ok((i as u64) * 3 + 1)
        };
        let (serial, _) = run_batch(n, 1, || 0u64, work).unwrap();
        for threads in [2, 3, 4, 8] {
            let (parallel, states) = run_batch(n, threads, || 0u64, work).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
            // Every item processed exactly once across all workers.
            assert_eq!(states.iter().sum::<u64>(), n as u64);
        }
    }

    #[test]
    fn run_batch_returns_lowest_index_error() {
        let n = if cfg!(miri) { 64 } else { 1000 };
        let work = |i: usize, _: &mut ()| -> Result<usize> {
            if i == 37 || i == 612 {
                Err(Error::EmptyInput("boom"))
            } else {
                Ok(i)
            }
        };
        for threads in [1, 4] {
            let err = run_batch(n, threads, || (), work).unwrap_err();
            assert!(
                matches!(err, Error::EmptyInput("boom")),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_batch_empty_and_tiny_batches() {
        let work = |i: usize, _: &mut ()| -> Result<usize> { Ok(i) };
        let (out, _) = run_batch(0, 8, || (), work).unwrap();
        assert!(out.is_empty());
        let (out, _) = run_batch(3, 8, || (), work).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }
}
