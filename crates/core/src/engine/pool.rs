//! Persistent work-stealing thread pool.
//!
//! [`super::run_batch`] spawns scoped threads per batch, which is fine
//! for one-shot CLI runs but dominates the per-batch cost in serving
//! scenarios: BENCH_batch.json showed *sub-1.0× speedups* at 2–4
//! threads because every batch paid thread spawn + scheduler-state
//! rebuild. [`Pool`] keeps workers alive across batches instead:
//! workers park on a condvar between jobs, a submission publishes one
//! type-erased job and wakes them, and the submitting thread itself
//! participates so a single-threaded job degenerates to the inline
//! serial path with zero parked threads.
//!
//! Scheduling inside a job is per-participant deques with chunked
//! stealing. The index space `0..total` is split into contiguous
//! per-participant ranges up front (static partition = perfect
//! locality when costs are uniform); an owner pops *guided* grains
//! from the front of its own deque, and a participant whose deque ran
//! dry steals half (grain-capped) from the *back* of a victim's
//! deque. Stealing in grain-sized chunks rather than single indices is
//! what keeps the stolen work's amortized synchronization cost on par
//! with static partitioning on uniform workloads (see the
//! `skewed.per_threads` regression this replaced).
//!
//! Determinism contract (same as [`super::run_batch`]): results are
//! reassembled in index order, so the output vector is bit-identical
//! for every capacity/thread count; per-participant states are merged
//! by the caller with order-independent reductions; the error at the
//! smallest item index wins.
//!
//! Everything here goes through the `tkdc-sync` facade, so
//! `cargo xtask model-check` can exhaustively explore the park/unpark
//! protocol (see `pool_*` harnesses in `tests/model_check.rs`).

use std::any::Any;
use std::ops::Range;
use std::time::Instant;

use tkdc_sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use tkdc_sync::thread::{self, JoinHandle};
use tkdc_sync::{Arc, Condvar, Mutex};

use tkdc_common::error::{Error, Result};

use super::{GRAIN_DIVISOR, MAX_GRAIN};

/// Owner grain: a few round-trips to the deque per participant, single
/// items at the tail (guided self-scheduling, same shape as
/// [`super::WorkQueue`]).
fn own_grain(len: usize) -> usize {
    (len / GRAIN_DIVISOR).clamp(1, MAX_GRAIN).min(len)
}

/// Steal grain: half the victim's remaining work, grain-capped. Taking
/// a chunk (not one index) amortizes the lock traffic that made
/// single-index stealing lose to static partitioning at 2 threads.
fn steal_grain(len: usize) -> usize {
    (len / 2).clamp(1, MAX_GRAIN).min(len)
}

/// Panic shield around one chunk of user work. In the real build a
/// worker panic is captured and re-raised on the submitting thread; in
/// the model-check build panics must propagate unmodified so the
/// checker's own unwinding (used to abort explored executions) is
/// never swallowed.
#[cfg(not(tkdc_model_check))]
fn shield<R>(f: impl FnOnce() -> R) -> std::result::Result<R, Box<dyn Any + Send + 'static>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
}

/// Model-check twin of [`shield`]: transparent.
#[cfg(tkdc_model_check)]
fn shield<R>(f: impl FnOnce() -> R) -> std::result::Result<R, Box<dyn Any + Send + 'static>> {
    Ok(f())
}

/// Per-participant telemetry counters. All updates are `Relaxed`
/// atomics — telemetry is statistics, never synchronization — and
/// every counter is monotonic, so point-in-time snapshots are safe to
/// diff. Lives behind an `Arc` per pool worker (plus one shared by all
/// submitting threads), appended to on every chunk and every
/// park/unpark transition.
///
/// Wall-time counters (`busy_ns` / `idle_ns`) deliberately stay *out*
/// of the per-query [`QueryStats`](crate::qstats::QueryStats): those
/// are asserted bit-equal across thread counts, and wall time never is.
#[derive(Debug, Default)]
pub struct WorkerCounters {
    /// Items executed (summed over claimed chunks).
    tasks_run: AtomicU64,
    /// Chunks obtained by stealing from another participant's deque.
    chunks_stolen: AtomicU64,
    /// Times the participant parked on the job condvar.
    parks: AtomicU64,
    /// Times the participant returned from a park.
    unparks: AtomicU64,
    /// Nanoseconds spent executing user work.
    busy_ns: AtomicU64,
    /// Nanoseconds spent parked waiting for work.
    idle_ns: AtomicU64,
}

impl WorkerCounters {
    fn add_tasks(&self, n: u64) {
        // ORDERING: Relaxed — independent statistical counters; totals
        // are read via `snapshot` under the usual staleness contract.
        self.tasks_run.fetch_add(n, Ordering::Relaxed);
    }

    fn add_steal(&self) {
        // ORDERING: Relaxed — see `add_tasks`.
        self.chunks_stolen.fetch_add(1, Ordering::Relaxed);
    }

    fn add_park(&self) {
        // ORDERING: Relaxed — see `add_tasks`.
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    fn add_unpark(&self, idle: u64) {
        // ORDERING: Relaxed — see `add_tasks`.
        self.unparks.fetch_add(1, Ordering::Relaxed);
        // ORDERING: Relaxed — see `add_tasks`.
        self.idle_ns.fetch_add(idle, Ordering::Relaxed);
    }

    fn add_busy(&self, ns: u64) {
        // ORDERING: Relaxed — see `add_tasks`.
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Point-in-time plain-data copy.
    pub fn snapshot(&self) -> WorkerTelemetry {
        // ORDERING: Relaxed — each field is a point-in-time read; the
        // snapshot may be slightly torn across fields while the worker
        // runs, exactly like every other metrics read in the workspace.
        WorkerTelemetry {
            tasks_run: self.tasks_run.load(Ordering::Relaxed), // ORDERING: see above
            chunks_stolen: self.chunks_stolen.load(Ordering::Relaxed), // ORDERING: see above
            parks: self.parks.load(Ordering::Relaxed),         // ORDERING: see above
            unparks: self.unparks.load(Ordering::Relaxed),     // ORDERING: see above
            busy_ns: self.busy_ns.load(Ordering::Relaxed),     // ORDERING: see above
            idle_ns: self.idle_ns.load(Ordering::Relaxed),     // ORDERING: see above
        }
    }
}

/// Plain-data snapshot of one participant's [`WorkerCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerTelemetry {
    /// Items executed (summed over claimed chunks).
    pub tasks_run: u64,
    /// Chunks obtained by stealing from another participant's deque.
    pub chunks_stolen: u64,
    /// Times the participant parked on the job condvar.
    pub parks: u64,
    /// Times the participant returned from a park.
    pub unparks: u64,
    /// Nanoseconds spent executing user work.
    pub busy_ns: u64,
    /// Nanoseconds spent parked waiting for work.
    pub idle_ns: u64,
}

impl WorkerTelemetry {
    /// Fraction of accounted time spent executing work:
    /// `busy / (busy + idle)`; `0.0` before any accounting.
    pub fn utilization(&self) -> f64 {
        let denom = self.busy_ns.saturating_add(self.idle_ns);
        if denom == 0 {
            0.0
        } else {
            // CAST: ns totals above 2^53 (~104 days) only cost ratio
            // precision, not correctness.
            self.busy_ns as f64 / denom as f64
        }
    }

    /// Element-wise sum (for pool-level aggregates).
    fn merge(&mut self, other: &WorkerTelemetry) {
        self.tasks_run += other.tasks_run;
        self.chunks_stolen += other.chunks_stolen;
        self.parks += other.parks;
        self.unparks += other.unparks;
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
    }
}

/// Snapshot of a whole pool's telemetry: one entry per spawned worker
/// (in spawn order) plus one shared entry for every submitting thread.
#[derive(Debug, Clone, Default)]
pub struct PoolTelemetry {
    /// Per-worker snapshots, index = spawn order.
    pub workers: Vec<WorkerTelemetry>,
    /// Aggregate over all submitting threads (submitters participate in
    /// their own jobs but never park on the pool condvar).
    pub submitters: WorkerTelemetry,
}

impl PoolTelemetry {
    /// Aggregate over workers and submitters.
    pub fn total(&self) -> WorkerTelemetry {
        let mut t = self.submitters;
        for w in &self.workers {
            t.merge(w);
        }
        t
    }

    /// Pool utilization: busy fraction of the *workers'* accounted time
    /// (submitters never park, so including them would inflate the
    /// figure). `0.0` for a pool that has not spawned workers.
    pub fn utilization(&self) -> f64 {
        let mut agg = WorkerTelemetry::default();
        for w in &self.workers {
            agg.merge(w);
        }
        agg.utilization()
    }
}

/// What the parked workers see: "participate in the current job".
/// Erases the job's item/state/closure types so heterogeneous batches
/// can share one pool. The participant's telemetry counters ride in so
/// chunk and busy-time accounting lands on the right track.
trait JobRun: Send + Sync {
    fn participate(&self, counters: &WorkerCounters);
}

/// Aggregated job output, guarded by [`Job::done`]. The job is
/// complete when `remaining == 0 && active == 0`: every item has been
/// published (or drained by an abort) *and* every engaged participant
/// has pushed its final state.
struct JobOutput<T, S> {
    remaining: usize,
    active: usize,
    segments: Vec<(usize, Vec<T>)>,
    states: Vec<S>,
    error: Option<(usize, Error)>,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

/// One submitted batch: per-participant deques plus the closures and
/// the output accumulator.
struct Job<T, S, G, F> {
    /// Contiguous per-participant ranges; owner pops from the front,
    /// thieves steal from the back.
    slots: Vec<Mutex<Range<usize>>>,
    /// Participant slots are claimed first-come; claims past
    /// `slots.len()` bounce back to the park loop.
    next_slot: AtomicUsize,
    init: G,
    work: F,
    done: Mutex<JobOutput<T, S>>,
    done_cv: Condvar,
}

impl<T, S, G, F> Job<T, S, G, F>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Send + Sync,
    F: Fn(usize, &mut S) -> Result<T> + Send + Sync,
{
    /// Pops a grain from this participant's own deque, or steals a
    /// chunk from the first non-empty victim (round-robin scan). The
    /// flag reports whether the chunk was stolen.
    fn pop_or_steal(&self, slot: usize) -> Option<(Range<usize>, bool)> {
        {
            let mut own = self.slots[slot].lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            if !own.is_empty() {
                let take = own_grain(own.len());
                let chunk = own.start..own.start + take;
                own.start += take;
                return Some((chunk, false));
            }
        }
        let n = self.slots.len();
        for off in 1..n {
            let mut victim = self.slots[(slot + off) % n].lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            if !victim.is_empty() {
                let take = steal_grain(victim.len());
                let chunk = victim.end - take..victim.end;
                victim.end -= take;
                return Some((chunk, true));
            }
        }
        None
    }

    /// Empties every deque (advisory abort after an error/panic) and
    /// debits the drained items from `remaining` so the completion
    /// condition is still reached. In-flight chunks held by other
    /// participants debit themselves when they finish.
    fn drain_slots(&self) {
        let mut drained = 0usize;
        for slot in &self.slots {
            let mut r = slot.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            drained += r.len();
            r.start = r.end;
        }
        if drained > 0 {
            let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            out.remaining -= drained;
        }
    }

    /// Publishes one finished chunk and debits `remaining`.
    fn publish_chunk(&self, start: usize, seg: Vec<T>, len: usize) {
        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        out.segments.push((start, seg));
        out.remaining -= len;
    }
}

impl<T, S, G, F> JobRun for Job<T, S, G, F>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Send + Sync,
    F: Fn(usize, &mut S) -> Result<T> + Send + Sync,
{
    fn participate(&self, counters: &WorkerCounters) {
        // ORDERING: Relaxed — the counter only allocates distinct slot
        // numbers; all data transfer goes through the slot/done
        // mutexes. Model-checked by `pool_*` in tests/model_check.rs.
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        if slot >= self.slots.len() {
            return;
        }
        {
            let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            out.active += 1;
        }
        let mut state = (self.init)();
        while let Some((chunk, stolen)) = self.pop_or_steal(slot) {
            if stolen {
                counters.add_steal();
            }
            let start = chunk.start;
            let len = chunk.len();
            counters.add_tasks(len as u64); // CAST: chunk length widens to u64
            let busy_t0 = Instant::now();
            let ran = shield(|| -> std::result::Result<Vec<T>, (usize, Error)> {
                let mut seg = Vec::with_capacity(len);
                for i in chunk {
                    match (self.work)(i, &mut state) {
                        Ok(v) => seg.push(v),
                        Err(e) => return Err((i, e)),
                    }
                }
                Ok(seg)
            });
            // CAST: one chunk's wall time is far below u64 ns.
            counters.add_busy(busy_t0.elapsed().as_nanos() as u64);
            match ran {
                Ok(Ok(seg)) => self.publish_chunk(start, seg, len),
                Ok(Err((i, e))) => {
                    // The whole chunk is debited; its partial segment
                    // is dropped (the batch errors out before tiling).
                    {
                        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
                        out.remaining -= len;
                        if out.error.as_ref().is_none_or(|(fi, _)| i < *fi) {
                            out.error = Some((i, e));
                        }
                    }
                    self.drain_slots();
                    break;
                }
                Err(payload) => {
                    {
                        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
                        out.remaining -= len;
                        if out.panic.is_none() {
                            out.panic = Some(payload);
                        }
                    }
                    self.drain_slots();
                    break;
                }
            }
        }
        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        out.states.push(state);
        out.active -= 1;
        if out.remaining == 0 && out.active == 0 {
            self.done_cv.notify_all();
        }
    }
}

/// State the workers park on. One job at a time; `epoch` distinguishes
/// "this job is new to me" from "I already worked on this one and it
/// has not been replaced yet".
struct PoolState {
    job: Option<Arc<dyn JobRun>>,
    epoch: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs; `notify_all` on submit and on
    /// shutdown.
    work_ready: Condvar,
}

/// A long-lived work-stealing thread pool.
///
/// Lifecycle:
/// * **Creation** ([`Pool::new`]) allocates only the shared state; no
///   threads are spawned until the first submission that needs them.
/// * **Sizing**: workers grow on demand. A job asking for `n` threads
///   engages the submitting thread plus up to `n - 1` pool workers
///   (spawned lazily on the first job that needs them, kept forever).
/// * **Submission** ([`Pool::run_batch`]) is serialized — one job in
///   flight; concurrent submitters queue on an internal mutex. The
///   submitter always participates, so the pool makes progress even
///   if every worker is still waking up.
/// * **Drain on drop**: `Drop` flags shutdown, wakes all workers and
///   joins them; any submitted job has already completed (submission
///   holds `&self`).
pub struct Pool {
    shared: Arc<PoolShared>,
    /// Lazily spawned worker handles, joined on drop.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Telemetry counters, one per spawned worker (same order as
    /// `workers`), each shared with its worker thread.
    worker_counters: Mutex<Vec<Arc<WorkerCounters>>>,
    /// Telemetry for submitting threads (shared: submitters are
    /// external threads the pool cannot enumerate).
    submitter_counters: Arc<WorkerCounters>,
    /// Serializes submissions: at most one job published at a time.
    submit: Mutex<()>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("spawned", &self.workers.lock().unwrap().len()) // INVARIANT: user work is shielded; pool locks cannot be poisoned
            .finish()
    }
}

fn worker_loop(shared: &PoolShared, counters: &WorkerCounters) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    if let Some(job) = st.job.clone() {
                        last_epoch = st.epoch;
                        break job;
                    }
                    // Job already completed and was cleared: catch up
                    // so a re-submit of epoch+1 still looks new.
                    last_epoch = st.epoch;
                }
                counters.add_park();
                let idle_t0 = Instant::now();
                st = shared.work_ready.wait(st).unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
                                                          // CAST: one park's wall time is far below u64 ns.
                counters.add_unpark(idle_t0.elapsed().as_nanos() as u64);
            }
        };
        job.participate(counters);
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// An empty pool. No threads are spawned until the first batch that
    /// needs them; workers grow to match the largest `n_threads` ever
    /// requested and persist until drop.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    job: None,
                    epoch: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            worker_counters: Mutex::new(Vec::new()),
            submitter_counters: Arc::new(WorkerCounters::default()),
            submit: Mutex::new(()),
        }
    }

    /// Number of worker threads currently alive (spawned lazily; the
    /// submitting thread is always an extra participant on top).
    pub fn spawned(&self) -> usize {
        self.workers.lock().unwrap().len() // INVARIANT: user work is shielded; pool locks cannot be poisoned
    }

    /// Point-in-time telemetry: per-worker counters (spawn order) plus
    /// the shared submitter aggregate. Counters persist across batches
    /// and only ever grow.
    pub fn telemetry(&self) -> PoolTelemetry {
        let workers = self
            .worker_counters
            .lock()
            .unwrap() // INVARIANT: user work is shielded; pool locks cannot be poisoned
            .iter()
            .map(|c| c.snapshot())
            .collect();
        PoolTelemetry {
            workers,
            submitters: self.submitter_counters.snapshot(),
        }
    }

    fn ensure_workers(&self, needed: usize) {
        let mut workers = self.workers.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        let mut counters = self.worker_counters.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        while workers.len() < needed {
            let shared = self.shared.clone();
            let c = Arc::new(WorkerCounters::default());
            counters.push(c.clone());
            // JOIN: handles are joined in `Pool::drop` after the
            // shutdown flag wakes every parked worker.
            workers.push(thread::spawn(move || worker_loop(&shared, &c)));
        }
    }

    /// Runs `work(i, &mut state)` for every `i` in `0..total` across
    /// the pool, returning per-item results in index order plus the
    /// participants' final states (padded with `init()` to exactly the
    /// engaged thread count, so state-vector length is deterministic).
    ///
    /// Same guarantees as [`super::run_batch`]: index-order results
    /// identical for any thread count, lowest-index error wins, and
    /// `n_threads <= 1` (or a trivial batch) runs inline with no
    /// synchronization at all. Unlike `run_batch`, closures must be
    /// `'static` because workers outlive the call — clone an `Arc` of
    /// the model/queries into them.
    ///
    /// # Errors
    /// Propagates the lowest-index error returned by `work`.
    ///
    /// # Panics
    /// Re-raises (on this thread) the first panic captured from `work`.
    pub fn run_batch<T, S, G, F>(
        &self,
        total: usize,
        n_threads: usize,
        init: G,
        work: F,
    ) -> Result<(Vec<T>, Vec<S>)>
    where
        T: Send + 'static,
        S: Send + 'static,
        G: Fn() -> S + Send + Sync + 'static,
        F: Fn(usize, &mut S) -> Result<T> + Send + Sync + 'static,
    {
        let n = n_threads.max(1).min(total.max(1));
        if n == 1 {
            let busy_t0 = Instant::now();
            let mut state = init();
            let mut out = Vec::with_capacity(total);
            for i in 0..total {
                out.push(work(i, &mut state)?);
            }
            self.submitter_counters.add_tasks(total as u64); // CAST: batch size widens to u64
                                                             // CAST: one batch's wall time is far below u64 ns.
            let busy = busy_t0.elapsed().as_nanos() as u64;
            self.submitter_counters.add_busy(busy);
            return Ok((out, vec![state]));
        }

        self.ensure_workers(n - 1);

        // Static contiguous split; stealing rebalances skew.
        let base = total / n;
        let extra = total % n;
        let mut slots = Vec::with_capacity(n);
        let mut at = 0usize;
        for s in 0..n {
            let len = base + usize::from(s < extra);
            slots.push(Mutex::new(at..at + len));
            at += len;
        }
        debug_assert_eq!(at, total);

        let job = Arc::new(Job {
            slots,
            next_slot: AtomicUsize::new(0),
            init,
            work,
            done: Mutex::new(JobOutput {
                remaining: total,
                active: 0,
                segments: Vec::new(),
                states: Vec::new(),
                error: None,
                panic: None,
            }),
            done_cv: Condvar::new(),
        });

        let submit = self.submit.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        {
            let mut st = self.shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            st.job = Some(job.clone() as Arc<dyn JobRun>);
            st.epoch += 1;
            self.shared.work_ready.notify_all();
        }

        // The submitter is participant #0: progress is guaranteed even
        // before any worker wakes, and a 1-thread job never parks.
        job.participate(&self.submitter_counters);

        let mut out = job.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        while !(out.remaining == 0 && out.active == 0) {
            out = job.done_cv.wait(out).unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        }
        let mut segments = std::mem::take(&mut out.segments);
        let mut states = std::mem::take(&mut out.states);
        let error = out.error.take();
        let panic = out.panic.take();
        drop(out);

        {
            let mut st = self.shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            st.job = None;
        }
        drop(submit);

        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        if let Some((_, e)) = error {
            return Err(e);
        }

        // A worker that woke too late to do any work contributes no
        // state; pad so callers see a deterministic count.
        while states.len() < n {
            states.push((job.init)());
        }

        segments.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(total);
        for (start, seg) in segments {
            // INVARIANT: deque chunks are disjoint and cover 0..total
            // exactly when no error occurred, so sorted segments tile.
            assert_eq!(start, out.len(), "pool segments must tile");
            out.extend(seg);
        }
        assert_eq!(out.len(), total, "pool must cover the batch");
        Ok((out, states))
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().unwrap()); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        for h in handles {
            // JOIN: drop blocks until every worker has observed
            // shutdown and exited its park loop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sizes shrink under Miri (CI's miri-smoke job runs these tests
    /// interpreted, ~3 orders of magnitude slower than native).
    const N: usize = if cfg!(miri) { 96 } else { 4000 };

    #[test]
    fn pool_matches_serial_for_any_thread_count() {
        let work = |i: usize, acc: &mut u64| -> Result<u64> {
            *acc += 1;
            Ok((i as u64) * 7 + 3)
        };
        let pool = Pool::new();
        let (serial, _) = pool.run_batch(N, 1, || 0u64, work).unwrap();
        for threads in [2, 3, 4, 8] {
            let (parallel, states) = pool.run_batch(N, threads, || 0u64, work).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(states.iter().sum::<u64>(), N as u64);
            assert_eq!(states.len(), threads);
        }
    }

    #[test]
    fn pool_reuse_is_stable_across_batches() {
        let pool = Pool::new();
        let expect: Vec<usize> = (0..N).map(|i| i * 2).collect();
        for batch in 0..3 {
            let (out, _) = pool
                .run_batch(N, 4, || (), |i, _: &mut ()| Ok(i * 2))
                .unwrap();
            assert_eq!(out, expect, "batch={batch}");
        }
        // Workers were spawned once and persisted.
        assert_eq!(pool.spawned(), 3);
    }

    #[test]
    fn pool_spawns_lazily_and_grows_on_demand() {
        let pool = Pool::new();
        assert_eq!(pool.spawned(), 0, "creation spawns nothing");
        let (out, states) = pool.run_batch(N, 2, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(out.len(), N);
        assert_eq!(states.len(), 2);
        assert_eq!(pool.spawned(), 1, "2 threads ⇒ submitter + 1 worker");
        // A larger request grows the worker set; it never shrinks.
        let (_, states) = pool.run_batch(N, 8, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(states.len(), 8);
        assert_eq!(pool.spawned(), 7, "8 threads ⇒ submitter + 7 workers");
        let (_, states) = pool.run_batch(N, 2, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(states.len(), 2);
        assert_eq!(pool.spawned(), 7, "workers persist after a smaller job");
    }

    #[test]
    fn pool_returns_lowest_index_error() {
        let n = if cfg!(miri) { 64 } else { 1000 };
        let work = |i: usize, _: &mut ()| -> Result<usize> {
            if i == 37 || i == 612 {
                Err(Error::EmptyInput("boom"))
            } else {
                Ok(i)
            }
        };
        let pool = Pool::new();
        for threads in [1, 4] {
            let err = pool.run_batch(n, threads, || (), work).unwrap_err();
            assert!(
                matches!(err, Error::EmptyInput("boom")),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pool_empty_and_tiny_batches() {
        let pool = Pool::new();
        let (out, _) = pool.run_batch(0, 8, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert!(out.is_empty());
        let (out, _) = pool.run_batch(3, 8, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let pool = Pool::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.run_batch(
                256,
                4,
                || (),
                |i, _: &mut ()| {
                    assert!(i != 100, "deliberate test panic");
                    Ok(i)
                },
            );
        }));
        assert!(caught.is_err(), "worker panic must re-raise on submitter");
        // The pool is still usable after a panicked job.
        let (out, _) = pool.run_batch(8, 4, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn pool_is_shareable_across_submitting_threads() {
        let pool = Arc::new(Pool::new());
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let (out, _) = pool
                        .run_batch(N, 2, || (), move |i, _: &mut ()| Ok(i + t))
                        .unwrap();
                    assert_eq!(out[0], t);
                    assert_eq!(out[N - 1], N - 1 + t);
                })
            })
            .collect();
        for h in handles {
            // JOIN: submitters joined before the pool is dropped.
            h.join().unwrap();
        }
    }

    #[test]
    fn telemetry_accounts_every_item_exactly_once() {
        let pool = Pool::new();
        assert_eq!(pool.telemetry().workers.len(), 0);
        for threads in [1, 4] {
            let before = pool.telemetry().total();
            let (_, _) = pool
                .run_batch(N, threads, || (), |i, _: &mut ()| Ok(i))
                .unwrap();
            let after = pool.telemetry().total();
            // Items are claimed exactly once, whoever runs them.
            assert_eq!(
                after.tasks_run - before.tasks_run,
                N as u64,
                "threads={threads}"
            );
            assert!(after.chunks_stolen <= after.tasks_run);
        }
        let t = pool.telemetry();
        assert_eq!(t.workers.len(), 3, "4 threads ⇒ 3 spawned workers");
        // Workers have parked at least once each (initial park before
        // the first job) and every unpark matches an earlier park.
        for w in &t.workers {
            assert!(w.parks >= w.unparks);
        }
        // Submitters never park on the pool condvar.
        assert_eq!(t.submitters.parks, 0);
        assert!(t.submitters.busy_ns > 0);
        let u = t.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }

    #[test]
    fn worker_telemetry_utilization_bounds() {
        let w = WorkerTelemetry::default();
        assert!(w.utilization().total_cmp(&0.0).is_eq());
        let w = WorkerTelemetry {
            busy_ns: 3,
            idle_ns: 1,
            ..Default::default()
        };
        assert!((w.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn grains_are_chunks_not_single_indices() {
        // Regression guard for the satellite fix: a steal must take a
        // chunk when the victim has plenty left.
        assert_eq!(steal_grain(1000), 500);
        assert_eq!(steal_grain(3), 1);
        assert_eq!(steal_grain(1), 1);
        assert!(steal_grain(1_000_000) <= MAX_GRAIN);
        assert_eq!(own_grain(4096), 1024);
        assert_eq!(own_grain(1), 1);
    }
}
