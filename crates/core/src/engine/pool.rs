//! Persistent work-stealing thread pool.
//!
//! [`super::run_batch`] spawns scoped threads per batch, which is fine
//! for one-shot CLI runs but dominates the per-batch cost in serving
//! scenarios: BENCH_batch.json showed *sub-1.0× speedups* at 2–4
//! threads because every batch paid thread spawn + scheduler-state
//! rebuild. [`Pool`] keeps workers alive across batches instead:
//! workers park on a condvar between jobs, a submission publishes one
//! type-erased job and wakes them, and the submitting thread itself
//! participates so a single-threaded job degenerates to the inline
//! serial path with zero parked threads.
//!
//! Scheduling inside a job is per-participant deques with chunked
//! stealing. The index space `0..total` is split into contiguous
//! per-participant ranges up front (static partition = perfect
//! locality when costs are uniform); an owner pops *guided* grains
//! from the front of its own deque, and a participant whose deque ran
//! dry steals half (grain-capped) from the *back* of a victim's
//! deque. Stealing in grain-sized chunks rather than single indices is
//! what keeps the stolen work's amortized synchronization cost on par
//! with static partitioning on uniform workloads (see the
//! `skewed.per_threads` regression this replaced).
//!
//! Determinism contract (same as [`super::run_batch`]): results are
//! reassembled in index order, so the output vector is bit-identical
//! for every capacity/thread count; per-participant states are merged
//! by the caller with order-independent reductions; the error at the
//! smallest item index wins.
//!
//! Everything here goes through the `tkdc-sync` facade, so
//! `cargo xtask model-check` can exhaustively explore the park/unpark
//! protocol (see `pool_*` harnesses in `tests/model_check.rs`).

use std::any::Any;
use std::ops::Range;

use tkdc_sync::atomic::{AtomicUsize, Ordering};
use tkdc_sync::thread::{self, JoinHandle};
use tkdc_sync::{Arc, Condvar, Mutex};

use tkdc_common::error::{Error, Result};

use super::{GRAIN_DIVISOR, MAX_GRAIN};

/// Owner grain: a few round-trips to the deque per participant, single
/// items at the tail (guided self-scheduling, same shape as
/// [`super::WorkQueue`]).
fn own_grain(len: usize) -> usize {
    (len / GRAIN_DIVISOR).clamp(1, MAX_GRAIN).min(len)
}

/// Steal grain: half the victim's remaining work, grain-capped. Taking
/// a chunk (not one index) amortizes the lock traffic that made
/// single-index stealing lose to static partitioning at 2 threads.
fn steal_grain(len: usize) -> usize {
    (len / 2).clamp(1, MAX_GRAIN).min(len)
}

/// Panic shield around one chunk of user work. In the real build a
/// worker panic is captured and re-raised on the submitting thread; in
/// the model-check build panics must propagate unmodified so the
/// checker's own unwinding (used to abort explored executions) is
/// never swallowed.
#[cfg(not(tkdc_model_check))]
fn shield<R>(f: impl FnOnce() -> R) -> std::result::Result<R, Box<dyn Any + Send + 'static>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f))
}

/// Model-check twin of [`shield`]: transparent.
#[cfg(tkdc_model_check)]
fn shield<R>(f: impl FnOnce() -> R) -> std::result::Result<R, Box<dyn Any + Send + 'static>> {
    Ok(f())
}

/// What the parked workers see: "participate in the current job".
/// Erases the job's item/state/closure types so heterogeneous batches
/// can share one pool.
trait JobRun: Send + Sync {
    fn participate(&self);
}

/// Aggregated job output, guarded by [`Job::done`]. The job is
/// complete when `remaining == 0 && active == 0`: every item has been
/// published (or drained by an abort) *and* every engaged participant
/// has pushed its final state.
struct JobOutput<T, S> {
    remaining: usize,
    active: usize,
    segments: Vec<(usize, Vec<T>)>,
    states: Vec<S>,
    error: Option<(usize, Error)>,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

/// One submitted batch: per-participant deques plus the closures and
/// the output accumulator.
struct Job<T, S, G, F> {
    /// Contiguous per-participant ranges; owner pops from the front,
    /// thieves steal from the back.
    slots: Vec<Mutex<Range<usize>>>,
    /// Participant slots are claimed first-come; claims past
    /// `slots.len()` bounce back to the park loop.
    next_slot: AtomicUsize,
    init: G,
    work: F,
    done: Mutex<JobOutput<T, S>>,
    done_cv: Condvar,
}

impl<T, S, G, F> Job<T, S, G, F>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Send + Sync,
    F: Fn(usize, &mut S) -> Result<T> + Send + Sync,
{
    /// Pops a grain from this participant's own deque, or steals a
    /// chunk from the first non-empty victim (round-robin scan).
    fn pop_or_steal(&self, slot: usize) -> Option<Range<usize>> {
        {
            let mut own = self.slots[slot].lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            if !own.is_empty() {
                let take = own_grain(own.len());
                let chunk = own.start..own.start + take;
                own.start += take;
                return Some(chunk);
            }
        }
        let n = self.slots.len();
        for off in 1..n {
            let mut victim = self.slots[(slot + off) % n].lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            if !victim.is_empty() {
                let take = steal_grain(victim.len());
                let chunk = victim.end - take..victim.end;
                victim.end -= take;
                return Some(chunk);
            }
        }
        None
    }

    /// Empties every deque (advisory abort after an error/panic) and
    /// debits the drained items from `remaining` so the completion
    /// condition is still reached. In-flight chunks held by other
    /// participants debit themselves when they finish.
    fn drain_slots(&self) {
        let mut drained = 0usize;
        for slot in &self.slots {
            let mut r = slot.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            drained += r.len();
            r.start = r.end;
        }
        if drained > 0 {
            let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            out.remaining -= drained;
        }
    }

    /// Publishes one finished chunk and debits `remaining`.
    fn publish_chunk(&self, start: usize, seg: Vec<T>, len: usize) {
        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        out.segments.push((start, seg));
        out.remaining -= len;
    }
}

impl<T, S, G, F> JobRun for Job<T, S, G, F>
where
    T: Send,
    S: Send,
    G: Fn() -> S + Send + Sync,
    F: Fn(usize, &mut S) -> Result<T> + Send + Sync,
{
    fn participate(&self) {
        // ORDERING: Relaxed — the counter only allocates distinct slot
        // numbers; all data transfer goes through the slot/done
        // mutexes. Model-checked by `pool_*` in tests/model_check.rs.
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed);
        if slot >= self.slots.len() {
            return;
        }
        {
            let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            out.active += 1;
        }
        let mut state = (self.init)();
        while let Some(chunk) = self.pop_or_steal(slot) {
            let start = chunk.start;
            let len = chunk.len();
            let ran = shield(|| -> std::result::Result<Vec<T>, (usize, Error)> {
                let mut seg = Vec::with_capacity(len);
                for i in chunk {
                    match (self.work)(i, &mut state) {
                        Ok(v) => seg.push(v),
                        Err(e) => return Err((i, e)),
                    }
                }
                Ok(seg)
            });
            match ran {
                Ok(Ok(seg)) => self.publish_chunk(start, seg, len),
                Ok(Err((i, e))) => {
                    // The whole chunk is debited; its partial segment
                    // is dropped (the batch errors out before tiling).
                    {
                        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
                        out.remaining -= len;
                        if out.error.as_ref().is_none_or(|(fi, _)| i < *fi) {
                            out.error = Some((i, e));
                        }
                    }
                    self.drain_slots();
                    break;
                }
                Err(payload) => {
                    {
                        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
                        out.remaining -= len;
                        if out.panic.is_none() {
                            out.panic = Some(payload);
                        }
                    }
                    self.drain_slots();
                    break;
                }
            }
        }
        let mut out = self.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        out.states.push(state);
        out.active -= 1;
        if out.remaining == 0 && out.active == 0 {
            self.done_cv.notify_all();
        }
    }
}

/// State the workers park on. One job at a time; `epoch` distinguishes
/// "this job is new to me" from "I already worked on this one and it
/// has not been replaced yet".
struct PoolState {
    job: Option<Arc<dyn JobRun>>,
    epoch: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between jobs; `notify_all` on submit and on
    /// shutdown.
    work_ready: Condvar,
}

/// A long-lived work-stealing thread pool.
///
/// Lifecycle:
/// * **Creation** ([`Pool::new`]) allocates only the shared state; no
///   threads are spawned until the first submission that needs them.
/// * **Sizing**: workers grow on demand. A job asking for `n` threads
///   engages the submitting thread plus up to `n - 1` pool workers
///   (spawned lazily on the first job that needs them, kept forever).
/// * **Submission** ([`Pool::run_batch`]) is serialized — one job in
///   flight; concurrent submitters queue on an internal mutex. The
///   submitter always participates, so the pool makes progress even
///   if every worker is still waking up.
/// * **Drain on drop**: `Drop` flags shutdown, wakes all workers and
///   joins them; any submitted job has already completed (submission
///   holds `&self`).
pub struct Pool {
    shared: Arc<PoolShared>,
    /// Lazily spawned worker handles, joined on drop.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Serializes submissions: at most one job published at a time.
    submit: Mutex<()>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("spawned", &self.workers.lock().unwrap().len()) // INVARIANT: user work is shielded; pool locks cannot be poisoned
            .finish()
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != last_epoch {
                    if let Some(job) = st.job.clone() {
                        last_epoch = st.epoch;
                        break job;
                    }
                    // Job already completed and was cleared: catch up
                    // so a re-submit of epoch+1 still looks new.
                    last_epoch = st.epoch;
                }
                st = shared.work_ready.wait(st).unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            }
        };
        job.participate();
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// An empty pool. No threads are spawned until the first batch that
    /// needs them; workers grow to match the largest `n_threads` ever
    /// requested and persist until drop.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(PoolShared {
                state: Mutex::new(PoolState {
                    job: None,
                    epoch: 0,
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
            submit: Mutex::new(()),
        }
    }

    /// Number of worker threads currently alive (spawned lazily; the
    /// submitting thread is always an extra participant on top).
    pub fn spawned(&self) -> usize {
        self.workers.lock().unwrap().len() // INVARIANT: user work is shielded; pool locks cannot be poisoned
    }

    fn ensure_workers(&self, needed: usize) {
        let mut workers = self.workers.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        while workers.len() < needed {
            let shared = self.shared.clone();
            // JOIN: handles are joined in `Pool::drop` after the
            // shutdown flag wakes every parked worker.
            workers.push(thread::spawn(move || worker_loop(&shared)));
        }
    }

    /// Runs `work(i, &mut state)` for every `i` in `0..total` across
    /// the pool, returning per-item results in index order plus the
    /// participants' final states (padded with `init()` to exactly the
    /// engaged thread count, so state-vector length is deterministic).
    ///
    /// Same guarantees as [`super::run_batch`]: index-order results
    /// identical for any thread count, lowest-index error wins, and
    /// `n_threads <= 1` (or a trivial batch) runs inline with no
    /// synchronization at all. Unlike `run_batch`, closures must be
    /// `'static` because workers outlive the call — clone an `Arc` of
    /// the model/queries into them.
    ///
    /// # Errors
    /// Propagates the lowest-index error returned by `work`.
    ///
    /// # Panics
    /// Re-raises (on this thread) the first panic captured from `work`.
    pub fn run_batch<T, S, G, F>(
        &self,
        total: usize,
        n_threads: usize,
        init: G,
        work: F,
    ) -> Result<(Vec<T>, Vec<S>)>
    where
        T: Send + 'static,
        S: Send + 'static,
        G: Fn() -> S + Send + Sync + 'static,
        F: Fn(usize, &mut S) -> Result<T> + Send + Sync + 'static,
    {
        let n = n_threads.max(1).min(total.max(1));
        if n == 1 {
            let mut state = init();
            let mut out = Vec::with_capacity(total);
            for i in 0..total {
                out.push(work(i, &mut state)?);
            }
            return Ok((out, vec![state]));
        }

        self.ensure_workers(n - 1);

        // Static contiguous split; stealing rebalances skew.
        let base = total / n;
        let extra = total % n;
        let mut slots = Vec::with_capacity(n);
        let mut at = 0usize;
        for s in 0..n {
            let len = base + usize::from(s < extra);
            slots.push(Mutex::new(at..at + len));
            at += len;
        }
        debug_assert_eq!(at, total);

        let job = Arc::new(Job {
            slots,
            next_slot: AtomicUsize::new(0),
            init,
            work,
            done: Mutex::new(JobOutput {
                remaining: total,
                active: 0,
                segments: Vec::new(),
                states: Vec::new(),
                error: None,
                panic: None,
            }),
            done_cv: Condvar::new(),
        });

        let submit = self.submit.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        {
            let mut st = self.shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            st.job = Some(job.clone() as Arc<dyn JobRun>);
            st.epoch += 1;
            self.shared.work_ready.notify_all();
        }

        // The submitter is participant #0: progress is guaranteed even
        // before any worker wakes, and a 1-thread job never parks.
        job.participate();

        let mut out = job.done.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        while !(out.remaining == 0 && out.active == 0) {
            out = job.done_cv.wait(out).unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        }
        let mut segments = std::mem::take(&mut out.segments);
        let mut states = std::mem::take(&mut out.states);
        let error = out.error.take();
        let panic = out.panic.take();
        drop(out);

        {
            let mut st = self.shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            st.job = None;
        }
        drop(submit);

        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        if let Some((_, e)) = error {
            return Err(e);
        }

        // A worker that woke too late to do any work contributes no
        // state; pad so callers see a deterministic count.
        while states.len() < n {
            states.push((job.init)());
        }

        segments.sort_unstable_by_key(|(start, _)| *start);
        let mut out = Vec::with_capacity(total);
        for (start, seg) in segments {
            // INVARIANT: deque chunks are disjoint and cover 0..total
            // exactly when no error occurred, so sorted segments tile.
            assert_eq!(start, out.len(), "pool segments must tile");
            out.extend(seg);
        }
        assert_eq!(out.len(), total, "pool must cover the batch");
        Ok((out, states))
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap(); // INVARIANT: user work is shielded; pool locks cannot be poisoned
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        let handles = std::mem::take(&mut *self.workers.lock().unwrap()); // INVARIANT: user work is shielded; pool locks cannot be poisoned
        for h in handles {
            // JOIN: drop blocks until every worker has observed
            // shutdown and exited its park loop.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sizes shrink under Miri (CI's miri-smoke job runs these tests
    /// interpreted, ~3 orders of magnitude slower than native).
    const N: usize = if cfg!(miri) { 96 } else { 4000 };

    #[test]
    fn pool_matches_serial_for_any_thread_count() {
        let work = |i: usize, acc: &mut u64| -> Result<u64> {
            *acc += 1;
            Ok((i as u64) * 7 + 3)
        };
        let pool = Pool::new();
        let (serial, _) = pool.run_batch(N, 1, || 0u64, work).unwrap();
        for threads in [2, 3, 4, 8] {
            let (parallel, states) = pool.run_batch(N, threads, || 0u64, work).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
            assert_eq!(states.iter().sum::<u64>(), N as u64);
            assert_eq!(states.len(), threads);
        }
    }

    #[test]
    fn pool_reuse_is_stable_across_batches() {
        let pool = Pool::new();
        let expect: Vec<usize> = (0..N).map(|i| i * 2).collect();
        for batch in 0..3 {
            let (out, _) = pool
                .run_batch(N, 4, || (), |i, _: &mut ()| Ok(i * 2))
                .unwrap();
            assert_eq!(out, expect, "batch={batch}");
        }
        // Workers were spawned once and persisted.
        assert_eq!(pool.spawned(), 3);
    }

    #[test]
    fn pool_spawns_lazily_and_grows_on_demand() {
        let pool = Pool::new();
        assert_eq!(pool.spawned(), 0, "creation spawns nothing");
        let (out, states) = pool.run_batch(N, 2, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(out.len(), N);
        assert_eq!(states.len(), 2);
        assert_eq!(pool.spawned(), 1, "2 threads ⇒ submitter + 1 worker");
        // A larger request grows the worker set; it never shrinks.
        let (_, states) = pool.run_batch(N, 8, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(states.len(), 8);
        assert_eq!(pool.spawned(), 7, "8 threads ⇒ submitter + 7 workers");
        let (_, states) = pool.run_batch(N, 2, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(states.len(), 2);
        assert_eq!(pool.spawned(), 7, "workers persist after a smaller job");
    }

    #[test]
    fn pool_returns_lowest_index_error() {
        let n = if cfg!(miri) { 64 } else { 1000 };
        let work = |i: usize, _: &mut ()| -> Result<usize> {
            if i == 37 || i == 612 {
                Err(Error::EmptyInput("boom"))
            } else {
                Ok(i)
            }
        };
        let pool = Pool::new();
        for threads in [1, 4] {
            let err = pool.run_batch(n, threads, || (), work).unwrap_err();
            assert!(
                matches!(err, Error::EmptyInput("boom")),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn pool_empty_and_tiny_batches() {
        let pool = Pool::new();
        let (out, _) = pool.run_batch(0, 8, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert!(out.is_empty());
        let (out, _) = pool.run_batch(3, 8, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let pool = Pool::new();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = pool.run_batch(
                256,
                4,
                || (),
                |i, _: &mut ()| {
                    assert!(i != 100, "deliberate test panic");
                    Ok(i)
                },
            );
        }));
        assert!(caught.is_err(), "worker panic must re-raise on submitter");
        // The pool is still usable after a panicked job.
        let (out, _) = pool.run_batch(8, 4, || (), |i, _: &mut ()| Ok(i)).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn pool_is_shareable_across_submitting_threads() {
        let pool = Arc::new(Pool::new());
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let pool = pool.clone();
                thread::spawn(move || {
                    let (out, _) = pool
                        .run_batch(N, 2, || (), move |i, _: &mut ()| Ok(i + t))
                        .unwrap();
                    assert_eq!(out[0], t);
                    assert_eq!(out[N - 1], N - 1 + t);
                })
            })
            .collect();
        for h in handles {
            // JOIN: submitters joined before the pool is dropped.
            h.join().unwrap();
        }
    }

    #[test]
    fn grains_are_chunks_not_single_indices() {
        // Regression guard for the satellite fix: a steal must take a
        // chunk when the victim has plenty left.
        assert_eq!(steal_grain(1000), 500);
        assert_eq!(steal_grain(3), 1);
        assert_eq!(steal_grain(1), 1);
        assert!(steal_grain(1_000_000) <= MAX_GRAIN);
        assert_eq!(own_grain(4096), 1024);
        assert_eq!(own_grain(1), 1);
    }
}
