//! Lock-free metric primitives and the named registry grouping them.
//!
//! [`Counter`], [`Gauge`], and [`Histogram`] are thin wrappers over
//! relaxed atomics: concurrent writers never coordinate, and snapshots
//! read a point-in-time copy that may be slightly torn *across* metrics
//! but is exact per metric — the same contract the serving daemon's
//! original ad-hoc metrics block offered, now shared by every reporter
//! in the workspace (serve, bench, CLI).
//!
//! A [`Registry`] maps stable string names to metrics. Registration
//! (get-or-create) takes a mutex — it is a cold path, typically run once
//! at startup — while the returned [`Arc`] handles update
//! lock-free on the hot path. [`Registry::snapshot`] renders everything
//! into a plain-data [`RegistrySnapshot`] suitable for wire encoding or
//! JSON rendering.

use std::time::Duration;

use tkdc_sync::atomic::{AtomicU64, Ordering};
use tkdc_sync::{Arc, Mutex};

/// Number of latency-histogram buckets: `2^0 .. 2^30` microseconds
/// (~17 minutes) plus a final overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — counters are independent monotone sums;
        // the RMW is atomic under any ordering and readers only need a
        // point-in-time value, not cross-metric consistency.
        // Model-checked by `registry_*` in tests/model_check.rs.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — snapshots are allowed to be slightly
        // stale/torn across metrics (module contract); exact values are
        // observed after thread join, which supplies the ordering.
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous value that can move both ways (e.g. active
/// connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // ORDERING: Relaxed — gauge arithmetic is atomic per-op; no
        // other memory is published through this value.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (wrapping, like the atomic it wraps; callers keep
    /// their own add/sub pairing honest).
    #[inline]
    pub fn sub(&self, n: u64) {
        // ORDERING: Relaxed — see `add`.
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        // ORDERING: Relaxed — last-writer-wins is the gauge contract;
        // no other memory is published through this value.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ORDERING: Relaxed — point-in-time read, staleness tolerated
        // by the snapshot contract.
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-scale latency histogram: bucket `i` counts samples whose
/// value was at most `2^i` microseconds; the last bucket absorbs
/// overflow.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a microsecond value: the smallest `i` with
    /// `us <= 2^i` (bucket 0 covers `0..=1` µs).
    pub fn bucket_index(us: u128) -> usize {
        let us = us.max(1);
        let i = 128 - us.leading_zeros() as usize - 1; // CAST: < 128
        let i = if us.is_power_of_two() { i } else { i + 1 };
        i.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound (µs) of bucket `i`; the overflow bucket's
    /// bound is `+inf`.
    pub fn bucket_upper_us(i: usize) -> f64 {
        if i >= HISTOGRAM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            (1u64 << i) as f64 // CAST: i < 63, exact in f64
        }
    }

    /// Records one microsecond sample.
    #[inline]
    pub fn record_micros(&self, us: u128) {
        // ORDERING: Relaxed — bucket increments are independent atomic
        // RMWs; totals are read via `buckets` under the same staleness
        // contract as counters.
        self.counts[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros());
    }

    /// Point-in-time `(upper_bound_us, count)` pairs, upper bounds
    /// ascending, last bound `+inf`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.counts
            .iter()
            .enumerate()
            // ORDERING: Relaxed — per-bucket point-in-time reads; the
            // histogram may be torn across buckets while writers run.
            .map(|(i, c)| (Self::bucket_upper_us(i), c.load(Ordering::Relaxed)))
            .collect()
    }
}

/// The metrics a [`Registry`] entry can hold.
#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics (see module docs).
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

/// Plain-data copy of a registry's state, ready for wire encoding or
/// JSON rendering. Entries keep registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, u64)>,
    /// `(name, buckets)` for every histogram.
    pub histograms: Vec<(String, Vec<(f64, u64)>)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first
    /// use. Panics if the name is already registered as a different
    /// metric kind (a programming error, not a runtime condition).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        // Lock sections below are short registrations that do not panic.
        // INVARIANT: no panic can occur while the registry lock is held.
        let mut entries = self.entries.lock().expect("registry poisoned");
        for (n, m) in entries.iter() {
            if n == name {
                match m {
                    Metric::Counter(c) => return Arc::clone(c),
                    // INVARIANT: kind mismatch is a caller bug caught in tests.
                    _ => panic!("metric `{name}` already registered with a different kind"),
                }
            }
        }
        let c = Arc::new(Counter::new());
        entries.push((name.to_string(), Metric::Counter(Arc::clone(&c))));
        c
    }

    /// Returns the gauge named `name`, creating it on first use (see
    /// [`Registry::counter`] for the kind-mismatch contract).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        // Lock sections below are short registrations that do not panic.
        // INVARIANT: no panic can occur while the registry lock is held.
        let mut entries = self.entries.lock().expect("registry poisoned");
        for (n, m) in entries.iter() {
            if n == name {
                match m {
                    Metric::Gauge(g) => return Arc::clone(g),
                    // INVARIANT: kind mismatch is a caller bug caught in tests.
                    _ => panic!("metric `{name}` already registered with a different kind"),
                }
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push((name.to_string(), Metric::Gauge(Arc::clone(&g))));
        g
    }

    /// Returns the histogram named `name`, creating it on first use
    /// (see [`Registry::counter`] for the kind-mismatch contract).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        // Lock sections below are short registrations that do not panic.
        // INVARIANT: no panic can occur while the registry lock is held.
        let mut entries = self.entries.lock().expect("registry poisoned");
        for (n, m) in entries.iter() {
            if n == name {
                match m {
                    Metric::Histogram(h) => return Arc::clone(h),
                    // INVARIANT: kind mismatch is a caller bug caught in tests.
                    _ => panic!("metric `{name}` already registered with a different kind"),
                }
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push((name.to_string(), Metric::Histogram(Arc::clone(&h))));
        h
    }

    /// Adds `n` to the counter named `name` (registering it on first
    /// use). Convenience for call sites that fold externally-aggregated
    /// counters — e.g. a batch's merged `QueryStats` — into the
    /// registry without holding `Arc` handles.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        // Lock sections below are short registrations that do not panic.
        // INVARIANT: no panic can occur while the registry lock is held.
        let entries = self.entries.lock().expect("registry poisoned");
        let mut snap = RegistrySnapshot::default();
        for (name, m) in entries.iter() {
            match m {
                Metric::Counter(c) => snap.counters.push((name.clone(), c.get())),
                Metric::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                Metric::Histogram(h) => snap.histograms.push((name.clone(), h.buckets())),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(5), 3);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(1025), 11);
        assert_eq!(Histogram::bucket_index(u128::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_and_reports() {
        let h = Histogram::new();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(3));
        let buckets = h.buckets();
        assert_eq!(buckets.len(), HISTOGRAM_BUCKETS);
        assert_eq!(buckets[0], (1.0, 1));
        assert_eq!(buckets[2], (4.0, 2));
        assert!(buckets.last().unwrap().0.is_infinite());
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.set(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn registry_get_or_create_returns_same_metric() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x").get(), 2);
        r.add("x", 3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn registry_snapshot_keeps_registration_order() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.gauge("g").set(7);
        r.counter("a").add(1);
        r.histogram("h").record(Duration::from_micros(2));
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("b".to_string(), 2), ("a".to_string(), 1)]
        );
        assert_eq!(snap.gauges, vec![("g".to_string(), 7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].0, "h");
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        tkdc_sync::thread::scope(|s| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("hits");
                    let h = r.histogram("lat");
                    for _ in 0..1000 {
                        c.inc();
                        h.record(Duration::from_micros(5));
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("hits".to_string(), 4000)]);
        let total: u64 = snap.histograms[0].1.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 4000);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
