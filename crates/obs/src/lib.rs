#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-obs
//!
//! Dependency-free (std-only) observability primitives for the tKDC
//! workspace: structured per-query traces and an in-process registry of
//! named counters, gauges, and log2-microsecond latency histograms.
//!
//! tKDC's contribution is *pruning*, and every evaluation question about
//! it — how many kernel evaluations did a query cost, which cutoff rule
//! fired, how did the upper/lower bounds converge — is an observability
//! question. This crate is the shared substrate answering them:
//!
//! * [`trace`] — plain-data [`QueryTrace`] / [`TraceStep`] records of one
//!   `BoundDensity` traversal (the per-refinement bound trajectory plus
//!   final counters), serialized as one JSON object per line under the
//!   versioned schema [`TRACE_SCHEMA`] (`tkdc-trace/v1`).
//! * [`registry`] — lock-free [`Counter`] / [`Gauge`] metrics and a
//!   log-scale latency [`Histogram`], optionally grouped in a named
//!   [`Registry`] whose [`RegistrySnapshot`] is what `tkdc-serve` ships
//!   over the wire and the bench binaries record into `BENCH_*.json`.
//!
//! The crate deliberately knows nothing about the engine: prune causes
//! arrive as strings, counters as `u64`s. `tkdc` (core) maps its own
//! types onto these records behind its `obs` cargo feature, so this
//! crate never becomes a dependency cycle and stays trivially portable.

pub mod registry;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, Registry, RegistrySnapshot, HISTOGRAM_BUCKETS};
pub use trace::{json_f64, json_string, QueryTrace, TraceStep, TraceWriter, TRACE_SCHEMA};
