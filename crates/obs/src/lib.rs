#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-obs
//!
//! Dependency-free (std-only) observability primitives for the tKDC
//! workspace: structured per-query traces and an in-process registry of
//! named counters, gauges, and log2-microsecond latency histograms.
//!
//! tKDC's contribution is *pruning*, and every evaluation question about
//! it — how many kernel evaluations did a query cost, which cutoff rule
//! fired, how did the upper/lower bounds converge — is an observability
//! question. This crate is the shared substrate answering them:
//!
//! * [`trace`] — plain-data [`QueryTrace`] / [`TraceStep`] records of one
//!   `BoundDensity` traversal (the per-refinement bound trajectory plus
//!   final counters), serialized as one JSON object per line under the
//!   versioned schema [`TRACE_SCHEMA`] (`tkdc-trace/v1`).
//! * [`registry`] — lock-free [`Counter`] / [`Gauge`] metrics and a
//!   log-scale latency [`Histogram`], optionally grouped in a named
//!   [`Registry`] whose [`RegistrySnapshot`] is what `tkdc-serve` ships
//!   over the wire and the bench binaries record into `BENCH_*.json`.
//! * [`span`] — hierarchical RAII timing spans ([`SpanSink`] /
//!   [`SpanGuard`]) over a closed stage vocabulary ([`STAGES`]),
//!   exported as `tkdc-trace/v2` JSONL or Chrome `trace_event` JSON
//!   (perfetto-loadable).
//! * [`window`] — [`WindowedHistogram`]: a cumulative latency histogram
//!   paired with a sliding-window view (ring of per-epoch
//!   sub-histograms, rotate-on-write, skip-expired-on-read) so
//!   long-running daemons report *current* p99, not lifetime p99.
//! * [`expo`] — Prometheus text exposition (0.0.4) rendering of
//!   registry snapshots and ad-hoc series ([`Exposition`]).
//!
//! The crate deliberately knows nothing about the engine: prune causes
//! arrive as strings, counters as `u64`s. `tkdc` (core) maps its own
//! types onto these records behind its `obs` cargo feature, so this
//! crate never becomes a dependency cycle and stays trivially portable.

pub mod expo;
pub mod registry;
pub mod span;
pub mod trace;
pub mod window;

pub use expo::{sanitize_name, Exposition};
pub use registry::{Counter, Gauge, Histogram, Registry, RegistrySnapshot, HISTOGRAM_BUCKETS};
pub use span::{
    chrome_trace_json, complete_spans, current_tid, span_v2_lines, CompleteSpan, SpanGuard,
    SpanPhase, SpanRecord, SpanSink, SPAN_SCHEMA, STAGES,
};
pub use trace::{json_f64, json_string, QueryTrace, TraceStep, TraceWriter, TRACE_SCHEMA};
pub use window::{
    merge_buckets, quantile_from_buckets, WindowedHistogram, DEFAULT_SLOT_MILLIS,
    DEFAULT_WINDOW_SLOTS,
};
