//! Sliding-window latency histograms.
//!
//! A [`Histogram`](crate::registry::Histogram) accumulates since process
//! start, which is the right view for totals but useless for "what is
//! p99 *right now*" on a long-running daemon: an hour of fast requests
//! buries a current regression. [`WindowedHistogram`] keeps both views
//! in one structure — a cumulative total plus a ring of per-time-slot
//! sub-histograms whose live suffix is the sliding window.
//!
//! ## Ring mechanics
//!
//! Time is cut into fixed `slot_millis` epochs; epoch `e` maps to ring
//! slot `e % slots`. A recorder stamps its slot with the current epoch
//! (CAS; the winner zeroes the slot's counts — rotate-on-write) before
//! incrementing a bucket, and a reader sums only slots whose stamp lies
//! within the last `slots` epochs — expired slots are skipped without
//! any background thread (rotate-on-read). The window therefore covers
//! between `(slots-1)` and `slots` slot-lengths of wall time.
//!
//! Counts are `Relaxed` atomics and rotation is racy by design: a
//! recorder racing a slot's zeroing can lose its one increment, and a
//! reader can observe a slot mid-zero. The window view is approximate
//! under contention (the cumulative total never loses events); that is
//! the standard trade for a lock-free hot path.
//!
//! Wall-clock-free variants ([`WindowedHistogram::record_at_ms`],
//! [`WindowedHistogram::window_buckets_at`]) take the timestamp as an
//! argument so rotation invariants are deterministically testable.

use std::time::{Duration, Instant};

use tkdc_sync::atomic::{AtomicU64, Ordering};

use crate::registry::{Histogram, HISTOGRAM_BUCKETS};

/// Default number of ring slots (6 × 10 s = a one-minute window).
pub const DEFAULT_WINDOW_SLOTS: usize = 6;
/// Default slot length in milliseconds.
pub const DEFAULT_SLOT_MILLIS: u64 = 10_000;

/// One ring slot: an epoch stamp plus its bucket counts.
///
/// `stamp` holds `epoch + 1` so that the zero-initialized state is
/// distinguishable from a slot legitimately written during epoch 0.
#[derive(Debug)]
struct Slot {
    stamp: AtomicU64,
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Slot {
    fn new() -> Self {
        Self {
            stamp: AtomicU64::new(0),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A cumulative latency histogram paired with a sliding-window view.
#[derive(Debug)]
pub struct WindowedHistogram {
    base: Instant,
    slot_millis: u64,
    slots: Vec<Slot>,
    total: Histogram,
}

impl WindowedHistogram {
    /// A histogram with `slots` ring slots of `slot_millis` each.
    ///
    /// `slots` and `slot_millis` are clamped to at least 1.
    pub fn new(slots: usize, slot_millis: u64) -> Self {
        let slots = slots.max(1);
        Self {
            base: Instant::now(),
            slot_millis: slot_millis.max(1),
            slots: (0..slots).map(|_| Slot::new()).collect(),
            total: Histogram::new(),
        }
    }

    /// The default one-minute window (6 × 10 s slots).
    pub fn default_window() -> Self {
        Self::new(DEFAULT_WINDOW_SLOTS, DEFAULT_SLOT_MILLIS)
    }

    /// Length of the full window in seconds (slot count × slot length,
    /// rounded up to a whole second).
    pub fn window_seconds(&self) -> u64 {
        let ms = self.slot_millis.saturating_mul(self.slots.len() as u64); // CAST: lossless widen
        ms.div_ceil(1000)
    }

    fn now_ms(&self) -> u64 {
        // CAST: u128 ms since a process-local base fits u64 (any uptime).
        self.base.elapsed().as_millis() as u64
    }

    /// Records a latency against the wall clock.
    pub fn record(&self, latency: Duration) {
        self.record_micros(latency.as_micros());
    }

    /// Records a microsecond latency against the wall clock.
    pub fn record_micros(&self, us: u128) {
        self.record_at_ms(self.now_ms(), us);
    }

    /// Records a microsecond latency as of `ms` milliseconds since the
    /// histogram's base. Deterministic core of [`Self::record`]; public
    /// so rotation invariants can be property-tested without sleeping.
    pub fn record_at_ms(&self, ms: u64, us: u128) {
        self.total.record_micros(us);
        let epoch = ms / self.slot_millis;
        // CAST: lossless widen, then a value already reduced mod len.
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let stamp = epoch + 1;
        // ORDERING: Relaxed — stamps and counts carry statistics, not
        // synchronization; a racing reader seeing a mid-rotation slot
        // only perturbs the approximate window view.
        let seen = slot.stamp.load(Ordering::Relaxed);
        if seen != stamp {
            // ORDERING: Relaxed — only the CAS winner zeroes, so a slot
            // is reset at most once per epoch; events racing the reset
            // may be lost from the window (documented above).
            if slot
                .stamp
                .compare_exchange(seen, stamp, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                for c in &slot.counts {
                    // ORDERING: Relaxed — see module docs; window counts
                    // are approximate under concurrent rotation.
                    c.store(0, Ordering::Relaxed);
                }
            }
        }
        // ORDERING: Relaxed — independent statistical increment.
        slot.counts[Histogram::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative since-creation `(upper_bound_us, count)` buckets.
    pub fn total_buckets(&self) -> Vec<(f64, u64)> {
        self.total.buckets()
    }

    /// Sliding-window `(upper_bound_us, count)` buckets as of now.
    pub fn window_buckets(&self) -> Vec<(f64, u64)> {
        self.window_buckets_at(self.now_ms())
    }

    /// Sliding-window buckets as of `ms` milliseconds since base.
    /// Deterministic core of [`Self::window_buckets`].
    pub fn window_buckets_at(&self, ms: u64) -> Vec<(f64, u64)> {
        let epoch = ms / self.slot_millis;
        // Live stamps: (epoch+1) - slots < stamp <= epoch + 1.
        let hi = epoch + 1;
        let lo = hi.saturating_sub(self.slots.len() as u64); // CAST: lossless widen
        let mut sums = [0u64; HISTOGRAM_BUCKETS];
        for slot in &self.slots {
            // ORDERING: Relaxed — point-in-time statistical read.
            let stamp = slot.stamp.load(Ordering::Relaxed);
            if stamp > lo && stamp <= hi {
                for (sum, c) in sums.iter_mut().zip(&slot.counts) {
                    // ORDERING: Relaxed — see module docs.
                    *sum += c.load(Ordering::Relaxed);
                }
            }
        }
        sums.iter()
            .enumerate()
            .map(|(i, &c)| (Histogram::bucket_upper_us(i), c))
            .collect()
    }
}

/// Upper-bound-of-bucket quantile estimate over `(upper_bound_us,
/// count)` pairs: the bound of the first bucket whose cumulative count
/// reaches `ceil(q · total)`. Returns 0.0 for an empty histogram.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
    if total == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // CAST: rank ≤ total, and q·total is finite and non-negative here.
    let rank = ((q * total as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for &(upper, count) in buckets {
        seen += count;
        if seen >= rank {
            return upper;
        }
    }
    // INVARIANT: cumulative count reaches `total >= rank` by the last
    // bucket, so the loop always returns; this arm is unreachable.
    f64::INFINITY
}

/// Element-wise sum of two bucket snapshots with identical bounds.
///
/// # Panics
/// Panics if the snapshots' lengths or upper bounds differ.
/// INVARIANT: merging histograms with different bucket layouts is a
/// programming error, not a data condition.
pub fn merge_buckets(a: &[(f64, u64)], b: &[(f64, u64)]) -> Vec<(f64, u64)> {
    assert_eq!(a.len(), b.len(), "bucket snapshot lengths differ");
    a.iter()
        .zip(b)
        .map(|(&(ua, ca), &(ub, cb))| {
            assert!(ua.total_cmp(&ub).is_eq(), "bucket bounds differ");
            (ua, ca + cb)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(buckets: &[(f64, u64)]) -> u64 {
        buckets.iter().map(|&(_, c)| c).sum()
    }

    #[test]
    fn window_drops_expired_slots_total_keeps_them() {
        let h = WindowedHistogram::new(3, 100);
        h.record_at_ms(0, 10);
        h.record_at_ms(50, 10);
        assert_eq!(count(&h.window_buckets_at(50)), 2);
        // Epochs 0..=2 still cover epoch 0.
        assert_eq!(count(&h.window_buckets_at(250)), 2);
        // Epoch 3 wraps onto slot 0; the old events leave the window.
        assert_eq!(count(&h.window_buckets_at(300)), 0);
        assert_eq!(count(&h.total_buckets()), 2);
    }

    #[test]
    fn rotation_zeroes_reused_slots() {
        let h = WindowedHistogram::new(2, 100);
        h.record_at_ms(0, 10); // epoch 0 → slot 0
        h.record_at_ms(210, 10); // epoch 2 → slot 0 again, must reset
        let w = h.window_buckets_at(210);
        assert_eq!(count(&w), 1);
        assert_eq!(count(&h.total_buckets()), 2);
    }

    #[test]
    fn window_seconds_rounds_up() {
        assert_eq!(WindowedHistogram::new(6, 10_000).window_seconds(), 60);
        assert_eq!(WindowedHistogram::new(3, 1500).window_seconds(), 5);
    }

    #[test]
    fn wall_clock_record_lands_in_current_window() {
        let h = WindowedHistogram::default_window();
        h.record(Duration::from_micros(42));
        assert_eq!(count(&h.window_buckets()), 1);
        assert_eq!(count(&h.total_buckets()), 1);
    }

    #[test]
    fn quantiles_walk_bucket_bounds() {
        let h = WindowedHistogram::new(1, 1000);
        for us in [1u128, 2, 2, 1000] {
            h.record_at_ms(0, us);
        }
        let b = h.window_buckets_at(0);
        // Quantiles land exactly on bucket upper bounds, so bit
        // equality is the correct assertion.
        assert!(quantile_from_buckets(&b, 0.5).total_cmp(&2.0).is_eq());
        assert!(quantile_from_buckets(&b, 1.0).total_cmp(&1024.0).is_eq());
        assert!(quantile_from_buckets(&[], 0.5).total_cmp(&0.0).is_eq());
    }

    #[test]
    fn merge_is_elementwise_sum() {
        let a = vec![(1.0, 2u64), (f64::INFINITY, 3u64)];
        let b = vec![(1.0, 5u64), (f64::INFINITY, 0u64)];
        let m = merge_buckets(&a, &b);
        assert_eq!(m, vec![(1.0, 7), (f64::INFINITY, 3)]);
    }
}
