//! Hierarchical timing spans and their two export formats.
//!
//! A span is one named, monotonic-clock-timed interval on one thread.
//! Spans nest: entering returns an RAII [`SpanGuard`] whose `Drop`
//! records the exit, so the per-thread enter/exit stream is always
//! well-formed (LIFO) — including under panic unwinding, where guard
//! drops still run. All events funnel into one shared [`SpanSink`]
//! whose timestamps share a single monotonic base, so spans recorded by
//! different threads (pool workers, serve connection handlers) land on
//! one coherent timeline.
//!
//! Two export formats render the same record stream:
//!
//! * **`tkdc-trace/v2` JSONL** ([`span_v2_lines`]) — one enter (`"B"`)
//!   or exit (`"E"`) record per line, validated by
//!   `cargo xtask check-trace` (balanced per-thread enter/exit,
//!   monotonic timestamps, known stage names):
//!
//!   ```json
//!   {"schema":"tkdc-trace/v2","kind":"span","ph":"B","name":"classify.traversal","tid":3,"ts_us":120}
//!   {"schema":"tkdc-trace/v2","kind":"span","ph":"E","name":"classify.traversal","tid":3,"ts_us":645}
//!   ```
//!
//! * **Chrome `trace_event` JSON** ([`chrome_trace_json`]) — an array of
//!   complete (`"ph":"X"`) events loadable by Perfetto or
//!   `chrome://tracing` for a flame-graph view of a run.
//!
//! The stage-name vocabulary is closed ([`STAGES`]): the checker rejects
//! unknown names, so a renamed instrumentation site fails CI instead of
//! silently orphaning dashboards.

use std::time::Instant;

use tkdc_sync::atomic::{AtomicU64, Ordering};
use tkdc_sync::{Arc, Mutex, OnceLock};

/// Schema tag carried by every span record line.
pub const SPAN_SCHEMA: &str = "tkdc-trace/v2";

/// The closed vocabulary of span stage names. `cargo xtask check-trace`
/// rejects `tkdc-trace/v2` records whose name is not listed here (the
/// validator keeps its own copy of this list; `stage_list_is_sorted`
/// pins the contract on this side).
///
/// Taxonomy:
/// * `fit.*` — training phases: threshold bootstrap, spatial-index
///   build (kernel + optional grid included), the training-density
///   threshold pass, and the sketch build of estimated backends.
/// * `classify.*` — batch query phases, shared by classification and
///   density-bounding batches: dispatch (setup + job publication),
///   per-chunk traversal on each participating thread, the accumulated
///   leaf kernel-sum share of a worker's traversal time, and
///   index-order reassembly.
/// * `serve.*` — per-request wall time in the serving daemon: the whole
///   request (`serve.request`) and the engine call inside it
///   (`serve.exec`).
pub const STAGES: &[&str] = &[
    "classify.dispatch",
    "classify.leaf_sum",
    "classify.reassembly",
    "classify.traversal",
    "fit.backend_build",
    "fit.bootstrap",
    "fit.threshold",
    "fit.tree_build",
    "serve.exec",
    "serve.request",
];

/// Whether a span record phase marks an enter or an exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPhase {
    /// Span entered (`"ph":"B"`).
    Enter,
    /// Span exited (`"ph":"E"`).
    Exit,
}

impl SpanPhase {
    /// The Chrome `trace_event` phase letter.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanPhase::Enter => "B",
            SpanPhase::Exit => "E",
        }
    }
}

/// One enter or exit event: plain data, ready for either export format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Stage name (one of [`STAGES`] for records the engine emits).
    pub name: &'static str,
    /// Track identifier: a small per-thread integer (see
    /// [`current_tid`]) or a synthetic track id for derived spans.
    pub tid: u64,
    /// Microseconds since the sink's monotonic base.
    pub ts_us: u64,
    /// Enter or exit.
    pub ph: SpanPhase,
}

/// One completed span reconstructed from an enter/exit pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompleteSpan {
    /// Stage name.
    pub name: &'static str,
    /// Track identifier.
    pub tid: u64,
    /// Start, microseconds since the sink's base.
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Nesting depth at enter time (0 = top level) on its track.
    pub depth: u32,
}

/// Process-wide small integer identifying the calling thread.
///
/// `std::thread::ThreadId` has no stable integer form, so tracks are
/// numbered in first-use order instead: dense, deterministic within a
/// run, and stable for the thread's lifetime.
pub fn current_tid() -> u64 {
    // Behind a `OnceLock` because the model-check facade's atomics
    // have a non-`const` constructor; `OnceLock::new` is `const` in
    // both facade arms.
    static NEXT_TID: OnceLock<AtomicU64> = OnceLock::new();
    thread_local! {
        static TID: u64 =
            // ORDERING: Relaxed — the RMW's atomicity alone makes ids
            // unique; no other memory is published through the counter.
            NEXT_TID.get_or_init(|| AtomicU64::new(0)).fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// A shared collector of span events with one monotonic time base.
///
/// Cheap to share (`Arc`) across the threads participating in one unit
/// of work (a fit, a batch, a serve request). Recording takes a short
/// mutex; spans are stage-grained (per phase, per chunk, per request —
/// never per query point), so the lock is far off any hot loop.
#[derive(Debug)]
pub struct SpanSink {
    base: Instant,
    events: Mutex<Vec<SpanRecord>>,
}

impl SpanSink {
    /// A sink whose timestamps count from `base`. Passing one shared
    /// base (e.g. server start) makes sinks created at different times
    /// produce directly mergeable timelines.
    pub fn with_base(base: Instant) -> Self {
        Self {
            base,
            events: Mutex::new(Vec::new()),
        }
    }

    /// A sink based at the moment of creation.
    pub fn new() -> Self {
        Self::with_base(Instant::now())
    }

    /// Microseconds elapsed since the sink's base.
    pub fn now_us(&self) -> u64 {
        // CAST: u128 µs since a process-local base fits u64 (~585k years).
        self.base.elapsed().as_micros() as u64
    }

    fn push(&self, rec: SpanRecord) {
        // A poisoned sink (a panic while pushing) drops this event
        // rather than double-panicking inside a guard's Drop.
        if let Ok(mut ev) = self.events.lock() {
            ev.push(rec);
        }
    }

    /// Enters a span on the calling thread; the returned guard records
    /// the exit when dropped (unwinding included).
    pub fn enter(self: &Arc<Self>, name: &'static str) -> SpanGuard {
        let tid = current_tid();
        self.push(SpanRecord {
            name,
            tid,
            ts_us: self.now_us(),
            ph: SpanPhase::Enter,
        });
        SpanGuard {
            sink: Arc::clone(self),
            name,
            tid,
        }
    }

    /// Records an already-measured interval as a balanced enter/exit
    /// pair on an explicit track. Used for derived spans — e.g. a
    /// worker's accumulated leaf-sum time — that were timed with plain
    /// arithmetic rather than a live guard.
    pub fn record_complete(&self, name: &'static str, tid: u64, ts_us: u64, dur_us: u64) {
        self.push(SpanRecord {
            name,
            tid,
            ts_us,
            ph: SpanPhase::Enter,
        });
        self.push(SpanRecord {
            name,
            tid,
            ts_us: ts_us.saturating_add(dur_us),
            ph: SpanPhase::Exit,
        });
    }

    /// Drains every recorded event, in recording order.
    pub fn take(&self) -> Vec<SpanRecord> {
        match self.events.lock() {
            Ok(mut ev) => std::mem::take(&mut *ev),
            Err(_) => Vec::new(),
        }
    }

    /// Copies the recorded events without draining.
    pub fn records(&self) -> Vec<SpanRecord> {
        match self.events.lock() {
            Ok(ev) => ev.clone(),
            Err(_) => Vec::new(),
        }
    }
}

impl Default for SpanSink {
    fn default() -> Self {
        Self::new()
    }
}

/// RAII handle for an entered span; `Drop` records the exit.
#[derive(Debug)]
pub struct SpanGuard {
    sink: Arc<SpanSink>,
    name: &'static str,
    tid: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.sink.push(SpanRecord {
            name: self.name,
            tid: self.tid,
            ts_us: self.sink.now_us(),
            ph: SpanPhase::Exit,
        });
    }
}

/// Pairs enter/exit records into [`CompleteSpan`]s via a per-track
/// stack. Exits that match no open enter, and enters never exited, are
/// dropped (they can only arise from truncated streams).
pub fn complete_spans(records: &[SpanRecord]) -> Vec<CompleteSpan> {
    // Tracks are few (one per participating thread); a linear-scan map
    // keeps this dependency-free.
    let mut stacks: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut out = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        let stack = match stacks.iter_mut().find(|(tid, _)| *tid == rec.tid) {
            Some((_, s)) => s,
            None => {
                stacks.push((rec.tid, Vec::new()));
                // INVARIANT: just pushed, so last_mut exists.
                &mut stacks.last_mut().expect("pushed entry").1
            }
        };
        match rec.ph {
            SpanPhase::Enter => stack.push(i),
            SpanPhase::Exit => {
                if let Some(open) = stack.pop() {
                    let enter = &records[open];
                    if enter.name == rec.name {
                        out.push(CompleteSpan {
                            name: enter.name,
                            tid: enter.tid,
                            ts_us: enter.ts_us,
                            dur_us: rec.ts_us.saturating_sub(enter.ts_us),
                            // CAST: nesting depth is far below u32.
                            depth: stack.len() as u32,
                        });
                    }
                }
            }
        }
    }
    out.sort_by_key(|s| (s.ts_us, s.tid, s.depth));
    out
}

/// Renders records as `tkdc-trace/v2` JSONL (one record per line, no
/// trailing newline on the last line; empty string for no records).
pub fn span_v2_lines(records: &[SpanRecord]) -> String {
    let mut s = String::with_capacity(records.len() * 96);
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            s.push('\n');
        }
        s.push_str("{\"schema\":\"");
        s.push_str(SPAN_SCHEMA);
        s.push_str("\",\"kind\":\"span\",\"ph\":\"");
        s.push_str(rec.ph.as_str());
        s.push_str("\",\"name\":");
        s.push_str(&crate::trace::json_string(rec.name));
        s.push_str(",\"tid\":");
        s.push_str(&rec.tid.to_string());
        s.push_str(",\"ts_us\":");
        s.push_str(&rec.ts_us.to_string());
        s.push('}');
    }
    s
}

/// Renders records as a Chrome `trace_event` JSON document (an object
/// with a `traceEvents` array of complete `"X"` events), loadable by
/// Perfetto and `chrome://tracing`.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let spans = complete_spans(records);
    let mut s = String::with_capacity(64 + spans.len() * 112);
    s.push_str("{\"traceEvents\":[");
    for (i, sp) in spans.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"name\":");
        s.push_str(&crate::trace::json_string(sp.name));
        s.push_str(",\"cat\":\"tkdc\",\"ph\":\"X\",\"pid\":1,\"tid\":");
        s.push_str(&sp.tid.to_string());
        s.push_str(",\"ts\":");
        s.push_str(&sp.ts_us.to_string());
        s.push_str(",\"dur\":");
        s.push_str(&sp.dur_us.to_string());
        s.push('}');
    }
    s.push_str("],\"displayTimeUnit\":\"ms\"}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_list_is_sorted_and_deduped() {
        // Sorted order keeps the xtask validator's mirror list easy to
        // diff by eye; windows(2) also catches duplicates.
        assert!(
            STAGES.windows(2).all(|w| w[0] < w[1]),
            "STAGES must be sorted"
        );
    }

    #[test]
    fn guards_record_balanced_nested_events() {
        let sink = Arc::new(SpanSink::new());
        {
            let _outer = sink.enter("serve.request");
            let _inner = sink.enter("serve.exec");
        }
        let recs = sink.take();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].ph, SpanPhase::Enter);
        assert_eq!(recs[0].name, "serve.request");
        assert_eq!(recs[1].name, "serve.exec");
        // LIFO: inner exits first.
        assert_eq!(recs[2].ph, SpanPhase::Exit);
        assert_eq!(recs[2].name, "serve.exec");
        assert_eq!(recs[3].name, "serve.request");
        // Monotonic timestamps on one thread.
        assert!(recs.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(sink.take().is_empty(), "take drains");
    }

    #[test]
    fn complete_spans_pair_and_report_depth() {
        let sink = Arc::new(SpanSink::new());
        {
            let _outer = sink.enter("classify.dispatch");
            let _inner = sink.enter("classify.traversal");
        }
        sink.record_complete("classify.leaf_sum", 999, 5, 7);
        let spans = complete_spans(&sink.take());
        assert_eq!(spans.len(), 3);
        let outer = spans
            .iter()
            .find(|s| s.name == "classify.dispatch")
            .unwrap();
        let inner = spans
            .iter()
            .find(|s| s.name == "classify.traversal")
            .unwrap();
        let leaf = spans
            .iter()
            .find(|s| s.name == "classify.leaf_sum")
            .unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert!(inner.ts_us >= outer.ts_us);
        assert!(inner.dur_us <= outer.dur_us);
        assert_eq!(
            (leaf.tid, leaf.ts_us, leaf.dur_us, leaf.depth),
            (999, 5, 7, 0)
        );
    }

    #[test]
    fn unbalanced_records_are_dropped_not_mispaired() {
        let recs = vec![
            SpanRecord {
                name: "serve.request",
                tid: 0,
                ts_us: 0,
                ph: SpanPhase::Enter,
            },
            // Exit for a name that is not on top of the stack.
            SpanRecord {
                name: "serve.exec",
                tid: 0,
                ts_us: 5,
                ph: SpanPhase::Exit,
            },
            // Exit with no matching enter on another track.
            SpanRecord {
                name: "serve.exec",
                tid: 7,
                ts_us: 9,
                ph: SpanPhase::Exit,
            },
        ];
        assert!(complete_spans(&recs).is_empty());
    }

    #[test]
    fn v2_lines_shape() {
        let sink = Arc::new(SpanSink::new());
        drop(sink.enter("fit.bootstrap"));
        let text = span_v2_lines(&sink.take());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("{\"schema\":\"tkdc-trace/v2\",\"kind\":\"span\",\"ph\":\"B\"")
        );
        assert!(lines[1].contains("\"ph\":\"E\""));
        assert!(lines[0].contains("\"name\":\"fit.bootstrap\""));
        assert!(span_v2_lines(&[]).is_empty());
    }

    #[test]
    fn chrome_json_is_loadable_shape() {
        let sink = Arc::new(SpanSink::new());
        drop(sink.enter("classify.dispatch"));
        sink.record_complete("classify.leaf_sum", 3, 1, 2);
        let json = chrome_trace_json(&sink.records());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"classify.leaf_sum\",\"cat\":\"tkdc\""));
        assert!(json.matches("{\"name\":").count() == 2);
    }

    #[test]
    fn exits_survive_panic_unwinding() {
        let sink = Arc::new(SpanSink::new());
        let s2 = Arc::clone(&sink);
        let result = std::panic::catch_unwind(move || {
            let _g = s2.enter("classify.traversal");
            panic!("boom");
        });
        assert!(result.is_err());
        let recs = sink.take();
        assert_eq!(
            recs.len(),
            2,
            "guard drop must record the exit while unwinding"
        );
        assert_eq!(recs[1].ph, SpanPhase::Exit);
    }

    #[test]
    fn tids_are_stable_per_thread_and_distinct_across() {
        let here = current_tid();
        assert_eq!(here, current_tid());
        let other = tkdc_sync::thread::spawn(current_tid)
            .join()
            // INVARIANT: the child only reads a thread-local; it cannot panic.
            .expect("tid thread");
        assert_ne!(here, other);
    }
}
