//! Prometheus text exposition (format version 0.0.4) rendering.
//!
//! Turns a [`RegistrySnapshot`] — plus any ad-hoc series a caller adds —
//! into the plain-text format Prometheus scrapes:
//!
//! ```text
//! # TYPE tkdc_engine_queries counter
//! tkdc_engine_queries{backend="tree"} 1024
//! # TYPE tkdc_serve_latency histogram
//! tkdc_serve_latency_bucket{backend="tree",le="2"} 11
//! tkdc_serve_latency_bucket{backend="tree",le="+Inf"} 640
//! tkdc_serve_latency_count{backend="tree"} 640
//! ```
//!
//! Registry names use dots (`engine.kernel_evals`); Prometheus names
//! may not, so [`sanitize_name`] maps every non-`[a-zA-Z0-9_:]` byte to
//! `_` and prefixes `tkdc_` (keeping the whole workspace in one
//! namespace). Histograms are rendered with *cumulative* `le` bucket
//! counts as the format requires, converted from the registry's
//! per-bucket counts.
//!
//! This module only formats strings; the std-only HTTP responder that
//! serves them lives in `tkdc-serve`.

use crate::registry::RegistrySnapshot;

/// Maps a registry metric name to a valid Prometheus metric name:
/// `tkdc_` prefix, every byte outside `[a-zA-Z0-9_:]` replaced by `_`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(5 + name.len());
    out.push_str("tkdc_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() || ch == '_' || ch == ':' {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Renders a `{k="v",...}` label block; empty string for no labels.
fn label_block(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Formats a bucket upper bound as a `le` label value (`+Inf` for the
/// overflow bucket, integral values without a trailing `.0`).
fn le_value(upper: f64) -> String {
    if upper.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{}", upper)
    }
}

/// Incremental exposition-document builder.
///
/// All `name` arguments are raw registry names; sanitization happens
/// here. `labels` are `(key, value)` pairs attached to every sample of
/// the series.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn type_line(&mut self, name: &str, kind: &str) {
        self.out.push_str("# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    /// Appends a counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, String)], value: u64) {
        let name = sanitize_name(name);
        self.type_line(&name, "counter");
        self.out.push_str(&name);
        self.out.push_str(&label_block(labels));
        self.out.push(' ');
        self.out.push_str(&value.to_string());
        self.out.push('\n');
    }

    /// Appends a gauge sample with a floating-point value.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        let name = sanitize_name(name);
        self.type_line(&name, "gauge");
        self.out.push_str(&name);
        self.out.push_str(&label_block(labels));
        self.out.push(' ');
        if value.is_finite() {
            self.out.push_str(&format!("{}", value));
        } else {
            // Exposition spec spells non-finite values +Inf/-Inf/NaN.
            self.out.push_str(if value.is_nan() {
                "NaN"
            } else if value > 0.0 {
                "+Inf"
            } else {
                "-Inf"
            });
        }
        self.out.push('\n');
    }

    /// Appends a histogram from per-bucket `(upper_bound_us, count)`
    /// pairs (as produced by the registry), converting to the format's
    /// cumulative `le` counts and emitting the `_count` sample.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, String)], buckets: &[(f64, u64)]) {
        let name = sanitize_name(name);
        self.type_line(&name, "histogram");
        let mut cumulative = 0u64;
        for &(upper, count) in buckets {
            cumulative += count;
            self.out.push_str(&name);
            self.out.push_str("_bucket");
            let mut with_le: Vec<(&str, String)> = labels.to_vec();
            with_le.push(("le", le_value(upper)));
            self.out.push_str(&label_block(&with_le));
            self.out.push(' ');
            self.out.push_str(&cumulative.to_string());
            self.out.push('\n');
        }
        self.out.push_str(&name);
        self.out.push_str("_count");
        self.out.push_str(&label_block(labels));
        self.out.push(' ');
        self.out.push_str(&cumulative.to_string());
        self.out.push('\n');
    }

    /// Appends every metric in a registry snapshot, attaching `labels`
    /// to each series. Gauges are rendered at their integral value.
    pub fn registry(&mut self, snap: &RegistrySnapshot, labels: &[(&str, String)]) {
        for (name, value) in &snap.counters {
            self.counter(name, labels, *value);
        }
        for (name, value) in &snap.gauges {
            // CAST: registry gauges are u64; values above 2^53 lose
            // precision in the f64 sample, acceptable for telemetry.
            self.gauge(name, labels, *value as f64);
        }
        for (name, buckets) in &snap.histograms {
            self.histogram(name, labels, buckets);
        }
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names() {
        assert_eq!(
            sanitize_name("engine.kernel_evals"),
            "tkdc_engine_kernel_evals"
        );
        assert_eq!(sanitize_name("pool.worker-0"), "tkdc_pool_worker_0");
    }

    #[test]
    fn counter_and_gauge_lines() {
        let mut e = Exposition::new();
        e.counter("serve.requests", &[("backend", "tree".to_string())], 7);
        e.gauge("pool.utilization", &[], 0.5);
        let doc = e.finish();
        assert!(doc.contains("# TYPE tkdc_serve_requests counter\n"));
        assert!(doc.contains("tkdc_serve_requests{backend=\"tree\"} 7\n"));
        assert!(doc.contains("# TYPE tkdc_pool_utilization gauge\n"));
        assert!(doc.contains("tkdc_pool_utilization 0.5\n"));
    }

    #[test]
    fn histogram_counts_are_cumulative() {
        let mut e = Exposition::new();
        e.histogram(
            "serve.latency",
            &[],
            &[(1.0, 2), (2.0, 3), (f64::INFINITY, 1)],
        );
        let doc = e.finish();
        assert!(doc.contains("tkdc_serve_latency_bucket{le=\"1\"} 2\n"));
        assert!(doc.contains("tkdc_serve_latency_bucket{le=\"2\"} 5\n"));
        assert!(doc.contains("tkdc_serve_latency_bucket{le=\"+Inf\"} 6\n"));
        assert!(doc.contains("tkdc_serve_latency_count 6\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Exposition::new();
        e.counter("x", &[("v", "a\"b\\c\nd".to_string())], 1);
        assert!(e.finish().contains("{v=\"a\\\"b\\\\c\\nd\"}"));
    }

    #[test]
    fn registry_snapshot_renders_every_kind() {
        let reg = crate::Registry::new();
        reg.counter("engine.queries").inc();
        reg.gauge("serve.active").set(3);
        reg.histogram("serve.latency").record_micros(10);
        let mut e = Exposition::new();
        e.registry(&reg.snapshot(), &[("backend", "hbe".to_string())]);
        let doc = e.finish();
        assert!(doc.contains("tkdc_engine_queries{backend=\"hbe\"} 1\n"));
        assert!(doc.contains("tkdc_serve_active{backend=\"hbe\"} 3\n"));
        assert!(doc.contains("tkdc_serve_latency_count{backend=\"hbe\"} 1\n"));
    }
}
