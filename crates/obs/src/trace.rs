//! Per-query trace records and their JSONL serialization.
//!
//! ## Schema (`tkdc-trace/v1`)
//!
//! A trace stream is JSON Lines: one self-describing JSON object per
//! query, no enclosing array, so sinks can append and consumers can
//! stream. Every line carries the schema tag so a single line is
//! verifiable out of context. Field reference:
//!
//! ```json
//! {"schema":"tkdc-trace/v1","query":17,"t_lo":1.2e-3,"t_hi":1.2e-3,
//!  "cause":"threshold_high","lower":2.1e-3,"upper":2.4e-3,
//!  "nodes_expanded":12,"kernel_evals":160,"bound_evals":26,
//!  "steps":[{"nodes":1,"kevals":0,"lower":0.0,"upper":0.31}, ...]}
//! ```
//!
//! * `query` — the query's index within its batch (0 for single-query
//!   runs). Indices make traces comparable across thread counts: the
//!   parallel engine may complete queries in any order, but a trace's
//!   content depends only on its query, so sorting by `query` yields a
//!   schedule-independent stream.
//! * `t_lo` / `t_hi` — the threshold bounds the traversal pruned
//!   against (equal for classification queries). `null` when a bound is
//!   not finite (e.g. the exhaustive oracle's `+inf` upper threshold).
//! * `cause` — why the traversal stopped: `threshold_high`,
//!   `threshold_low`, `tolerance`, `exhausted`, `grid`, `group`
//!   (dual-tree wholesale classification), or `estimated` (a
//!   fixed-budget hbe/rff backend answered; the bounds are
//!   probabilistic, not certified).
//! * `lower` / `upper` — the final density bounds (`upper` is `null`
//!   for grid-pruned queries, where only a lower bound exists;
//!   certified except for `estimated` queries, where the interval
//!   holds with probability `1 − δ`).
//! * `nodes_expanded` / `kernel_evals` / `bound_evals` — this query's
//!   exact share of the engine's `QueryStats` counters, so summing a
//!   fully-sampled stream reproduces the batch aggregate.
//! * `steps` — the bound-convergence trajectory, one entry per
//!   refinement (heap pop), each recording the counters and running
//!   `[lower, upper]` *after* that refinement.

use std::io::{self, Write};

/// Schema tag carried by every trace line.
pub const TRACE_SCHEMA: &str = "tkdc-trace/v1";

/// One refinement step of a traversal: the running counters and bounds
/// after expanding one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStep {
    /// Nodes expanded so far in this query (including this step).
    pub nodes_expanded: u64,
    /// Point-kernel evaluations so far in this query.
    pub kernel_evals: u64,
    /// Running lower density bound after this step.
    pub lower: f64,
    /// Running upper density bound after this step.
    pub upper: f64,
}

/// The complete trace of one query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Index of the query within its batch.
    pub query: u64,
    /// Lower threshold bound the traversal pruned against.
    pub t_lo: f64,
    /// Upper threshold bound the traversal pruned against.
    pub t_hi: f64,
    /// Why the traversal stopped (see module docs for the vocabulary).
    pub cause: &'static str,
    /// Final certified lower bound.
    pub lower: f64,
    /// Final certified upper bound (`NAN` encodes "no upper bound",
    /// serialized as `null`; grid prunes certify only a lower bound).
    pub upper: f64,
    /// Nodes expanded by this query.
    pub nodes_expanded: u64,
    /// Point-kernel evaluations by this query.
    pub kernel_evals: u64,
    /// Bounding-box bound evaluations by this query (grid probe
    /// included).
    pub bound_evals: u64,
    /// Per-refinement bound trajectory.
    pub steps: Vec<TraceStep>,
}

/// Renders a float as a JSON token: non-finite values have no JSON
/// literal and become `null`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:e}` keeps tiny densities exact and compact; a plain `{}`
        // would print hundreds of digits for subnormals.
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Renders a JSON string literal with the escapes JSON requires.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // CAST: char -> u32 is lossless (a scalar value fits in u32).
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl QueryTrace {
    /// Renders the trace as one `tkdc-trace/v1` JSON line (no trailing
    /// newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(128 + 64 * self.steps.len());
        s.push_str("{\"schema\":\"");
        s.push_str(TRACE_SCHEMA);
        s.push_str("\",\"query\":");
        s.push_str(&self.query.to_string());
        s.push_str(",\"t_lo\":");
        s.push_str(&json_f64(self.t_lo));
        s.push_str(",\"t_hi\":");
        s.push_str(&json_f64(self.t_hi));
        s.push_str(",\"cause\":");
        s.push_str(&json_string(self.cause));
        s.push_str(",\"lower\":");
        s.push_str(&json_f64(self.lower));
        s.push_str(",\"upper\":");
        s.push_str(&json_f64(self.upper));
        s.push_str(",\"nodes_expanded\":");
        s.push_str(&self.nodes_expanded.to_string());
        s.push_str(",\"kernel_evals\":");
        s.push_str(&self.kernel_evals.to_string());
        s.push_str(",\"bound_evals\":");
        s.push_str(&self.bound_evals.to_string());
        s.push_str(",\"steps\":[");
        for (i, st) in self.steps.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"nodes\":");
            s.push_str(&st.nodes_expanded.to_string());
            s.push_str(",\"kevals\":");
            s.push_str(&st.kernel_evals.to_string());
            s.push_str(",\"lower\":");
            s.push_str(&json_f64(st.lower));
            s.push_str(",\"upper\":");
            s.push_str(&json_f64(st.upper));
            s.push('}');
        }
        s.push_str("]}");
        s
    }
}

/// A JSONL trace sink over any writer (file, socket, buffer).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    inner: W,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a writer. Callers who want buffering should pass a
    /// `BufWriter`; the sink itself writes one line per trace.
    pub fn new(inner: W) -> Self {
        Self { inner }
    }

    /// Appends one trace as one line.
    pub fn write_trace(&mut self, trace: &QueryTrace) -> io::Result<()> {
        self.inner.write_all(trace.to_json_line().as_bytes())?;
        self.inner.write_all(b"\n")
    }

    /// Appends every trace in order and flushes.
    pub fn write_all(&mut self, traces: &[QueryTrace]) -> io::Result<()> {
        for t in traces {
            self.write_trace(t)?;
        }
        self.inner.flush()
    }

    /// Unwraps the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueryTrace {
        QueryTrace {
            query: 3,
            t_lo: 1.5e-3,
            t_hi: 1.5e-3,
            cause: "threshold_high",
            lower: 2.0e-3,
            upper: 2.5e-3,
            nodes_expanded: 2,
            kernel_evals: 16,
            bound_evals: 6,
            steps: vec![
                TraceStep {
                    nodes_expanded: 1,
                    kernel_evals: 0,
                    lower: 0.0,
                    upper: 0.5,
                },
                TraceStep {
                    nodes_expanded: 2,
                    kernel_evals: 16,
                    lower: 2.0e-3,
                    upper: 2.5e-3,
                },
            ],
        }
    }

    #[test]
    fn json_line_shape() {
        let line = sample().to_json_line();
        assert!(line.starts_with("{\"schema\":\"tkdc-trace/v1\",\"query\":3,"));
        assert!(line.contains("\"cause\":\"threshold_high\""));
        assert!(line.contains("\"steps\":[{\"nodes\":1,"));
        assert!(line.ends_with("}]}"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut t = sample();
        t.upper = f64::NAN;
        t.t_hi = f64::INFINITY;
        let line = t.to_json_line();
        assert!(line.contains("\"upper\":null"));
        assert!(line.contains("\"t_hi\":null"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn writer_emits_one_line_per_trace() {
        let mut w = TraceWriter::new(Vec::new());
        w.write_all(&[sample(), sample()]).unwrap();
        let buf = String::from_utf8(w.into_inner()).unwrap();
        assert_eq!(buf.lines().count(), 2);
        for line in buf.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
