#![forbid(unsafe_code)]
//! `tkdc` — command-line density classification over CSV datasets.
//!
//! Subcommands:
//!
//! * `train     --input data.csv --model out.tkdc [params]` — fit + save
//! * `classify  --model m.tkdc --input q.csv [--output labels.csv]`
//! * `density   --model m.tkdc --input q.csv` — certified bounds
//! * `outliers  --input data.csv [params]` — one-shot training-set outliers
//! * `threshold --input data.csv [params]` — estimate `t(p)` only
//! * `serve     --model m.tkdc --addr 127.0.0.1:7117` — TCP serving daemon
//!
//! Shared parameter flags: `--p`, `--epsilon`, `--delta`, `--bandwidth`,
//! `--seed`, `--header` (first CSV line is a header),
//! `--kernel gaussian|epanechnikov`.

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
