//! Flag parsing for the CLI: `--name value` pairs plus bare boolean
//! flags, with typed accessors and unknown-flag detection.

use std::collections::HashMap;
use tkdc::{BackendSpec, HbeParams, Params, RffParams};
use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_coreset::CompactorKind;
use tkdc_kernel::KernelKind;

/// Parsed command-line flags.
#[derive(Debug, Clone, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    bools: Vec<String>,
}

/// Flags every subcommand understands.
pub const COMMON_FLAGS: &[&str] = &[
    "input",
    "output",
    "model",
    "p",
    "epsilon",
    "delta",
    "bandwidth",
    "seed",
    "header",
    "kernel",
    "columns",
    "threads",
    "quiet",
    "trace-out",
    "trace-sample",
    "coreset-eps",
    "compactor",
    "weighted",
    "backend",
    "hbe-tables",
    "hbe-hashes",
    "hbe-bucket-width",
    "hbe-samples",
    "rff-features",
    "span-out",
];

/// Flags the `compact` subcommand understands: streaming CSV in,
/// weighted CSV out — no training parameters.
pub const COMPACT_FLAGS: &[&str] = &[
    "input",
    "output",
    "coreset-eps",
    "compactor",
    "seed",
    "header",
    "columns",
    "quiet",
];

/// Flags the `serve` subcommand understands (a daemon takes no dataset
/// or training parameters — only a fitted model and server knobs).
pub const SERVE_FLAGS: &[&str] = &[
    "model",
    "addr",
    "threads",
    "max-conns",
    "timeout-ms",
    "quiet",
    "trace-out",
    "trace-sample",
    "metrics-addr",
    "slow-ms",
    "slow-log",
    "span-out",
];

/// Flags the `stats` subcommand understands (polls a running daemon's
/// `Stats` frame; `--watch` re-renders until interrupted).
pub const STATS_FLAGS: &[&str] = &["addr", "watch", "interval-ms", "count", "quiet"];

/// Flags the `explain` subcommand understands (one query point against a
/// saved model; the point itself is a positional argument or `--point`).
pub const EXPLAIN_FLAGS: &[&str] = &["model", "point", "trace-out", "span-out", "quiet"];

impl Flags {
    /// Parses `args`, validating every flag against `allowed`.
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Self> {
        let mut flags = Flags::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(invalid_param(
                    "args",
                    format!("unexpected argument `{arg}`"),
                ));
            };
            if !allowed.contains(&name) {
                return Err(invalid_param("args", format!("unknown flag `--{name}`")));
            }
            // Boolean flags take no value.
            if matches!(name, "header" | "quiet" | "weighted" | "watch") {
                flags.bools.push(name.to_string());
                i += 1;
                continue;
            }
            let Some(value) = args.get(i + 1) else {
                return Err(invalid_param(
                    "args",
                    format!("flag `--{name}` needs a value"),
                ));
            };
            flags.values.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(flags)
    }

    /// String value of a flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// Required string value.
    pub fn require(&self, name: &str) -> Result<&str> {
        self.get(name)
            .ok_or_else(|| invalid_param("args", format!("missing required flag `--{name}`")))
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.bools.iter().any(|b| b == name)
    }

    /// Typed float value.
    pub fn get_f64(&self, name: &str) -> Result<Option<f64>> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| {
                invalid_param("args", format!("`--{name}` expects a number, got `{v}`"))
            }),
        }
    }

    /// Typed integer value.
    pub fn get_u64(&self, name: &str) -> Result<Option<u64>> {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| {
                invalid_param("args", format!("`--{name}` expects an integer, got `{v}`"))
            }),
        }
    }

    /// Worker-thread count from `--threads`, defaulting to the machine's
    /// available parallelism (1 when that cannot be determined).
    pub fn threads(&self) -> Result<usize> {
        match self.get_u64("threads")? {
            Some(0) => Err(invalid_param("threads", "`--threads` must be at least 1")),
            Some(n) => Ok(n as usize), // CAST: thread counts are tiny
            None => Ok(tkdc_sync::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)),
        }
    }

    /// Trace sampling interval from `--trace-sample`: record every
    /// `n`-th query (default 1 = all; 0 disables tracing even when a
    /// `--trace-out` sink is set).
    pub fn trace_every(&self) -> Result<u64> {
        Ok(self.get_u64("trace-sample")?.unwrap_or(1))
    }

    /// Coreset accuracy from `--coreset-eps` (`None` = full-data fit).
    pub fn coreset_eps(&self) -> Result<Option<f64>> {
        self.get_f64("coreset-eps")
    }

    /// Compactor choice from `--compactor` for a `dim`-dimensional
    /// dataset: `grid` | `sample` | `auto` (the default), where `auto`
    /// picks by dimension via [`CompactorKind::auto_for_dim`].
    pub fn compactor(&self, dim: usize) -> Result<CompactorKind> {
        match self.get("compactor") {
            None | Some("auto") => Ok(CompactorKind::auto_for_dim(dim)),
            Some("grid") => Ok(CompactorKind::Grid),
            Some("sample") => Ok(CompactorKind::Sample),
            Some(other) => Err(invalid_param(
                "compactor",
                format!("expected grid|sample|auto, got `{other}`"),
            )),
        }
    }

    /// Column subset, e.g. `--columns 3,5`.
    pub fn columns(&self) -> Result<Option<Vec<usize>>> {
        match self.get("columns") {
            None => Ok(None),
            Some(spec) => spec
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse::<usize>()
                        .map_err(|_| invalid_param("args", format!("bad column index `{tok}`")))
                })
                .collect::<Result<Vec<usize>>>()
                .map(Some),
        }
    }

    /// Builds tKDC parameters from the shared flags.
    pub fn params(&self) -> Result<Params> {
        let mut params = Params::default();
        if let Some(p) = self.get_f64("p")? {
            params.p = p;
        }
        if let Some(e) = self.get_f64("epsilon")? {
            params.epsilon = e;
        }
        if let Some(d) = self.get_f64("delta")? {
            params.delta = d;
        }
        if let Some(b) = self.get_f64("bandwidth")? {
            params.bandwidth_factor = b;
        }
        if let Some(s) = self.get_u64("seed")? {
            params.seed = s;
        }
        if let Some(k) = self.get("kernel") {
            params.kernel = match k {
                "gaussian" => KernelKind::Gaussian,
                "epanechnikov" => KernelKind::Epanechnikov,
                other => {
                    return Err(invalid_param(
                        "kernel",
                        format!("expected gaussian|epanechnikov, got `{other}`"),
                    ))
                }
            };
        }
        params.backend = self.backend()?;
        params.validate()?;
        Ok(params)
    }

    /// Estimator backend from `--backend tree|hbe|rff` plus the
    /// per-backend tuning flags (`--hbe-*`, `--rff-features`). Flags for
    /// a backend other than the selected one are rejected so a typo'd
    /// combination fails loudly instead of silently using defaults.
    fn backend(&self) -> Result<BackendSpec> {
        let name = self.get("backend").unwrap_or("tree");
        const HBE_FLAGS: &[&str] = &[
            "hbe-tables",
            "hbe-hashes",
            "hbe-bucket-width",
            "hbe-samples",
        ];
        const RFF_FLAGS: &[&str] = &["rff-features"];
        let stray =
            |flags: &'static [&'static str]| flags.iter().find(|f| self.get(f).is_some()).copied();
        match name {
            "tree" => {
                if let Some(f) = stray(HBE_FLAGS).or_else(|| stray(RFF_FLAGS)) {
                    return Err(invalid_param(
                        "backend",
                        format!("`--{f}` requires `--backend hbe|rff`"),
                    ));
                }
                Ok(BackendSpec::Tree)
            }
            "hbe" => {
                if let Some(f) = stray(RFF_FLAGS) {
                    return Err(invalid_param(
                        "backend",
                        format!("`--{f}` requires `--backend rff`"),
                    ));
                }
                let mut hp = HbeParams::default();
                if let Some(t) = self.get_u64("hbe-tables")? {
                    hp.tables = t as usize; // CAST: table counts are tiny
                }
                if let Some(k) = self.get_u64("hbe-hashes")? {
                    hp.hashes = k as usize; // CAST: hash counts are tiny
                }
                if let Some(w) = self.get_f64("hbe-bucket-width")? {
                    hp.bucket_width = w;
                }
                if let Some(m) = self.get_u64("hbe-samples")? {
                    hp.samples = m as usize; // CAST: sample counts are tiny
                }
                Ok(BackendSpec::Hbe(hp))
            }
            "rff" => {
                if let Some(f) = stray(HBE_FLAGS) {
                    return Err(invalid_param(
                        "backend",
                        format!("`--{f}` requires `--backend hbe`"),
                    ));
                }
                let mut rp = RffParams::default();
                if let Some(d) = self.get_u64("rff-features")? {
                    rp.features = d as usize; // CAST: feature counts are small
                }
                Ok(BackendSpec::Rff(rp))
            }
            other => Err(invalid_param(
                "backend",
                format!("expected tree|hbe|rff, got `{other}`"),
            )),
        }
    }
}

/// Wraps a message into the workspace error type.
pub fn usage_error(msg: impl Into<String>) -> Error {
    invalid_param("usage", msg)
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs_and_bools() {
        let f = Flags::parse(
            &argv(&["--input", "a.csv", "--p", "0.05", "--header"]),
            COMMON_FLAGS,
        )
        .unwrap();
        assert_eq!(f.require("input").unwrap(), "a.csv");
        assert_eq!(f.get_f64("p").unwrap(), Some(0.05));
        assert!(f.has("header"));
        assert!(!f.has("quiet"));
    }

    #[test]
    fn rejects_unknown_flags_and_bare_args() {
        assert!(Flags::parse(&argv(&["--bogus", "1"]), COMMON_FLAGS).is_err());
        assert!(Flags::parse(&argv(&["stray"]), COMMON_FLAGS).is_err());
        assert!(Flags::parse(&argv(&["--input"]), COMMON_FLAGS).is_err());
    }

    #[test]
    fn typed_accessors_validate() {
        let f = Flags::parse(&argv(&["--p", "abc"]), COMMON_FLAGS).unwrap();
        assert!(f.get_f64("p").is_err());
        let f = Flags::parse(&argv(&["--seed", "1.5"]), COMMON_FLAGS).unwrap();
        assert!(f.get_u64("seed").is_err());
    }

    #[test]
    fn params_from_flags() {
        let f = Flags::parse(
            &argv(&[
                "--p",
                "0.1",
                "--epsilon",
                "0.05",
                "--kernel",
                "epanechnikov",
            ]),
            COMMON_FLAGS,
        )
        .unwrap();
        let params = f.params().unwrap();
        assert_eq!(params.p, 0.1);
        assert_eq!(params.epsilon, 0.05);
        assert_eq!(params.kernel, KernelKind::Epanechnikov);
    }

    #[test]
    fn params_reject_bad_kernel_and_domain() {
        let f = Flags::parse(&argv(&["--kernel", "box"]), COMMON_FLAGS).unwrap();
        assert!(f.params().is_err());
        let f = Flags::parse(&argv(&["--p", "2.0"]), COMMON_FLAGS).unwrap();
        assert!(f.params().is_err());
    }

    #[test]
    fn backend_flags() {
        let f = Flags::parse(&argv(&[]), COMMON_FLAGS).unwrap();
        assert!(matches!(f.params().unwrap().backend, BackendSpec::Tree));

        let f = Flags::parse(
            &argv(&[
                "--backend",
                "hbe",
                "--hbe-tables",
                "16",
                "--hbe-samples",
                "4",
            ]),
            COMMON_FLAGS,
        )
        .unwrap();
        match f.params().unwrap().backend {
            BackendSpec::Hbe(hp) => {
                assert_eq!(hp.tables, 16);
                assert_eq!(hp.samples, 4);
                assert_eq!(hp.hashes, HbeParams::default().hashes);
            }
            other => panic!("expected hbe, got {other:?}"),
        }

        let f = Flags::parse(
            &argv(&["--backend", "rff", "--rff-features", "512"]),
            COMMON_FLAGS,
        )
        .unwrap();
        match f.params().unwrap().backend {
            BackendSpec::Rff(rp) => assert_eq!(rp.features, 512),
            other => panic!("expected rff, got {other:?}"),
        }
    }

    #[test]
    fn backend_flags_reject_mismatches() {
        // Unknown backend name.
        let f = Flags::parse(&argv(&["--backend", "exact"]), COMMON_FLAGS).unwrap();
        assert!(f.params().is_err());
        // HBE tuning flag without the HBE backend.
        let f = Flags::parse(&argv(&["--hbe-tables", "8"]), COMMON_FLAGS).unwrap();
        assert!(f.params().is_err());
        // RFF flag with the HBE backend.
        let f = Flags::parse(
            &argv(&["--backend", "hbe", "--rff-features", "256"]),
            COMMON_FLAGS,
        )
        .unwrap();
        assert!(f.params().is_err());
    }

    #[test]
    fn threads_flag() {
        let f = Flags::parse(&argv(&["--threads", "4"]), COMMON_FLAGS).unwrap();
        assert_eq!(f.threads().unwrap(), 4);
        let f = Flags::parse(&argv(&["--threads", "0"]), COMMON_FLAGS).unwrap();
        assert!(f.threads().is_err());
        // Default: the machine's available parallelism, always >= 1.
        let f = Flags::parse(&argv(&[]), COMMON_FLAGS).unwrap();
        assert!(f.threads().unwrap() >= 1);
    }

    #[test]
    fn trace_flags() {
        let f = Flags::parse(
            &argv(&["--trace-out", "t.jsonl", "--trace-sample", "8"]),
            COMMON_FLAGS,
        )
        .unwrap();
        assert_eq!(f.get("trace-out"), Some("t.jsonl"));
        assert_eq!(f.trace_every().unwrap(), 8);
        // Default: trace every query.
        let f = Flags::parse(&argv(&[]), COMMON_FLAGS).unwrap();
        assert_eq!(f.trace_every().unwrap(), 1);
    }

    #[test]
    fn column_spec() {
        let f = Flags::parse(&argv(&["--columns", "3,5"]), COMMON_FLAGS).unwrap();
        assert_eq!(f.columns().unwrap(), Some(vec![3, 5]));
        let f = Flags::parse(&argv(&["--columns", "a"]), COMMON_FLAGS).unwrap();
        assert!(f.columns().is_err());
    }
}
