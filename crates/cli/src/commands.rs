//! Subcommand implementations for the `tkdc` CLI.

use crate::args::{usage_error, Flags, COMMON_FLAGS, SERVE_FLAGS};
use std::io::Write;
use tkdc::model_io::{load_model, save_model};
use tkdc::{Classifier, ExecPolicy, Label};
use tkdc_common::csv::{read_csv, CsvOptions};
use tkdc_common::error::Result;
use tkdc_common::Matrix;
use tkdc_serve::{ServeConfig, Server};

const USAGE: &str = "\
tkdc — density classification over CSV datasets (tKDC, SIGMOD 2017)

USAGE:
    tkdc <subcommand> [flags]

SUBCOMMANDS:
    train      fit a model and save it:
                 tkdc train --input data.csv --model out.tkdc
    classify   classify query rows with a saved model:
                 tkdc classify --model out.tkdc --input queries.csv
    density    print certified density bounds per query row:
                 tkdc density --model out.tkdc --input queries.csv
    outliers   one-shot: fit on the input and list its low-density rows:
                 tkdc outliers --input data.csv --p 0.01
    threshold  estimate the density threshold t(p) only
    serve      serve a saved model over TCP (binary protocol, see DESIGN.md):
                 tkdc serve --model out.tkdc --addr 127.0.0.1:7117
    help       print this message

SHARED FLAGS:
    --input FILE        input CSV (numeric; blank/'#' lines skipped)
    --header            treat the first CSV line as a header
    --columns I,J,...   use only these 0-based columns
    --output FILE       write results to FILE instead of stdout
    --model FILE        model path (train: write; classify: read)
    --p P               classification rate (default 0.01)
    --epsilon E         multiplicative error tolerance (default 0.01)
    --delta D           bootstrap failure probability (default 0.01)
    --bandwidth B       Scott's-rule scale factor (default 1.0)
    --kernel K          gaussian | epanechnikov (default gaussian)
    --seed N            RNG seed (default from Params)
    --threads N         worker threads for training and batch queries
                        (default: all available cores; results are
                        identical for any thread count)
    --quiet             suppress progress logging

SERVE FLAGS:
    --addr HOST:PORT    listen address (default 127.0.0.1:7117; port 0
                        picks an ephemeral port, printed on startup)
    --max-conns N       concurrent-connection cap (default 64); further
                        clients get an over-capacity protocol error
    --timeout-ms N      per-connection read/write timeout (default 10000)
";

/// Dispatches a full command line.
pub fn run(argv: &[String]) -> Result<()> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "train" => train(rest),
        "classify" => classify(rest),
        "density" => density(rest),
        "outliers" => outliers(rest),
        "threshold" => threshold(rest),
        "serve" => serve(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(usage_error(format!(
            "unknown subcommand `{other}` (try `tkdc help`)"
        ))),
    }
}

fn load_input(flags: &Flags) -> Result<Matrix> {
    let path = flags.require("input")?;
    let opts = CsvOptions {
        has_header: flags.has("header"),
        skip_bad_rows: true,
        ..CsvOptions::default()
    };
    let mut data = read_csv(path, &opts)?;
    if let Some(cols) = flags.columns()? {
        data = data.select_columns(&cols)?;
    }
    if data.rows() == 0 {
        return Err(usage_error(format!("no numeric rows parsed from `{path}`")));
    }
    Ok(data)
}

fn fit(flags: &Flags, data: &Matrix) -> Result<Classifier> {
    let params = flags.params()?;
    let threads = flags.threads()?;
    if !flags.has("quiet") {
        eprintln!(
            "training on {} rows × {} cols (p={}, ε={}, kernel={:?}, {threads} threads) …",
            data.rows(),
            data.cols(),
            params.p,
            params.epsilon,
            params.kernel
        );
    }
    let clf = Classifier::fit_with_threads(data, &params, threads)?;
    if !flags.has("quiet") {
        eprintln!("threshold t(p) = {:.6e}", clf.threshold());
    }
    Ok(clf)
}

/// Writes lines either to `--output` or stdout.
fn emit(flags: &Flags, lines: impl Iterator<Item = String>) -> Result<()> {
    match flags.get("output") {
        Some(path) => {
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            for line in lines {
                writeln!(f, "{line}")?;
            }
            f.flush()?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            for line in lines {
                writeln!(lock, "{line}")?;
            }
        }
    }
    Ok(())
}

fn train(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let data = load_input(&flags)?;
    let model_path = flags.require("model")?;
    let clf = fit(&flags, &data)?;
    save_model(&clf, model_path)?;
    if !flags.has("quiet") {
        eprintln!("model written to {model_path}");
    }
    Ok(())
}

fn classify(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let model_path = flags.require("model")?;
    let clf = load_model(model_path)?;
    let queries = load_input(&flags)?;
    let policy = ExecPolicy::with_threads(flags.threads()?);
    let (labels, stats) = clf.classify_batch_with(&queries, policy)?;
    emit(
        &flags,
        labels.iter().map(|l| {
            match l {
                Label::High => "HIGH",
                Label::Low => "LOW",
            }
            .to_string()
        }),
    )?;
    if !flags.has("quiet") {
        eprintln!(
            "classified {} queries ({:.1} kernel evals/query)",
            labels.len(),
            stats.kernels_per_query()
        );
    }
    Ok(())
}

fn density(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let model_path = flags.require("model")?;
    let clf = load_model(model_path)?;
    let queries = load_input(&flags)?;
    let policy = ExecPolicy::with_threads(flags.threads()?);
    let (bounds, stats) = clf.bound_density_batch_with(&queries, policy)?;
    emit(
        &flags,
        bounds
            .iter()
            .map(|b| format!("{:e},{:e},{:?}", b.lower, b.upper, b.cause)),
    )?;
    if !flags.has("quiet") {
        eprintln!(
            "bounded {} densities against t(p) = {:.6e} ({:.1} kernel evals/query)",
            queries.rows(),
            clf.threshold(),
            stats.kernels_per_query()
        );
    }
    Ok(())
}

fn outliers(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let data = load_input(&flags)?;
    let clf = fit(&flags, &data)?;
    let (labels, _) = clf.classify_batch_with(&data, ExecPolicy::with_threads(flags.threads()?))?;
    let lines = labels
        .iter()
        .enumerate()
        .filter(|&(_i, &l)| l == Label::Low)
        .map(|(i, &_l)| {
            let row = data
                .row(i)
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("{i},{row}")
        });
    emit(&flags, lines)?;
    if !flags.has("quiet") {
        let low = labels.iter().filter(|&&l| l == Label::Low).count();
        eprintln!(
            "{low} of {} rows below the density threshold ({:.2}%)",
            labels.len(),
            100.0 * low as f64 / labels.len() as f64
        );
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, SERVE_FLAGS)?;
    let model_path = flags.require("model")?;
    let clf = load_model(model_path)?;
    let config = ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7117").to_string(),
        threads: flags.get_u64("threads")?.map(|n| n as usize), // CAST: thread counts are tiny
        max_conns: match flags.get_u64("max-conns")? {
            Some(0) => return Err(usage_error("`--max-conns` must be at least 1")),
            Some(n) => n as usize, // CAST: connection caps are small
            None => ServeConfig::default().max_conns,
        },
        timeout: match flags.get_u64("timeout-ms")? {
            Some(0) => return Err(usage_error("`--timeout-ms` must be at least 1")),
            Some(ms) => std::time::Duration::from_millis(ms),
            None => ServeConfig::default().timeout,
        },
    };
    let server = Server::bind(config, clf)?;
    let addr = server.local_addr()?;
    if !flags.has("quiet") {
        eprintln!("tkdc-serve listening on {addr} (model: {model_path})");
    }
    server.run()?;
    if !flags.has("quiet") {
        eprintln!("tkdc-serve drained and stopped");
    }
    Ok(())
}

fn threshold(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let data = load_input(&flags)?;
    let clf = fit(&flags, &data)?;
    let report = clf.fit_report();
    println!("t(p)      = {:.6e}", clf.threshold());
    println!(
        "bounds    = [{:.6e}, {:.6e}]  (1-δ confidence)",
        report.threshold_bounds.lower, report.threshold_bounds.upper
    );
    println!("bootstrap rounds: {:?}", report.bootstrap.rounds);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_csv(path: &std::path::Path, rows: &[[f64; 2]]) {
        let mut s = String::new();
        for r in rows {
            s.push_str(&format!("{},{}\n", r[0], r[1]));
        }
        std::fs::write(path, s).unwrap();
    }

    fn sample_data() -> Vec<[f64; 2]> {
        // A deterministic blob plus one far outlier.
        let mut rows = Vec::new();
        let mut state = 1u64;
        let mut next = move || {
            // xorshift for test-local determinism
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for _ in 0..600 {
            rows.push([next() * 2.0, next() * 2.0]);
        }
        rows.push([50.0, 50.0]);
        rows
    }

    #[test]
    fn train_classify_round_trip() {
        let dir = std::env::temp_dir().join("tkdc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        write_csv(&data_path, &sample_data());

        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--p",
            "0.05",
            "--quiet",
        ]))
        .unwrap();
        assert!(model_path.exists());

        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let labels = std::fs::read_to_string(&out_path).unwrap();
        let lines: Vec<&str> = labels.lines().collect();
        assert_eq!(lines.len(), 601);
        // The planted far point must be LOW.
        assert_eq!(lines[600], "LOW");
        assert!(lines.iter().filter(|&&l| l == "HIGH").count() > 500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn outliers_lists_planted_point() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_outliers");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let out_path = dir.join("outliers.csv");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "outliers",
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--p",
            "0.01",
            "--quiet",
        ]))
        .unwrap();
        let out = std::fs::read_to_string(&out_path).unwrap();
        assert!(
            out.lines().any(|l| l.starts_with("600,")),
            "planted outlier (row 600) missing from: {out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn density_subcommand_emits_bounds() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_density");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("bounds.csv");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "density",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let out = std::fs::read_to_string(&out_path).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 601);
        // Each line: lower,upper,cause with lower <= upper.
        for line in &lines {
            let parts: Vec<&str> = line.split(',').collect();
            assert_eq!(parts.len(), 3, "bad line {line}");
            let lo: f64 = parts[0].parse().unwrap();
            let hi: f64 = parts[1].parse().unwrap();
            assert!(lo <= hi);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_classify_flag_accepted() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_par");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--threads",
            "4",
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out_path).unwrap().lines().count(),
            601
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_subcommand_fails() {
        let argv: Vec<String> = vec!["explode".into()];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn help_and_empty_ok() {
        assert!(run(&[]).is_ok());
        assert!(run(&["help".to_string()]).is_ok());
    }

    #[test]
    fn missing_input_errors() {
        let argv: Vec<String> = vec!["threshold".into()];
        assert!(run(&argv).is_err());
        let argv: Vec<String> = vec![
            "threshold".into(),
            "--input".into(),
            "/nonexistent.csv".into(),
        ];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn column_selection_applies() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_cols");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.csv");
        // 3 columns; select 0 and 2.
        let mut s = String::new();
        let rows = sample_data();
        for r in &rows {
            s.push_str(&format!("{},999,{}\n", r[0], r[1]));
        }
        std::fs::write(&data_path, s).unwrap();
        let argv = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "threshold",
            "--input",
            data_path.to_str().unwrap(),
            "--columns",
            "0,2",
            "--quiet",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
