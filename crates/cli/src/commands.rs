//! Subcommand implementations for the `tkdc` CLI.

use crate::args::{
    usage_error, Flags, COMMON_FLAGS, COMPACT_FLAGS, EXPLAIN_FLAGS, SERVE_FLAGS, STATS_FLAGS,
};
use std::io::{BufRead, Write};
use tkdc::model_io::{load_model, save_model};
use tkdc::{Classifier, ExecPolicy, Label, Params, QueryTrace, Spans, TraceWriter};
use tkdc_common::csv::{read_csv, CsvOptions};
use tkdc_common::error::Result;
use tkdc_common::Matrix;
use tkdc_coreset::{CoresetConfig, StreamingCoreset, WeightedCoreset};
use tkdc_obs::{chrome_trace_json, complete_spans, span_v2_lines, Registry, SpanRecord};
use tkdc_serve::{Client, ServeConfig, Server, StatsSnapshot};

const USAGE: &str = "\
tkdc — density classification over CSV datasets (tKDC, SIGMOD 2017)

USAGE:
    tkdc <subcommand> [flags]

SUBCOMMANDS:
    train      fit a model and save it:
                 tkdc train --input data.csv --model out.tkdc
    classify   classify query rows with a saved model:
                 tkdc classify --model out.tkdc --input queries.csv
    density    print certified density bounds per query row:
                 tkdc density --model out.tkdc --input queries.csv
    outliers   one-shot: fit on the input and list its low-density rows:
                 tkdc outliers --input data.csv --p 0.01
    threshold  estimate the density threshold t(p) only
    compact    stream a CSV into a weighted coreset (merge-reduce; memory
               stays sublinear in the input; weight is the last column):
                 tkdc compact --input big.csv --coreset-eps 1e-3 --output core.csv
    explain    trace one query and print its bound-convergence trajectory:
                 tkdc explain 0.3,-1.2 --model out.tkdc
    serve      serve a saved model over TCP (binary protocol, see DESIGN.md):
                 tkdc serve --model out.tkdc --addr 127.0.0.1:7117
    stats      poll a running daemon's Stats frame and render it:
                 tkdc stats --addr 127.0.0.1:7117 --watch
    help       print this message

SHARED FLAGS:
    --input FILE        input CSV (numeric; blank/'#' lines skipped)
    --header            treat the first CSV line as a header
    --columns I,J,...   use only these 0-based columns
    --output FILE       write results to FILE instead of stdout
    --model FILE        model path (train: write; classify: read)
    --p P               classification rate (default 0.01)
    --epsilon E         multiplicative error tolerance (default 0.01)
    --delta D           bootstrap failure probability (default 0.01)
    --bandwidth B       Scott's-rule scale factor (default 1.0)
    --kernel K          gaussian | epanechnikov (default gaussian)
    --seed N            RNG seed (default from Params)
    --threads N         worker threads for training and batch queries
                        (default: all available cores; results are
                        identical for any thread count)
    --quiet             suppress progress logging
    --trace-out FILE    classify/density/serve: append per-query traces
                        to FILE as tkdc-trace/v1 JSONL (see DESIGN.md)
    --trace-sample N    trace every N-th query by batch index
                        (default 1 = all; 0 disables tracing)
    --span-out FILE     write a stage-level span trace of the run:
                        `.jsonl` → tkdc-trace/v2 records, anything else
                        → Chrome trace_event JSON (open in Perfetto)
    --coreset-eps E     train/compact: build an ε-accurate weighted
                        coreset (ε in units of K(0)) and fold ε into the
                        certified interval — straddling queries report
                        UNKNOWN instead of a possibly-wrong HIGH/LOW
    --compactor C       grid | sample | auto (default auto: grid up to
                        4 dims, sample above)
    --weighted          train: the input's last column is a point weight
                        (e.g. the output of `tkdc compact`; the coreset ε
                        is read from the file's comment header unless
                        overridden with --coreset-eps)
    --backend B         tree | hbe | rff (default tree). `tree` is the
                        paper's certified dual-tree path; `hbe` and `rff`
                        trade certified bounds for probabilistic ones
                        (1 − δ confidence) and flat per-query cost
    --hbe-tables T      hbe: independent hash tables (default 32)
    --hbe-hashes K      hbe: concatenated hashes per table (default 2)
    --hbe-bucket-width W  hbe: projection bucket width (default 4)
    --hbe-samples M     hbe: points sampled per table (default 8)
    --rff-features D    rff: random Fourier features (default 2048)

EXPLAIN FLAGS:
    --point X,Y,...     the query point (or pass it positionally)
    --model FILE        saved model to query
    --trace-out FILE    also write the trace as tkdc-trace/v1 JSONL
    --span-out FILE     also write the query's span trace (see above)

SERVE FLAGS:
    --addr HOST:PORT    listen address (default 127.0.0.1:7117; port 0
                        picks an ephemeral port, printed on startup)
    --max-conns N       concurrent-connection cap (default 64); further
                        clients get an over-capacity protocol error
    --timeout-ms N      per-connection read/write timeout (default 10000)
    --metrics-addr H:P  also serve a Prometheus text exposition at
                        http://H:P/metrics (port 0 picks a free port,
                        printed on startup)
    --slow-ms N         log requests slower than N ms to --slow-log
                        (default 100; 0 logs every request)
    --slow-log FILE     slow-query log, tkdc-slowlog/v1 JSONL with a
                        per-stage span breakdown per entry
    --span-out FILE     on shutdown, write a span trace of every served
                        request (format by extension, see above)

STATS FLAGS:
    --addr HOST:PORT    daemon to poll (default 127.0.0.1:7117)
    --watch             re-render the frame until interrupted
    --interval-ms N     polling interval under --watch (default 1000)
    --count N           stop after N frames (default: 1, or unbounded
                        under --watch)
";

/// Dispatches a full command line.
pub fn run(argv: &[String]) -> Result<()> {
    let Some(cmd) = argv.first() else {
        print!("{USAGE}");
        return Ok(());
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "train" => train(rest),
        "classify" => classify(rest),
        "density" => density(rest),
        "outliers" => outliers(rest),
        "threshold" => threshold(rest),
        "compact" => compact(rest),
        "explain" => explain(rest),
        "serve" => serve(rest),
        "stats" => stats(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(usage_error(format!(
            "unknown subcommand `{other}` (try `tkdc help`)"
        ))),
    }
}

fn load_input(flags: &Flags) -> Result<Matrix> {
    let path = flags.require("input")?;
    let opts = CsvOptions {
        has_header: flags.has("header"),
        skip_bad_rows: true,
        ..CsvOptions::default()
    };
    let mut data = read_csv(path, &opts)?;
    if let Some(cols) = flags.columns()? {
        data = data.select_columns(&cols)?;
    }
    if data.rows() == 0 {
        return Err(usage_error(format!("no numeric rows parsed from `{path}`")));
    }
    Ok(data)
}

fn fit(flags: &Flags, data: &Matrix, spans: &Spans) -> Result<Classifier> {
    let params = flags.params()?;
    let threads = flags.threads()?;
    if !flags.has("quiet") {
        eprintln!(
            "training on {} rows × {} cols (p={}, ε={}, kernel={:?}, backend={}, {threads} threads) …",
            data.rows(),
            data.cols(),
            params.p,
            params.epsilon,
            params.kernel,
            match params.backend {
                tkdc::BackendSpec::Tree => "tree",
                tkdc::BackendSpec::Hbe(_) => "hbe",
                tkdc::BackendSpec::Rff(_) => "rff",
            }
        );
    }
    let clf = if flags.has("weighted") {
        // The input's last column is a per-point weight (the layout
        // `tkdc compact` emits); the coreset ε comes from the explicit
        // flag or the compact file's comment header.
        if data.cols() < 2 {
            return Err(usage_error(
                "`--weighted` input needs at least one coordinate column plus the weight column",
            ));
        }
        let dim = data.cols() - 1;
        let coords: Vec<usize> = (0..dim).collect();
        let points = data.select_columns(&coords)?;
        let weights = data.column(dim);
        let eps = match flags.coreset_eps()? {
            Some(e) => e,
            None => flags
                .get("input")
                .and_then(sniff_coreset_eps)
                .unwrap_or(0.0),
        };
        if !flags.has("quiet") {
            eprintln!(
                "weighted fit on {} points (coreset ε = {eps})",
                points.rows()
            );
        }
        Classifier::fit_weighted_with_spans(
            &points,
            &weights,
            eps,
            &params,
            ExecPolicy::with_threads(threads),
            spans,
        )?
    } else if let Some(eps) = flags.coreset_eps()? {
        // Compact in-process, then fit on the weighted coreset with ε
        // folded into the certified interval.
        let cfg = CoresetConfig {
            eps,
            kind: flags.compactor(data.cols())?,
            seed: params.seed,
            chunk_capacity: None,
        };
        let mut sc = StreamingCoreset::new(data.cols(), cfg)?;
        sc.push_matrix(data)?;
        let cs = sc.finish()?;
        if !flags.has("quiet") {
            eprintln!(
                "compacted {} rows to {} weighted points ({:?} compactor, ε = {eps})",
                cs.stats.points_in, cs.stats.points_out, cfg.kind
            );
            report_coreset_counters(&cs);
        }
        Classifier::fit_weighted_with_spans(
            &cs.points,
            &cs.weights,
            eps,
            &params,
            ExecPolicy::with_threads(threads),
            spans,
        )?
    } else {
        Classifier::fit_with_spans(data, &params, ExecPolicy::with_threads(threads), spans)?
    };
    if !flags.has("quiet") {
        eprintln!("threshold t(p) = {:.6e}", clf.threshold());
    }
    Ok(clf)
}

/// Registers the construction counters of a finished coreset in a
/// metrics [`Registry`] and prints its snapshot to stderr (one
/// `name=value` per line, registration order).
fn report_coreset_counters(cs: &WeightedCoreset) {
    let reg = Registry::new();
    reg.counter("coreset.points_in").add(cs.stats.points_in);
    reg.counter("coreset.points_out").add(cs.stats.points_out);
    // CAST: eps ∈ (0,1); parts-per-billion fit comfortably in u64.
    let eps_ppb = (cs.eps * 1e9).round().clamp(0.0, u64::MAX as f64) as u64;
    reg.counter("coreset.eps_ppb").add(eps_ppb);
    reg.counter("coreset.reduces").add(cs.stats.reduces);
    reg.counter("coreset.max_resident_points")
        .add(cs.stats.max_resident_points);
    for (name, value) in reg.snapshot().counters {
        eprintln!("{name}={value}");
    }
}

/// Reads the coreset ε back out of a `tkdc compact` output file's
/// comment header (`# tkdc-coreset/v1 eps=... ...`).
fn sniff_coreset_eps(path: &str) -> Option<f64> {
    let file = std::fs::File::open(path).ok()?;
    let reader = std::io::BufReader::new(file);
    for line in reader.lines().take(8) {
        let line = line.ok()?;
        if let Some(rest) = line.trim().strip_prefix("# tkdc-coreset/v1") {
            for tok in rest.split_whitespace() {
                if let Some(v) = tok.strip_prefix("eps=") {
                    return v.parse().ok();
                }
            }
        }
    }
    None
}

/// `tkdc compact`: stream a CSV line-by-line into a merge-reduce
/// coreset builder and write the weighted result. The input is never
/// materialized — peak memory is the builder's `O(m log(n/m))` buffers,
/// which is what lets this run over datasets far larger than RAM.
fn compact(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMPACT_FLAGS)?;
    let in_path = flags.require("input")?;
    let out_path = flags.require("output")?;
    let eps = flags
        .coreset_eps()?
        .ok_or_else(|| usage_error("missing required flag `--coreset-eps`"))?;
    let seed = flags.get_u64("seed")?.unwrap_or(Params::default().seed);
    let columns = flags.columns()?;

    let file = std::fs::File::open(in_path)?;
    let reader = std::io::BufReader::new(file);
    let mut builder: Option<StreamingCoreset> = None;
    let mut header_skipped = !flags.has("header");
    let mut row: Vec<f64> = Vec::new();
    let mut fields: Vec<f64> = Vec::new();
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !header_skipped {
            header_skipped = true;
            continue;
        }
        fields.clear();
        let mut bad = false;
        for tok in trimmed.split(',') {
            match tok.trim().parse::<f64>().ok().filter(|v| v.is_finite()) {
                Some(v) => fields.push(v),
                None => {
                    bad = true;
                    break;
                }
            }
        }
        if !bad {
            row.clear();
            match &columns {
                Some(cols) => {
                    for &c in cols {
                        match fields.get(c) {
                            Some(&v) => row.push(v),
                            None => {
                                bad = true;
                                break;
                            }
                        }
                    }
                }
                None => row.extend_from_slice(&fields),
            }
        }
        if bad || row.is_empty() {
            skipped += 1;
            continue;
        }
        let sc = match &mut builder {
            Some(sc) => sc,
            None => {
                let cfg = CoresetConfig {
                    eps,
                    kind: flags.compactor(row.len())?,
                    seed,
                    chunk_capacity: None,
                };
                builder.insert(StreamingCoreset::new(row.len(), cfg)?)
            }
        };
        if row.len() != sc.dim() {
            // Ragged row: mirrors `skip_bad_rows` in the batch loader.
            skipped += 1;
            continue;
        }
        sc.push(&row)?;
    }
    let builder =
        builder.ok_or_else(|| usage_error(format!("no numeric rows parsed from `{in_path}`")))?;
    let cs = builder.finish()?;

    // Weighted CSV out: coordinates then weight, behind a self-
    // describing comment header `train --weighted` can sniff ε from.
    let mut w = std::io::BufWriter::new(std::fs::File::create(out_path)?);
    writeln!(
        w,
        "# tkdc-coreset/v1 eps={} points_in={} points_out={}",
        cs.eps, cs.stats.points_in, cs.stats.points_out
    )?;
    for i in 0..cs.points.rows() {
        for v in cs.points.row(i) {
            write!(w, "{v},")?;
        }
        writeln!(w, "{}", cs.weights[i])?;
    }
    w.flush()?;

    if !flags.has("quiet") {
        eprintln!(
            "compacted {} rows to {} weighted points ({} skipped) → {out_path}",
            cs.stats.points_in, cs.stats.points_out, skipped
        );
        report_coreset_counters(&cs);
    }
    Ok(())
}

/// Writes lines either to `--output` or stdout.
fn emit(flags: &Flags, lines: impl Iterator<Item = String>) -> Result<()> {
    match flags.get("output") {
        Some(path) => {
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            for line in lines {
                writeln!(f, "{line}")?;
            }
            f.flush()?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            for line in lines {
                writeln!(lock, "{line}")?;
            }
        }
    }
    Ok(())
}

/// Writes a batch's sampled traces to `path` as `tkdc-trace/v1` JSONL.
fn write_trace_file(path: &str, traces: &[QueryTrace]) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = TraceWriter::new(std::io::BufWriter::new(file));
    w.write_all(traces)?;
    Ok(())
}

/// A recording span handle when `--span-out` was given, inert otherwise.
fn spans_for(flags: &Flags) -> Spans {
    if flags.get("span-out").is_some() {
        Spans::enabled()
    } else {
        Spans::off()
    }
}

/// Writes drained span records to `path`; the format follows the
/// extension — `.jsonl` gets `tkdc-trace/v2` records, anything else a
/// Chrome `trace_event` JSON document (loadable in Perfetto).
fn write_span_file(path: &str, records: &[SpanRecord]) -> Result<()> {
    let text = if path.ends_with(".jsonl") {
        let mut lines = span_v2_lines(records);
        if !lines.is_empty() {
            lines.push('\n');
        }
        lines
    } else {
        chrome_trace_json(records)
    };
    std::fs::write(path, text)?;
    Ok(())
}

/// Drains `spans` into `--span-out` if the flag was given.
fn maybe_write_spans(flags: &Flags, spans: &Spans) -> Result<()> {
    if let Some(path) = flags.get("span-out") {
        write_span_file(path, &spans.take())?;
        if !flags.has("quiet") {
            eprintln!("span trace written to {path}");
        }
    }
    Ok(())
}

fn train(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let data = load_input(&flags)?;
    let model_path = flags.require("model")?;
    let spans = spans_for(&flags);
    let clf = fit(&flags, &data, &spans)?;
    save_model(&clf, model_path)?;
    maybe_write_spans(&flags, &spans)?;
    if !flags.has("quiet") {
        eprintln!("model written to {model_path}");
    }
    Ok(())
}

fn classify(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let model_path = flags.require("model")?;
    let clf = load_model(model_path)?;
    let queries = load_input(&flags)?;
    let policy = ExecPolicy::with_threads(flags.threads()?);
    let spans = spans_for(&flags);
    let (labels, stats) = match flags.get("trace-out") {
        Some(path) => {
            let (labels, stats, traces) =
                clf.classify_batch_traced_spanned(&queries, policy, flags.trace_every()?, &spans)?;
            write_trace_file(path, &traces)?;
            (labels, stats)
        }
        // Owned queries ride into the pool job without a copy.
        None => clf.classify_batch_shared_spanned(tkdc_sync::Arc::new(queries), policy, &spans)?,
    };
    maybe_write_spans(&flags, &spans)?;
    emit(
        &flags,
        labels.iter().map(|l| {
            match l {
                Label::High => "HIGH",
                Label::Low => "LOW",
                Label::Unknown => "UNKNOWN",
            }
            .to_string()
        }),
    )?;
    if !flags.has("quiet") {
        eprintln!(
            "classified {} queries ({:.1} kernel evals/query)",
            labels.len(),
            stats.kernels_per_query()
        );
    }
    Ok(())
}

fn density(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let model_path = flags.require("model")?;
    let clf = load_model(model_path)?;
    let queries = load_input(&flags)?;
    let n_queries = queries.rows();
    let policy = ExecPolicy::with_threads(flags.threads()?);
    let spans = spans_for(&flags);
    let (bounds, stats) = match flags.get("trace-out") {
        // The traced density path has no spanned variant; `--span-out`
        // yields an empty trace when combined with `--trace-out`.
        Some(path) => {
            let (bounds, stats, traces) =
                clf.bound_density_batch_traced(&queries, policy, flags.trace_every()?)?;
            write_trace_file(path, &traces)?;
            (bounds, stats)
        }
        None => {
            clf.bound_density_batch_shared_spanned(tkdc_sync::Arc::new(queries), policy, &spans)?
        }
    };
    maybe_write_spans(&flags, &spans)?;
    emit(
        &flags,
        bounds
            .iter()
            .map(|b| format!("{:e},{:e},{:?}", b.lower, b.upper, b.cause)),
    )?;
    if !flags.has("quiet") {
        eprintln!(
            "bounded {} densities against t(p) = {:.6e} ({:.1} kernel evals/query)",
            n_queries,
            clf.threshold(),
            stats.kernels_per_query()
        );
    }
    Ok(())
}

fn outliers(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let data = load_input(&flags)?;
    let spans = spans_for(&flags);
    let clf = fit(&flags, &data, &spans)?;
    let (labels, _) = clf.classify_batch_with(&data, ExecPolicy::with_threads(flags.threads()?))?;
    maybe_write_spans(&flags, &spans)?;
    let lines = labels
        .iter()
        .enumerate()
        .filter(|&(_i, &l)| l == Label::Low)
        .map(|(i, &_l)| {
            let row = data
                .row(i)
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("{i},{row}")
        });
    emit(&flags, lines)?;
    if !flags.has("quiet") {
        let low = labels.iter().filter(|&&l| l == Label::Low).count();
        eprintln!(
            "{low} of {} rows below the density threshold ({:.2}%)",
            labels.len(),
            100.0 * low as f64 / labels.len() as f64
        );
    }
    Ok(())
}

fn serve(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, SERVE_FLAGS)?;
    let model_path = flags.require("model")?;
    let clf = load_model(model_path)?;
    let config = ServeConfig {
        addr: flags.get("addr").unwrap_or("127.0.0.1:7117").to_string(),
        threads: flags.get_u64("threads")?.map(|n| n as usize), // CAST: thread counts are tiny
        max_conns: match flags.get_u64("max-conns")? {
            Some(0) => return Err(usage_error("`--max-conns` must be at least 1")),
            Some(n) => n as usize, // CAST: connection caps are small
            None => ServeConfig::default().max_conns,
        },
        timeout: match flags.get_u64("timeout-ms")? {
            Some(0) => return Err(usage_error("`--timeout-ms` must be at least 1")),
            Some(ms) => std::time::Duration::from_millis(ms),
            None => ServeConfig::default().timeout,
        },
        trace_out: flags.get("trace-out").map(std::path::PathBuf::from),
        trace_every: flags.trace_every()?,
        metrics_addr: flags.get("metrics-addr").map(str::to_string),
        slow_ms: flags.get_u64("slow-ms")?,
        slow_log: flags.get("slow-log").map(std::path::PathBuf::from),
        span_out: flags.get("span-out").map(std::path::PathBuf::from),
    };
    let server = Server::bind(config, clf)?;
    let addr = server.local_addr()?;
    if !flags.has("quiet") {
        eprintln!("tkdc-serve listening on {addr} (model: {model_path})");
        if let Some(maddr) = server.metrics_addr() {
            eprintln!("metrics exposition on http://{maddr}/metrics");
        }
    }
    server.run()?;
    if !flags.has("quiet") {
        eprintln!("tkdc-serve drained and stopped");
    }
    Ok(())
}

/// `tkdc stats`: poll a running daemon's `Stats` frame and render it.
/// `--watch` re-renders on an interval (ANSI clear between frames);
/// `--count` bounds the number of frames either way.
fn stats(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, STATS_FLAGS)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7117");
    let watch = flags.has("watch");
    let interval =
        std::time::Duration::from_millis(flags.get_u64("interval-ms")?.unwrap_or(1000).max(1));
    // One frame by default; `--watch` alone runs until interrupted.
    let limit = match (watch, flags.get_u64("count")?) {
        (_, Some(0)) => return Err(usage_error("`--count` must be at least 1")),
        (_, Some(n)) => Some(n),
        (true, None) => None,
        (false, None) => Some(1),
    };
    let mut frames = 0u64;
    loop {
        // A fresh connection per poll, so a daemon restart between
        // frames shows up as one failed poll, not a wedged watcher.
        let mut client = Client::connect_with_timeout(addr, std::time::Duration::from_secs(5))?;
        let snap = client.stats()?;
        if watch && frames > 0 {
            // ANSI home + clear-to-end redraws in place.
            print!("\x1b[H\x1b[J");
        }
        render_stats(addr, &snap, flags.has("quiet"));
        frames += 1;
        if limit.is_some_and(|n| frames >= n) {
            return Ok(());
        }
        tkdc_sync::thread::sleep(interval);
    }
}

/// Pretty-prints one `Stats` frame.
fn render_stats(addr: &str, s: &StatsSnapshot, quiet: bool) {
    let samples = |buckets: &[(f64, u64)]| buckets.iter().map(|&(_, c)| c).sum::<u64>();
    println!("tkdc-serve @ {addr}");
    println!(
        "  backend           : {} ({} bounds)",
        s.backend, s.bound_kind
    );
    println!(
        "  requests          : {} total, {} errors",
        s.requests_total, s.errors_total
    );
    println!(
        "  ops               : ping {}, classify {}, density {}, stats {}",
        s.pings, s.classifies, s.densities, s.stats_requests
    );
    println!(
        "  points            : {} classified, {} bounded",
        s.points_classified, s.points_bounded
    );
    println!(
        "  connections       : {} accepted, {} active, {} rejected, {} timeouts",
        s.connections_accepted, s.active_connections, s.rejected_over_capacity, s.timeouts
    );
    println!(
        "  latency (total)   : p50 {:.0} µs, p99 {:.0} µs over {} requests",
        s.latency_quantile_us(0.5),
        s.latency_quantile_us(0.99),
        samples(&s.latency_buckets)
    );
    println!(
        "  latency ({:>3}s)    : p50 {:.0} µs, p99 {:.0} µs over {} requests",
        s.window_seconds,
        s.window_latency_quantile_us(0.5),
        s.window_latency_quantile_us(0.99),
        samples(&s.window_latency_buckets)
    );
    if !quiet {
        for (name, value) in &s.engine_counters {
            println!("  {name:<17} : {value}");
        }
    }
}

/// Parses an `X,Y,...` coordinate list.
fn parse_point(spec: &str) -> Result<Vec<f64>> {
    spec.split(',')
        .map(|tok| {
            tok.trim()
                .parse::<f64>()
                .map_err(|_| usage_error(format!("bad coordinate `{tok}` in query point")))
        })
        .collect()
}

/// Runs one query with tracing forced on and pretty-prints how the
/// density bounds converged until a pruning rule fired.
fn explain(args: &[String]) -> Result<()> {
    // The query point may be positional (`tkdc explain 0.3,0.4 ...`) or
    // given via `--point`.
    let (positional, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (Some(a.as_str()), &args[1..]),
        _ => (None, args),
    };
    let flags = Flags::parse(rest, EXPLAIN_FLAGS)?;
    let spec = match (positional, flags.get("point")) {
        (Some(_), Some(_)) => {
            return Err(usage_error(
                "give the query point either positionally or via `--point`, not both",
            ))
        }
        (Some(p), None) | (None, Some(p)) => p,
        (None, None) => {
            return Err(usage_error(
                "missing query point (positional or `--point X,Y,...`)",
            ))
        }
    };
    let point = parse_point(spec)?;
    let clf = load_model(flags.require("model")?)?;
    let mut queries = Matrix::with_cols(point.len());
    queries.push_row(&point)?;
    // Serial + sample-every-1 so the single query is always traced;
    // spans always record here so the stage breakdown below is free.
    let spans = Spans::enabled();
    let (labels, _stats, traces) =
        clf.classify_batch_traced_spanned(&queries, ExecPolicy::Serial, 1, &spans)?;
    let trace = traces
        .first()
        .ok_or_else(|| usage_error("engine returned no trace for the query"))?;
    if let Some(path) = flags.get("trace-out") {
        write_trace_file(path, &traces)?;
    }
    let span_records = spans.take();
    if let Some(path) = flags.get("span-out") {
        write_span_file(path, &span_records)?;
    }

    println!("query point    : {point:?}");
    match clf.bound_kind() {
        tkdc::BoundKind::Certified => {
            println!("backend        : {} (certified bounds)", clf.backend_name());
        }
        tkdc::BoundKind::Probabilistic { delta } => {
            println!(
                "backend        : {} (probabilistic bounds, 1 − δ = {} confidence)",
                clf.backend_name(),
                1.0 - delta
            );
        }
    }
    println!("threshold t(p) : {:.6e}", clf.threshold());
    if trace.t_lo.is_finite() || trace.t_hi.is_finite() {
        println!(
            "prune window   : [{:.6e}, {:.6e}]  (ε-scaled)",
            trace.t_lo, trace.t_hi
        );
    }
    println!("label          : {:?}", labels[0]);
    println!("prune cause    : {}", trace.cause);
    if trace.upper.is_nan() {
        println!(
            "final lower    : {:.6e}  (grid-certified; no upper bound computed)",
            trace.lower
        );
    } else {
        println!(
            "final bounds   : [{:.6e}, {:.6e}]",
            trace.lower, trace.upper
        );
    }
    println!(
        "work           : {} nodes expanded, {} kernel evals, {} bound evals",
        trace.nodes_expanded, trace.kernel_evals, trace.bound_evals
    );
    if trace.steps.is_empty() {
        println!("no refinement steps: the query was resolved before any node expansion");
    } else {
        println!();
        println!(
            "{:>5}  {:>6}  {:>8}  {:>14}  {:>14}  {:>12}",
            "step", "nodes", "kevals", "lower", "upper", "width"
        );
        for (i, s) in trace.steps.iter().enumerate() {
            println!(
                "{:>5}  {:>6}  {:>8}  {:>14.6e}  {:>14.6e}  {:>12.3e}",
                i + 1,
                s.nodes_expanded,
                s.kernel_evals,
                s.lower,
                s.upper,
                s.upper - s.lower
            );
        }
    }
    // Stage-level span breakdown: where the query's wall time went.
    let stages = complete_spans(&span_records);
    if !stages.is_empty() {
        println!();
        println!("span breakdown :");
        for sp in &stages {
            println!(
                "{:indent$}{:<24} {:>8} µs",
                "",
                sp.name,
                sp.dur_us,
                indent = 2 * (1 + sp.depth as usize) // CAST: depth widens losslessly
            );
        }
    }
    Ok(())
}

fn threshold(args: &[String]) -> Result<()> {
    let flags = Flags::parse(args, COMMON_FLAGS)?;
    let data = load_input(&flags)?;
    let spans = spans_for(&flags);
    let clf = fit(&flags, &data, &spans)?;
    maybe_write_spans(&flags, &spans)?;
    let report = clf.fit_report();
    println!("t(p)      = {:.6e}", clf.threshold());
    println!(
        "bounds    = [{:.6e}, {:.6e}]  (1-δ confidence)",
        report.threshold_bounds.lower, report.threshold_bounds.upper
    );
    println!("bootstrap rounds: {:?}", report.bootstrap.rounds);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_csv(path: &std::path::Path, rows: &[[f64; 2]]) {
        let mut s = String::new();
        for r in rows {
            s.push_str(&format!("{},{}\n", r[0], r[1]));
        }
        std::fs::write(path, s).unwrap();
    }

    fn sample_data() -> Vec<[f64; 2]> {
        // A deterministic blob plus one far outlier.
        let mut rows = Vec::new();
        let mut state = 1u64;
        let mut next = move || {
            // xorshift for test-local determinism
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for _ in 0..600 {
            rows.push([next() * 2.0, next() * 2.0]);
        }
        rows.push([50.0, 50.0]);
        rows
    }

    #[test]
    fn train_classify_round_trip() {
        let dir = std::env::temp_dir().join("tkdc_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        write_csv(&data_path, &sample_data());

        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--p",
            "0.05",
            "--quiet",
        ]))
        .unwrap();
        assert!(model_path.exists());

        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let labels = std::fs::read_to_string(&out_path).unwrap();
        let lines: Vec<&str> = labels.lines().collect();
        assert_eq!(lines.len(), 601);
        // The planted far point must be LOW.
        assert_eq!(lines[600], "LOW");
        assert!(lines.iter().filter(|&&l| l == "HIGH").count() > 500);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_classify_round_trip_estimated_backends() {
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        for backend in ["hbe", "rff"] {
            let dir = std::env::temp_dir().join(format!("tkdc_cli_test_{backend}"));
            std::fs::create_dir_all(&dir).unwrap();
            let data_path = dir.join("data.csv");
            let model_path = dir.join("model.tkdc");
            let out_path = dir.join("labels.txt");
            write_csv(&data_path, &sample_data());
            run(&argv(&[
                "train",
                "--input",
                data_path.to_str().unwrap(),
                "--model",
                model_path.to_str().unwrap(),
                "--p",
                "0.05",
                "--backend",
                backend,
                "--quiet",
            ]))
            .unwrap();
            run(&argv(&[
                "classify",
                "--model",
                model_path.to_str().unwrap(),
                "--input",
                data_path.to_str().unwrap(),
                "--output",
                out_path.to_str().unwrap(),
                "--quiet",
            ]))
            .unwrap();
            let labels = std::fs::read_to_string(&out_path).unwrap();
            let lines: Vec<&str> = labels.lines().collect();
            assert_eq!(lines.len(), 601, "{backend}: one label per row");
            // The planted far point has near-zero density under any
            // estimator; it must not come back HIGH.
            assert_ne!(lines[600], "HIGH", "{backend}: planted outlier");
            assert!(
                lines.iter().filter(|&&l| l == "HIGH").count() > 400,
                "{backend}: bulk of the blob should be HIGH"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn outliers_lists_planted_point() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_outliers");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let out_path = dir.join("outliers.csv");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "outliers",
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--p",
            "0.01",
            "--quiet",
        ]))
        .unwrap();
        let out = std::fs::read_to_string(&out_path).unwrap();
        assert!(
            out.lines().any(|l| l.starts_with("600,")),
            "planted outlier (row 600) missing from: {out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn density_subcommand_emits_bounds() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_density");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("bounds.csv");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "density",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let out = std::fs::read_to_string(&out_path).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 601);
        // Each line: lower,upper,cause with lower <= upper.
        for line in &lines {
            let parts: Vec<&str> = line.split(',').collect();
            assert_eq!(parts.len(), 3, "bad line {line}");
            let lo: f64 = parts[0].parse().unwrap();
            let hi: f64 = parts[1].parse().unwrap();
            assert!(lo <= hi);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parallel_classify_flag_accepted() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_par");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--threads",
            "4",
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&out_path).unwrap().lines().count(),
            601
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn explain_runs_and_writes_trace() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_explain");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let trace_path = dir.join("explain.jsonl");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        // Positional point form.
        run(&argv(&[
            "explain",
            "0.1,0.2",
            "--model",
            model_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ]))
        .unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert_eq!(trace.lines().count(), 1);
        assert!(trace.contains("\"schema\":\"tkdc-trace/v1\""));
        assert!(trace.contains("\"query\":0"));
        // `--point` form; rejects giving both, rejects bad coordinates.
        run(&argv(&[
            "explain",
            "--point",
            "0.1,0.2",
            "--model",
            model_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(run(&argv(&["explain", "0,0", "--point", "1,1"])).is_err());
        assert!(run(&argv(&[
            "explain",
            "0,zebra",
            "--model",
            model_path.to_str().unwrap()
        ]))
        .is_err());
        assert!(run(&argv(&["explain", "--model", "m.tkdc"])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classify_trace_out_writes_jsonl() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_traceout");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        let trace_path = dir.join("trace.jsonl");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--trace-sample",
            "100",
            "--threads",
            "2",
            "--quiet",
        ]))
        .unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        // 601 queries sampled every 100th by index: 0, 100, ..., 600.
        assert_eq!(trace.lines().count(), 7);
        assert!(trace
            .lines()
            .all(|l| l.starts_with("{\"schema\":\"tkdc-trace/v1\"")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_then_weighted_train_round_trip() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_compact");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let core_path = dir.join("core.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "compact",
            "--input",
            data_path.to_str().unwrap(),
            "--coreset-eps",
            "0.05",
            "--output",
            core_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let core = std::fs::read_to_string(&core_path).unwrap();
        let mut lines = core.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("# tkdc-coreset/v1 eps=0.05"), "{header}");
        assert!(header.contains("points_in=601"));
        // Weighted rows: x,y,w with weights summing to the input count.
        let mut total = 0.0;
        for line in lines {
            let parts: Vec<&str> = line.split(',').collect();
            assert_eq!(parts.len(), 3, "bad weighted row {line}");
            total += parts[2].parse::<f64>().unwrap();
        }
        assert!((total - 601.0).abs() < 1e-6, "weights sum to {total}");

        // `train --weighted` sniffs ε from the header and folds it in.
        run(&argv(&[
            "train",
            "--input",
            core_path.to_str().unwrap(),
            "--weighted",
            "--model",
            model_path.to_str().unwrap(),
            "--p",
            "0.05",
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let labels = std::fs::read_to_string(&out_path).unwrap();
        let lines: Vec<&str> = labels.lines().collect();
        assert_eq!(lines.len(), 601);
        assert!(lines
            .iter()
            .all(|l| matches!(*l, "HIGH" | "LOW" | "UNKNOWN")));
        // The planted far outlier must never be certified HIGH.
        assert_ne!(lines[600], "HIGH");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn train_with_coreset_eps_compacts_in_process() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_train_coreset");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--coreset-eps",
            "0.05",
            "--compactor",
            "sample",
            "--model",
            model_path.to_str().unwrap(),
            "--p",
            "0.05",
            "--quiet",
        ]))
        .unwrap();
        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let labels = std::fs::read_to_string(&out_path).unwrap();
        let lines: Vec<&str> = labels.lines().collect();
        assert_eq!(lines.len(), 601);
        assert_ne!(lines[600], "HIGH");
        // Bad compactor name is rejected.
        assert!(run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--coreset-eps",
            "0.05",
            "--compactor",
            "octree",
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_requires_eps_and_input_rows() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_compact_err");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let core_path = dir.join("core.csv");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert!(run(&argv(&[
            "compact",
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            core_path.to_str().unwrap(),
            "--quiet",
        ]))
        .is_err());
        // Comment-only file: no numeric rows.
        let empty = dir.join("empty.csv");
        std::fs::write(&empty, "# nothing here\n").unwrap();
        assert!(run(&argv(&[
            "compact",
            "--input",
            empty.to_str().unwrap(),
            "--coreset-eps",
            "0.05",
            "--output",
            core_path.to_str().unwrap(),
            "--quiet",
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn span_out_writes_v2_and_chrome_traces() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_spanout");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        let out_path = dir.join("labels.txt");
        let fit_spans = dir.join("fit_spans.jsonl");
        let classify_spans = dir.join("classify_spans.json");
        let explain_spans = dir.join("explain_spans.json");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        // `.jsonl` extension → tkdc-trace/v2 records of the fit stages.
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--span-out",
            fit_spans.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let v2 = std::fs::read_to_string(&fit_spans).unwrap();
        assert!(v2.lines().count() >= 6, "enter+exit per fit stage: {v2}");
        assert!(v2
            .lines()
            .all(|l| l.starts_with("{\"schema\":\"tkdc-trace/v2\"")));
        for stage in ["fit.tree_build", "fit.bootstrap", "fit.threshold"] {
            assert!(v2.contains(stage), "missing {stage} in {v2}");
        }
        // `.json` extension → Chrome trace_event JSON of the batch.
        run(&argv(&[
            "classify",
            "--model",
            model_path.to_str().unwrap(),
            "--input",
            data_path.to_str().unwrap(),
            "--output",
            out_path.to_str().unwrap(),
            "--span-out",
            classify_spans.to_str().unwrap(),
            "--threads",
            "2",
            "--quiet",
        ]))
        .unwrap();
        let chrome = std::fs::read_to_string(&classify_spans).unwrap();
        assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
        assert!(chrome.contains("\"classify.traversal\""));
        assert!(chrome.contains("\"classify.leaf_sum\""));
        // `explain --span-out` writes the single query's spans too.
        run(&argv(&[
            "explain",
            "0.1,0.2",
            "--model",
            model_path.to_str().unwrap(),
            "--span-out",
            explain_spans.to_str().unwrap(),
        ]))
        .unwrap();
        let explain = std::fs::read_to_string(&explain_spans).unwrap();
        assert!(explain.contains("\"classify.dispatch\""), "{explain}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_subcommand_polls_a_live_daemon() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_stats");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.csv");
        let model_path = dir.join("model.tkdc");
        write_csv(&data_path, &sample_data());
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "train",
            "--input",
            data_path.to_str().unwrap(),
            "--model",
            model_path.to_str().unwrap(),
            "--quiet",
        ]))
        .unwrap();
        let clf = load_model(model_path.to_str().unwrap()).unwrap();
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServeConfig::default()
        };
        let server = Server::bind(config, clf).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.spawn();
        // One frame by default; a bounded watch loop exercises the
        // redraw path without running forever.
        run(&argv(&["stats", "--addr", &addr])).unwrap();
        run(&argv(&[
            "stats",
            "--addr",
            &addr,
            "--watch",
            "--interval-ms",
            "1",
            "--count",
            "2",
            "--quiet",
        ]))
        .unwrap();
        assert!(run(&argv(&["stats", "--addr", &addr, "--count", "0"])).is_err());
        let mut client = Client::connect(&addr).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
        // A dead daemon is a connection error, not a hang.
        assert!(run(&argv(&["stats", "--addr", &addr])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_subcommand_fails() {
        let argv: Vec<String> = vec!["explode".into()];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn help_and_empty_ok() {
        assert!(run(&[]).is_ok());
        assert!(run(&["help".to_string()]).is_ok());
    }

    #[test]
    fn missing_input_errors() {
        let argv: Vec<String> = vec!["threshold".into()];
        assert!(run(&argv).is_err());
        let argv: Vec<String> = vec![
            "threshold".into(),
            "--input".into(),
            "/nonexistent.csv".into(),
        ];
        assert!(run(&argv).is_err());
    }

    #[test]
    fn column_selection_applies() {
        let dir = std::env::temp_dir().join("tkdc_cli_test_cols");
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("d.csv");
        // 3 columns; select 0 and 2.
        let mut s = String::new();
        let rows = sample_data();
        for r in &rows {
            s.push_str(&format!("{},999,{}\n", r[0], r[1]));
        }
        std::fs::write(&data_path, s).unwrap();
        let argv = |v: &[&str]| v.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        run(&argv(&[
            "threshold",
            "--input",
            data_path.to_str().unwrap(),
            "--columns",
            "0,2",
            "--quiet",
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
