#![forbid(unsafe_code)]
//! `tkdc-sync` — the workspace's single doorway to concurrency
//! primitives.
//!
//! Every crate in this workspace imports `Arc`, `Mutex`, atomics and
//! threads from here instead of `std::sync`/`std::thread` (enforced by
//! `xtask lint` rule L6 `std-sync-outside-facade`). In a normal build
//! the facade is pure re-exports — zero cost, identical types, no
//! behavior change. Under `RUSTFLAGS="--cfg tkdc_model_check"` the
//! facade swaps in the vendored `loom`-style model checker (see
//! `vendor/loom`), which deterministically enumerates thread
//! interleavings and weak-memory behaviors over bounded executions, so
//! the concurrency harnesses in `tests/model_check.rs` exhaustively
//! check the engine cursor, serve metrics and obs registry. Run them
//! via `cargo xtask model-check`.
//!
//! What swaps and what doesn't:
//!
//! * **Swapped**: `Mutex`/`MutexGuard`, `Condvar`, `atomic::{AtomicBool,
//!   AtomicU64, AtomicUsize}`, `thread::{spawn, scope, sleep,
//!   yield_now, JoinHandle, Scope, ScopedJoinHandle}`.
//! * **Never swapped**: `Arc`, `OnceLock`, `atomic::Ordering`,
//!   `thread::available_parallelism` — these carry no interleaving
//!   decisions the checker needs to control (`Arc`'s refcounting is
//!   sound by construction; `OnceLock` is used for test fixtures).
//! * **Model-check only**: the [`check`] module (re-exported checker
//!   API: `model`, `Builder`, `Report`, `Violation`, `RaceCell`) exists
//!   only under `cfg(tkdc_model_check)`.
//!
//! Two facade rules keep model and reality aligned:
//!
//! 1. No `std::sync`/`std::thread` imports outside this crate (L6).
//! 2. Every `Ordering::Relaxed` carries an `// ORDERING:` comment
//!    explaining why relaxed suffices (L7); the model-check suite is
//!    where such claims are mechanically tested.

/// Re-exports under the normal (non-model-check) build: the real thing.
#[cfg(not(tkdc_model_check))]
mod facade {
    pub use std::sync::{Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, Weak};

    /// Atomic types and orderings (`std::sync::atomic` subset).
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawning and scoped threads (`std::thread` subset).
    pub mod thread {
        pub use std::thread::{
            available_parallelism, scope, sleep, spawn, yield_now, JoinHandle, Scope,
            ScopedJoinHandle,
        };
    }
}

/// Re-exports under `--cfg tkdc_model_check`: the instrumented runtime.
#[cfg(tkdc_model_check)]
mod facade {
    pub use loom::sync::{Condvar, Mutex, MutexGuard};
    pub use std::sync::{Arc, LockResult, OnceLock, PoisonError, Weak};

    /// Instrumented atomics (orderings stay the `std` enum).
    pub mod atomic {
        pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Instrumented threads. `available_parallelism` stays `std`: it is
    /// a pure query with no scheduling side effects.
    pub mod thread {
        pub use loom::thread::{
            scope, sleep, spawn, yield_now, JoinHandle, Scope, ScopedJoinHandle,
        };
        pub use std::thread::available_parallelism;
    }

    /// The model-checker driver API, for `tests/model_check.rs`.
    pub mod check {
        pub use loom::cell::RaceCell;
        pub use loom::{model, Builder, Report, Violation};
    }
}

pub use facade::*;
