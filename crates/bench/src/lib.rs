#![forbid(unsafe_code)]
//! # tkdc-bench
//!
//! Benchmark harness regenerating every table and figure of the tKDC
//! paper's evaluation (§4 plus Appendix B). Each figure has a dedicated
//! binary (`fig7` … `fig16`, `datasets`) that prints the same rows/series
//! the paper reports; Criterion microbenches live under `benches/`.
//!
//! ## Methodology
//!
//! The paper classifies every point of each dataset and amortizes
//! training time into the reported throughput. At laptop scale we keep
//! the same formula but *extrapolate* the query phase from a measured
//! query subsample:
//!
//! `throughput = n / (t_train + (t_sample / q) · n)`
//!
//! which equals the paper's measure when `q = n`. Dataset sizes default
//! to laptop-friendly values; every binary accepts `--scale F` (scales
//! all row counts) and `--queries Q` (query-sample size), so paper-scale
//! runs are a flag away.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use tkdc::{Classifier, ExecPolicy, Params};
use tkdc_baselines::{BinnedKde, DensityEstimator, NaiveKde, NocutKde, RadialKde};
use tkdc_common::{Matrix, Rng};
use tkdc_kernel::KernelKind;

/// Tiny command-line flag parser shared by the harness binaries.
///
/// Understands `--name value` pairs and bare `--flag` booleans.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    flags: HashMap<String, String>,
}

impl BenchArgs {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut flags = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(), // INVARIANT: bench tooling fails fast
                    _ => "true".to_string(),
                };
                flags.insert(name.to_string(), value);
            }
        }
        Self { flags }
    }

    /// Integer flag with default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Float flag with default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Seed flag (default 42).
    pub fn seed(&self) -> u64 {
        self.flags
            .get("seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(42)
    }

    /// Global row-count scale factor (default 1.0; the figure binaries
    /// already default to laptop-scale sizes).
    pub fn scale(&self) -> f64 {
        self.get_f64("scale", 1.0)
    }

    /// Scales a default row count by `--scale`, with a floor of 500.
    pub fn scaled_n(&self, default_n: usize) -> usize {
        ((default_n as f64 * self.scale()) as usize).max(500) // CAST: n is far below 2^53, and the product is nonnegative
    }

    /// Query-sample size (default 2000).
    pub fn queries(&self) -> usize {
        self.get_usize("queries", 2000)
    }

    /// Worker threads for the parallel engine (default: the machine's
    /// available parallelism; results are identical for any value).
    pub fn threads(&self) -> usize {
        self.get_usize(
            "threads",
            tkdc_sync::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
        .max(1)
    }

    /// Raw string flag.
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Boolean flag presence.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

/// Wall-clock timing helper.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// The algorithms of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Full tKDC.
    Tkdc,
    /// Naïve exact KDE.
    Simple,
    /// scikit-learn-equivalent tree KDE (relative tolerance 0.1).
    Sklearn,
    /// Radial KDE with conservatively chosen cutoff.
    Rkde,
    /// Tolerance-only tree KDE with ε = 0.01.
    Nocut,
    /// ks-style binned KDE (d ≤ 4 only).
    Ks,
}

impl Algo {
    /// Every algorithm, in the paper's Fig. 7 ordering.
    pub const ALL: [Algo; 6] = [
        Algo::Tkdc,
        Algo::Simple,
        Algo::Sklearn,
        Algo::Rkde,
        Algo::Nocut,
        Algo::Ks,
    ];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Tkdc => "tkdc",
            Algo::Simple => "simple",
            Algo::Sklearn => "sklearn",
            Algo::Rkde => "rkde",
            Algo::Nocut => "nocut",
            Algo::Ks => "ks",
        }
    }

    /// Whether the algorithm supports the dimensionality (`ks` is d ≤ 4).
    pub fn supports_dim(&self, d: usize) -> bool {
        match self {
            Algo::Ks => d <= 4,
            _ => true,
        }
    }
}

/// Result of one end-to-end throughput measurement.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// Estimated end-to-end queries per second with amortized training
    /// (the paper's Fig. 7 measure).
    pub total_qps: f64,
    /// Pure query throughput, training excluded (the Fig. 9/10 measure).
    pub query_qps: f64,
    /// Training wall-clock.
    pub train: Duration,
    /// Mean point-kernel evaluations per query (where tracked).
    pub kernels_per_query: f64,
}

/// Runs an algorithm end-to-end on a dataset: train (including threshold
/// estimation) and classify a query sample, extrapolating the paper's
/// whole-dataset protocol.
///
/// `p` is the classification quantile; `queries` the query sample size.
/// `threads` drives tKDC's work-stealing engine for both training and the
/// query batch (labels and statistics are thread-count-invariant); the
/// single-threaded baselines ignore it.
pub fn run_throughput(
    algo: Algo,
    data: &Matrix,
    p: f64,
    queries: usize,
    seed: u64,
    threads: usize,
) -> ThroughputResult {
    let n = data.rows();
    let q = queries.min(n).max(1);
    let mut rng = Rng::seed_from(seed ^ 0x9E37);
    // One Arc up front: the pool scheduler shares the batch zero-copy.
    let query_set = tkdc_sync::Arc::new(data.sample_rows(q, &mut rng));

    match algo {
        Algo::Tkdc => {
            let params = Params::default().with_p(p).with_seed(seed);
            let (clf, t_train) = time(|| {
                // INVARIANT: bench tooling fails fast
                Classifier::fit_with(data, &params, ExecPolicy::with_threads(threads)).expect("fit")
            });
            let (stats, t_query) = time(|| {
                let (_, stats) = clf
                    .classify_batch_shared(
                        tkdc_sync::Arc::clone(&query_set),
                        ExecPolicy::with_threads(threads),
                    )
                    .expect("classify"); // INVARIANT: bench tooling fails fast
                stats
            });
            finish(n, q, t_train, t_query, stats.kernels_per_query())
        }
        Algo::Simple => {
            let (kde, t_build) =
                time(|| NaiveKde::fit(data, KernelKind::Gaussian, 1.0).expect("fit")); // INVARIANT: bench tooling fails fast
            run_estimator_protocol(&kde, data, &query_set, p, n, q, t_build)
        }
        Algo::Sklearn => {
            let (kde, t_build) =
                time(|| NocutKde::fit(data, KernelKind::Gaussian, 1.0, 0.1).expect("fit")); // INVARIANT: bench tooling fails fast
            run_estimator_protocol(&kde, data, &query_set, p, n, q, t_build)
        }
        Algo::Nocut => {
            let (kde, t_build) =
                time(|| NocutKde::fit(data, KernelKind::Gaussian, 1.0, 0.01).expect("fit")); // INVARIANT: bench tooling fails fast
            run_estimator_protocol(&kde, data, &query_set, p, n, q, t_build)
        }
        Algo::Rkde => {
            // Reference threshold from a small naive pass so the radius
            // guarantees ε·t truncation error, as in the paper.
            let t_ref = reference_threshold(data, p, seed);
            let (kde, t_build) = time(|| {
                RadialKde::fit_with_error_bound(data, KernelKind::Gaussian, 1.0, 0.01, t_ref)
                    .expect("fit") // INVARIANT: bench tooling fails fast
            });
            run_estimator_protocol(&kde, data, &query_set, p, n, q, t_build)
        }
        Algo::Ks => {
            let (kde, t_build) =
                time(|| BinnedKde::fit(data, KernelKind::Gaussian, 1.0).expect("fit")); // INVARIANT: bench tooling fails fast
            run_estimator_protocol(&kde, data, &query_set, p, n, q, t_build)
        }
    }
}

/// Baseline protocol: threshold from the query sample's densities
/// (extrapolated to the dataset for the training charge), then classify
/// the query sample.
fn run_estimator_protocol<E: DensityEstimator>(
    kde: &E,
    _data: &Matrix,
    query_set: &Matrix,
    p: f64,
    n: usize,
    q: usize,
    t_build: Duration,
) -> ThroughputResult {
    kde.reset_kernel_evals();
    let (threshold, t_thresh_sample) =
        time(|| kde.estimate_threshold(query_set, p).expect("threshold")); // INVARIANT: bench tooling fails fast
                                                                           // Training charge: build + a full-dataset density pass, extrapolated
                                                                           // from the sampled pass.
    let t_train = t_build + t_thresh_sample.mul_f64(n as f64 / q as f64);
    let (_, t_query) = time(|| {
        kde.classify_batch(query_set, threshold)
            .expect("classify") // INVARIANT: bench tooling fails fast
            .iter()
            .filter(|&&h| h)
            .count()
    });
    let kpq = kde.kernel_evals() as f64 / (2 * q) as f64;
    finish(n, q, t_train, t_query, kpq)
}

fn finish(
    n: usize,
    q: usize,
    t_train: Duration,
    t_query: Duration,
    kernels_per_query: f64,
) -> ThroughputResult {
    let per_query = t_query.as_secs_f64() / q as f64;
    let total_secs = t_train.as_secs_f64() + per_query * n as f64;
    ThroughputResult {
        total_qps: n as f64 / total_secs.max(1e-12),
        query_qps: 1.0 / per_query.max(1e-12),
        train: t_train,
        kernels_per_query,
    }
}

/// Quick reference threshold from a naive KDE over a subsample (used to
/// parameterize rkde's radius).
pub fn reference_threshold(data: &Matrix, p: f64, seed: u64) -> f64 {
    let mut rng = Rng::seed_from(seed ^ 0xBEEF);
    let sample = data.sample_rows(data.rows().min(2000), &mut rng);
    let kde = NaiveKde::fit(&sample, KernelKind::Gaussian, 1.0).expect("fit"); // INVARIANT: bench tooling fails fast
    kde.estimate_threshold(&sample, p).expect("threshold") // INVARIANT: bench tooling fails fast
}

/// Formats a queries/s figure the way the paper does (e.g. `55.2k`,
/// `6.36M`, `0.12`).
pub fn fmt_qps(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Prints an aligned table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_data::{DatasetKind, DatasetSpec};

    #[test]
    #[allow(clippy::float_cmp)] // "0.5" parses to exactly 0.5
    fn args_parse_pairs_and_flags() {
        let args = BenchArgs::from_args(
            ["--n", "500", "--scale", "0.5", "--full"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get_usize("n", 0), 500);
        assert_eq!(args.get_f64("scale", 1.0), 0.5);
        assert!(args.has("full"));
        assert!(!args.has("absent"));
        assert_eq!(args.get_usize("missing", 7), 7);
    }

    #[test]
    fn scaled_n_has_floor() {
        let args = BenchArgs::from_args(["--scale", "0.0001"].iter().map(|s| s.to_string()));
        assert_eq!(args.scaled_n(100_000), 500);
    }

    #[test]
    fn fmt_qps_matches_paper_style() {
        assert_eq!(fmt_qps(55_200.0), "55.2k");
        assert_eq!(fmt_qps(6_360_000.0), "6.36M");
        assert_eq!(fmt_qps(0.12), "0.12");
        assert_eq!(fmt_qps(86.3), "86.3");
    }

    #[test]
    fn throughput_runs_all_algorithms_smoke() {
        let data = DatasetSpec {
            kind: DatasetKind::Gauss { d: 2 },
            n: 1500,
            seed: 3,
        }
        .generate()
        .unwrap();
        for algo in Algo::ALL {
            if !algo.supports_dim(data.cols()) {
                continue;
            }
            let r = run_throughput(algo, &data, 0.01, 200, 1, 2);
            assert!(r.total_qps > 0.0, "{} qps", algo.name());
            assert!(r.query_qps > 0.0);
        }
    }

    #[test]
    fn ks_rejects_high_dims() {
        assert!(!Algo::Ks.supports_dim(5));
        assert!(Algo::Ks.supports_dim(4));
        assert!(Algo::Tkdc.supports_dim(500));
    }
}
