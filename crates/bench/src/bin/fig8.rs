//! Fig. 8: classification accuracy (F1 of the below-threshold class)
//! against exact-KDE ground truth, grouped by dimensionality.
//!
//! Paper shape to reproduce: tKDC and sklearn stay near-perfect at every
//! dimension; `ks` is fine at d=2 but collapses at d=4 due to coarse
//! bins.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig8
//!         [--scale F] [--p P]`

use tkdc::{Classifier, ExecPolicy, Label, Params};
use tkdc_baselines::{BinnedKde, DensityEstimator, NaiveKde, NocutKde};
use tkdc_bench::{print_table, BenchArgs};
use tkdc_common::stats::BinaryScore;
use tkdc_common::Matrix;
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;

/// Ground truth: exact densities + exact quantile threshold; positive
/// class is "below threshold" (the outlier class, as in the paper).
/// Per Eq. 1, the self-contribution enters only the threshold estimate;
/// classification compares raw densities against it.
fn ground_truth(data: &Matrix, p: f64) -> (Vec<bool>, f64) {
    let kde = NaiveKde::fit(data, KernelKind::Gaussian, 1.0).expect("fit"); // INVARIANT: bench tooling fails fast
    let t = kde.estimate_threshold(data, p).expect("threshold"); // INVARIANT: bench tooling fails fast
    let labels = data
        .iter_rows()
        .map(|x| kde.density(x).expect("density") < t) // INVARIANT: bench tooling fails fast
        .collect();
    (labels, t)
}

fn f1_of_estimator<E: DensityEstimator>(est: &E, data: &Matrix, p: f64, truth: &[bool]) -> f64 {
    let t = est.estimate_threshold(data, p).expect("threshold"); // INVARIANT: bench tooling fails fast
    let predicted: Vec<bool> = data
        .iter_rows()
        .map(|x| est.density(x).expect("density") < t) // INVARIANT: bench tooling fails fast
        .collect();
    BinaryScore::from_labels(truth, &predicted).f1()
}

fn f1_of_tkdc(data: &Matrix, p: f64, truth: &[bool], seed: u64, threads: usize) -> f64 {
    let params = Params::default().with_p(p).with_seed(seed);
    let clf = Classifier::fit_with(data, &params, ExecPolicy::with_threads(threads)).expect("fit"); // INVARIANT: bench tooling fails fast
    let (labels, _) = clf
        .classify_batch_with(data, ExecPolicy::with_threads(threads))
        .expect("classify"); // INVARIANT: bench tooling fails fast
    let predicted: Vec<bool> = labels.iter().map(|&l| l == Label::Low).collect();
    BinaryScore::from_labels(truth, &predicted).f1()
}

fn main() {
    let args = BenchArgs::parse();
    let p = args.get_f64("p", 0.01);
    let seed = args.seed();
    // Paper: 50k rows of tmy3/home, all 43.5k of shuttle; ground truth
    // needs O(n²) naive KDE, so default to laptop-scale subsets.
    let n = args.scaled_n(4_000);

    println!("Fig. 8: F1 score of below-threshold classification vs exact KDE\n");
    for (dim_label, dims) in [("2", vec![2usize]), ("4", vec![4]), ("7-8", vec![7, 8])] {
        println!("\nDimensions: [{dim_label}]");
        let mut rows = Vec::new();
        for (ds_name, kind) in [
            ("tmy3", DatasetKind::Tmy3),
            ("home", DatasetKind::Home),
            ("shuttle", DatasetKind::Shuttle),
        ] {
            let spec = DatasetSpec { kind, n, seed };
            let full = spec.generate().expect("generate"); // INVARIANT: bench tooling fails fast
            for &d in &dims {
                if d > full.cols() {
                    continue;
                }
                let data = full.prefix_columns(d).expect("prefix"); // INVARIANT: bench tooling fails fast
                let (truth, _) = ground_truth(&data, p);
                let sklearn = NocutKde::fit(&data, KernelKind::Gaussian, 1.0, 0.1).expect("fit"); // INVARIANT: bench tooling fails fast
                let f1_sklearn = f1_of_estimator(&sklearn, &data, p, &truth);
                let f1_tkdc = f1_of_tkdc(&data, p, &truth, seed, args.threads());
                let f1_ks = if d <= 4 {
                    let ks = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).expect("fit"); // INVARIANT: bench tooling fails fast
                    format!("{:.3}", f1_of_estimator(&ks, &data, p, &truth))
                } else {
                    "-".to_string()
                };
                rows.push(vec![
                    format!("{ds_name} d={d}"),
                    format!("{f1_sklearn:.3}"),
                    format!("{f1_tkdc:.3}"),
                    f1_ks,
                ]);
            }
        }
        print_table(&["dataset", "sklearn", "tkdc", "ks"], &rows);
    }
}
