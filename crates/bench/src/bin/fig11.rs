//! Fig. 11: throughput over data dimensionality on dimension-prefix
//! subsets of the hep dataset (fixed n).
//!
//! Paper shape to reproduce: the naive algorithm is nearly flat in d;
//! every tree-based approach slows with d; tKDC retains at least an
//! order of magnitude over the alternatives across the sweep.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig11
//!         [--scale F] [--queries Q] [--n N]`

use tkdc_bench::{fmt_qps, print_table, run_throughput, Algo, BenchArgs};
use tkdc_data::{DatasetKind, DatasetSpec};

fn main() {
    let args = BenchArgs::parse();
    let queries = args.queries().min(1000);
    let seed = args.seed();
    let n = args.get_usize("n", args.scaled_n(50_000));

    let full = DatasetSpec {
        kind: DatasetKind::Hep,
        n,
        seed,
    }
    .generate()
    .expect("generate"); // INVARIANT: bench tooling fails fast

    println!("Fig. 11: throughput vs dimension, hep n={n} (amortized training)\n");
    let algos = [Algo::Tkdc, Algo::Simple, Algo::Sklearn, Algo::Rkde];
    let mut rows = Vec::new();
    for d in [1usize, 2, 4, 8, 16, 27] {
        let data = full.prefix_columns(d).expect("prefix"); // INVARIANT: bench tooling fails fast
        let mut row = vec![d.to_string()];
        for algo in algos {
            let r = run_throughput(algo, &data, 0.01, queries, seed, args.threads());
            row.push(fmt_qps(r.total_qps));
        }
        rows.push(row);
    }
    print_table(&["d", "tkdc", "simple", "sklearn", "rkde"], &rows);
}
