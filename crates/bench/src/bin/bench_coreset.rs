//! Coreset compaction benchmark.
//!
//! Streams a synthetic `gauss-d2` dataset through the merge-reduce
//! coreset builder, fits one classifier on the full data and one on the
//! weighted coreset (with ε folded into its certified interval), and
//! reports as `BENCH_coreset.json` (schema `tkdc-bench-coreset/v1`):
//!
//! * **compression** — input points vs coreset points, plus the
//!   builder's resident-memory high-water mark;
//! * **fit / classify speedup** — wall time of the full-data fit and
//!   batch classify vs the compact+fit and classify on the coreset;
//! * **label agreement** — over a fresh query batch, how the coreset
//!   model's labels compare with the full-data model's. The contract
//!   under test: wherever the coreset model *certifies* (HIGH/LOW), it
//!   must agree with the full-data model — lost precision may only
//!   surface as UNKNOWN. A flipped certified label fails the run
//!   (non-zero exit), which is what the CI smoke job keys off.
//!
//! Flags: `--n 200000` (stream length; `--scale` also applies),
//! `--dims 2`, `--eps 0.001` (coreset accuracy in units of `K(0)`),
//! `--compactor grid|sample`, `--queries 2000`, `--p 0.01`, `--seed`,
//! `--threads`, `--out BENCH_coreset.json`.

use std::fmt::Write as _;
use std::time::Duration;

use tkdc::{Classifier, ExecPolicy, Label, Params};
use tkdc_bench::{time, BenchArgs};
use tkdc_common::{Matrix, Rng};
use tkdc_coreset::{target_size, CompactorKind, CoresetConfig, StreamingCoreset};
use tkdc_data::gauss;

/// JSON float: non-finite values have no JSON literal, emit null.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let args = BenchArgs::parse();
    let n = args.scaled_n(200_000);
    let dims = args.get_usize("dims", 2);
    let eps = args.get_f64("eps", 1e-3);
    let n_queries = args.queries();
    let p = args.get_f64("p", 0.01);
    let seed = args.seed();
    let threads = args.threads();
    let kind = match args.get_str("compactor") {
        None | Some("grid") => CompactorKind::Grid,
        Some("sample") => CompactorKind::Sample,
        // INVARIANT: bench tooling fails fast on bad flags.
        Some(other) => panic!("--compactor expects grid|sample, got `{other}`"),
    };
    let out_path = args.get_str("out").unwrap_or("BENCH_coreset.json");

    let data = gauss::generate(n, dims, seed);
    let mut qrng = Rng::seed_from(seed ^ 0x9E37_79B9);
    let mut queries = Matrix::with_cols(dims);
    let mut row = vec![0.0; dims];
    for _ in 0..n_queries {
        for v in row.iter_mut() {
            *v = qrng.standard_normal();
        }
        queries.push_row(&row).expect("push query row"); // INVARIANT: bench tooling fails fast
    }

    let mut params = Params::default().with_p(p);
    params.seed = seed;
    let policy = ExecPolicy::with_threads(threads);

    eprintln!("full fit: {n} points × {dims} dims ({threads} threads) …");
    let (full, full_fit_t) = time(|| {
        // INVARIANT: bench tooling fails fast
        Classifier::fit_with(&data, &params, ExecPolicy::with_threads(threads)).expect("full fit")
    });

    eprintln!("compact: ε = {eps} ({kind:?}) …");
    let (coreset, compact_t) = time(|| {
        let cfg = CoresetConfig {
            eps,
            kind,
            seed,
            chunk_capacity: None,
        };
        // INVARIANT: bench tooling fails fast
        let mut sc = StreamingCoreset::new(dims, cfg).expect("coreset builder");
        sc.push_matrix(&data).expect("coreset stream"); // INVARIANT: bench tooling fails fast
        sc.finish().expect("coreset finish") // INVARIANT: bench tooling fails fast
    });
    let m = target_size(dims, eps).expect("target size"); // INVARIANT: eps validated above

    eprintln!(
        "coreset fit: {} weighted points (of {} streamed) …",
        coreset.points.rows(),
        coreset.stats.points_in
    );
    let (compact_clf, coreset_fit_t) = time(|| {
        Classifier::fit_weighted_with(
            &coreset.points,
            &coreset.weights,
            eps,
            &params,
            ExecPolicy::with_threads(threads),
        )
        .expect("coreset fit") // INVARIANT: bench tooling fails fast
    });

    let ((full_labels, _), full_cls_t) = time(|| {
        full.classify_batch_with(&queries, policy)
            // INVARIANT: bench tooling fails fast
            .expect("full classify")
    });
    let ((core_labels, _), core_cls_t) = time(|| {
        compact_clf
            .classify_batch_with(&queries, policy)
            .expect("coreset classify") // INVARIANT: bench tooling fails fast
    });

    let mut certified = 0usize;
    let mut agree = 0usize;
    let mut unknown = 0usize;
    let mut flipped = 0usize;
    for (f, c) in full_labels.iter().zip(core_labels.iter()) {
        match c {
            Label::Unknown => unknown += 1,
            _ => {
                certified += 1;
                if f == c {
                    agree += 1;
                } else {
                    flipped += 1;
                }
            }
        }
    }
    let compression = coreset.stats.points_in as f64 / coreset.stats.points_out as f64;
    let fit_speedup = secs(full_fit_t) / (secs(compact_t) + secs(coreset_fit_t));
    let cls_speedup = secs(full_cls_t) / secs(core_cls_t);

    let mut s = String::new();
    // INVARIANT: fmt::Write to a String cannot fail; discard the Results.
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"tkdc-bench-coreset/v1\",");
    let _ = writeln!(s, "  \"dataset\": \"gauss-d{dims}\",");
    let _ = writeln!(s, "  \"n\": {n},");
    let _ = writeln!(s, "  \"dims\": {dims},");
    let _ = writeln!(s, "  \"queries\": {n_queries},");
    let _ = writeln!(s, "  \"eps\": {},", jf(eps));
    let _ = writeln!(
        s,
        "  \"compactor\": \"{}\",",
        format!("{kind:?}").to_lowercase()
    );
    let _ = writeln!(s, "  \"p\": {},", jf(p));
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"coreset\": {{");
    let _ = writeln!(s, "    \"target_size\": {m},");
    let _ = writeln!(s, "    \"points_in\": {},", coreset.stats.points_in);
    let _ = writeln!(s, "    \"points_out\": {},", coreset.stats.points_out);
    let _ = writeln!(s, "    \"compression_ratio\": {},", jf(compression));
    let _ = writeln!(s, "    \"reduces\": {},", coreset.stats.reduces);
    let _ = writeln!(
        s,
        "    \"max_resident_points\": {},",
        coreset.stats.max_resident_points
    );
    let _ = writeln!(s, "    \"compact_s\": {}", jf(secs(compact_t)));
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"fit\": {{");
    let _ = writeln!(s, "    \"full_s\": {},", jf(secs(full_fit_t)));
    let _ = writeln!(s, "    \"coreset_s\": {},", jf(secs(coreset_fit_t)));
    let _ = writeln!(s, "    \"speedup\": {},", jf(fit_speedup));
    let _ = writeln!(s, "    \"threshold_full\": {},", jf(full.threshold()));
    let _ = writeln!(
        s,
        "    \"threshold_coreset\": {}",
        jf(compact_clf.threshold())
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"classify\": {{");
    let _ = writeln!(s, "    \"full_s\": {},", jf(secs(full_cls_t)));
    let _ = writeln!(s, "    \"coreset_s\": {},", jf(secs(core_cls_t)));
    let _ = writeln!(s, "    \"speedup\": {},", jf(cls_speedup));
    let _ = writeln!(
        s,
        "    \"full_qps\": {},",
        jf(n_queries as f64 / secs(full_cls_t))
    );
    let _ = writeln!(
        s,
        "    \"coreset_qps\": {}",
        jf(n_queries as f64 / secs(core_cls_t))
    );
    let _ = writeln!(s, "  }},");
    let _ = writeln!(s, "  \"labels\": {{");
    let _ = writeln!(s, "    \"certified\": {certified},");
    let _ = writeln!(
        s,
        "    \"agreement_certified\": {},",
        jf(if certified > 0 {
            agree as f64 / certified as f64
        } else {
            1.0
        })
    );
    let _ = writeln!(s, "    \"unknown\": {unknown},");
    let _ = writeln!(
        s,
        "    \"unknown_rate\": {},",
        jf(unknown as f64 / n_queries.max(1) as f64)
    );
    let _ = writeln!(s, "    \"flipped_certified\": {flipped}");
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    std::fs::write(out_path, &s).expect("write bench json"); // INVARIANT: bench tooling fails fast

    eprintln!(
        "compression {compression:.1}x, fit speedup {fit_speedup:.1}x, classify speedup \
         {cls_speedup:.1}x, {unknown}/{n_queries} unknown, {flipped} flipped"
    );
    println!("{s}");
    if flipped > 0 {
        eprintln!("FAIL: {flipped} certified labels flipped vs the full-data fit");
        std::process::exit(1);
    }
}
