//! Accuracy-vs-throughput sweep across the three density backends
//! (`tree`, `hbe`, `rff`) on gaussian datasets at d ∈ {2, 8, 64},
//! written to `BENCH_backend.json` (schema `tkdc-bench-backend/v1`).
//!
//! ```text
//! cargo run --release -p tkdc-bench --bin bench_backend -- \
//!     [--scale F] [--queries Q] [--repeats R] [--seed S] [--gate] \
//!     [--out BENCH_backend.json]
//! ```
//!
//! Per dataset, the certified tree backend is fitted first and its
//! labels are the accuracy reference; `hbe` and `rff` are then fitted
//! on the same data with the same `p`/seed and report serial batch
//! throughput plus the fraction of queries whose label disagrees with
//! the tree's. The d2/d8 configurations reuse `bench.rs`'s dataset
//! generators, sizes, and default parameters, so their tree thresholds
//! match `BENCH_batch.json` bit-for-bit (that cross-check is
//! `scripts/backend_gate.py`). The d64 configuration widens the
//! bandwidth (`×3`) so the quantile threshold is strictly positive —
//! the default Scott's-rule bandwidth at d = 64 puts every density
//! below f64 underflow, which would make accuracy comparisons
//! meaningless.
//!
//! `--gate` turns the headline claim — HBE ≥ 5× tree throughput at
//! d = 64 with ≤ 1% label disagreement — into a hard exit code.

use std::fmt::Write as _;

use tkdc::{BackendSpec, Classifier, ExecPolicy, HbeParams, Label, Params, RffParams};
use tkdc_bench::{time, BenchArgs};
use tkdc_common::{Matrix, Rng};
use tkdc_data::{DatasetKind, DatasetSpec};

/// JSON float: non-finite values have no JSON literal, emit null.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Runs `f` `repeats` times; returns the last output and the best
/// (minimum) wall-clock in seconds.
fn bench_runs<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, t0) = time(&mut f);
    let mut best = t0.as_secs_f64();
    for _ in 1..repeats.max(1) {
        let (o, t) = time(&mut f);
        out = o;
        best = best.min(t.as_secs_f64());
    }
    (out, best)
}

struct BackendPoint {
    backend: &'static str,
    bound_kind: &'static str,
    fit_s: f64,
    qps: f64,
    /// qps / tree qps on the same dataset (1.0 for the tree row).
    speedup_vs_tree: f64,
    /// Fraction of queries labeled differently from the tree backend
    /// (0.0 for the tree row by construction).
    label_disagreement: f64,
    threshold: f64,
}

struct DatasetReport {
    name: String,
    n: usize,
    d: usize,
    queries: usize,
    bandwidth_factor: f64,
    backends: Vec<BackendPoint>,
}

fn disagreement(reference: &[Label], labels: &[Label]) -> f64 {
    let n = reference.len().max(1);
    let diff = reference.iter().zip(labels).filter(|(a, b)| a != b).count();
    diff as f64 / n as f64
}

fn measure(
    name: &str,
    data: &Matrix,
    queries: usize,
    bandwidth_factor: f64,
    hbe: HbeParams,
    seed: u64,
    repeats: usize,
) -> DatasetReport {
    let base = Params::default()
        .with_seed(seed)
        .with_bandwidth_factor(bandwidth_factor);
    let q = queries.min(data.rows()).max(1);
    // Same query-sampling stream as bench.rs, so a tree row here and a
    // BENCH_batch.json row at the same config describe the same run.
    let mut rng = Rng::seed_from(seed ^ 0x9E37);
    let query_set = data.sample_rows(q, &mut rng);

    let specs: [(&'static str, BackendSpec); 3] = [
        ("tree", BackendSpec::Tree),
        ("hbe", BackendSpec::Hbe(hbe)),
        ("rff", BackendSpec::Rff(RffParams::default())),
    ];
    let mut tree_labels: Vec<Label> = Vec::new();
    let mut tree_qps = 0.0;
    let mut backends = Vec::new();
    for (bname, spec) in specs {
        let params = base.clone().with_backend(spec);
        // INVARIANT: bench tooling fails fast
        let (clf, fit_t) = time(|| Classifier::fit(data, &params).expect("fit"));
        let ((labels, _), wall) = bench_runs(repeats, || {
            clf.classify_batch_with(&query_set, ExecPolicy::Serial)
                .expect("classify") // INVARIANT: bench tooling fails fast
        });
        let qps = q as f64 / wall.max(1e-12);
        if bname == "tree" {
            tree_labels = labels.clone();
            tree_qps = qps;
        }
        let point = BackendPoint {
            backend: bname,
            bound_kind: clf.bound_kind().as_str(),
            fit_s: fit_t.as_secs_f64(),
            qps,
            speedup_vs_tree: qps / tree_qps.max(1e-12),
            label_disagreement: disagreement(&tree_labels, &labels),
            threshold: clf.threshold(),
        };
        eprintln!(
            "{name}/{bname}: fit {:.2}s, {:.0} qps ({:.2}x tree), {:.3}% disagreement",
            point.fit_s,
            point.qps,
            point.speedup_vs_tree,
            100.0 * point.label_disagreement
        );
        backends.push(point);
    }

    DatasetReport {
        name: name.to_string(),
        n: data.rows(),
        d: data.cols(),
        queries: q,
        bandwidth_factor,
        backends,
    }
}

fn render_json(reports: &[DatasetReport], scale: f64, seed: u64, repeats: usize) -> String {
    let mut s = String::new();
    // INVARIANT: fmt::Write to a String cannot fail; discard the Results.
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"tkdc-bench-backend/v1\",");
    let _ = writeln!(s, "  \"scale\": {},", jf(scale));
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"repeats\": {repeats},");
    let _ = writeln!(s, "  \"datasets\": [");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"n\": {},", r.n);
        let _ = writeln!(s, "      \"d\": {},", r.d);
        let _ = writeln!(s, "      \"queries\": {},", r.queries);
        let _ = writeln!(s, "      \"bandwidth_factor\": {},", jf(r.bandwidth_factor));
        let _ = writeln!(s, "      \"backends\": [");
        for (j, b) in r.backends.iter().enumerate() {
            let _ = write!(
                s,
                "        {{\"backend\": \"{}\", \"bound_kind\": \"{}\", \"fit_s\": {}, \
                 \"qps\": {}, \"speedup_vs_tree\": {}, \"label_disagreement\": {}, \
                 \"threshold\": {}}}",
                b.backend,
                b.bound_kind,
                jf(b.fit_s),
                jf(b.qps),
                jf(b.speedup_vs_tree),
                jf(b.label_disagreement),
                jf(b.threshold)
            );
            let _ = writeln!(s, "{}", if j + 1 < r.backends.len() { "," } else { "" });
        }
        let _ = writeln!(s, "      ]");
        let _ = write!(s, "    }}");
        let _ = writeln!(s, "{}", if i + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ]");
    s.push_str("}\n");
    s
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let queries = args.get_usize("queries", 100_000);
    let repeats = args.get_usize("repeats", 3).max(1);
    let out = args
        .get_str("out")
        .unwrap_or("BENCH_backend.json")
        .to_string();

    // Sizes and query counts mirror bench.rs so the tree rows of the
    // d2/d8 sweeps are the same fits BENCH_batch.json records. The d64
    // bandwidth is widened — see the module docs.
    // The d64 HBE is tuned down from the defaults (32 tables × 8
    // samples → 8 × 4): at 64 dimensions the tree's per-query work is
    // dominated by full-width distance computations, so the hashing
    // estimator's flat eval budget is what buys the ≥ 5× headline; the
    // coarser budget stays within the 1% disagreement cap because the
    // wide-bandwidth d64 densities are smooth.
    let d64_hbe = HbeParams {
        tables: 8,
        samples: 4,
        ..HbeParams::default()
    };
    let configs: [(&str, usize, usize, usize, f64, HbeParams); 3] = [
        (
            "gauss_d2",
            2,
            args.scaled_n(1_000_000),
            queries,
            1.0,
            HbeParams::default(),
        ),
        (
            "gauss_d8",
            8,
            args.scaled_n(250_000),
            (queries / 2).max(1),
            1.0,
            HbeParams::default(),
        ),
        (
            "gauss_d64",
            64,
            args.scaled_n(50_000),
            (queries / 5).max(1),
            3.0,
            d64_hbe,
        ),
    ];

    let mut reports = Vec::new();
    for (name, d, n, q, bw, hbe) in configs {
        let data = DatasetSpec {
            kind: DatasetKind::Gauss { d },
            n,
            seed,
        }
        .generate()
        .expect("generate dataset"); // INVARIANT: bench tooling fails fast
        eprintln!("{name}: n={}, d={d}, queries={}", data.rows(), q.min(n));
        reports.push(measure(name, &data, q, bw, hbe, seed, repeats));
    }

    let json = render_json(&reports, args.scale(), seed, repeats);
    std::fs::write(&out, &json).expect("write bench json"); // INVARIANT: bench tooling fails fast
    println!("{json}");

    if args.has("gate") {
        // The headline claim: at d = 64 the hashing estimator must beat
        // the certified tree by ≥ 5× throughput while disagreeing on at
        // most 1% of labels.
        let d64 = reports
            .iter()
            .find(|r| r.d == 64)
            .expect("gate needs the d64 sweep"); // INVARIANT: configs above include d64
        let hbe = d64
            .backends
            .iter()
            .find(|b| b.backend == "hbe")
            .expect("gate needs the hbe row"); // INVARIANT: specs above include hbe
        let mut failed = false;
        if hbe.speedup_vs_tree < 5.0 {
            eprintln!(
                "GATE FAIL: hbe at d=64 is {:.2}x tree qps (need >= 5x)",
                hbe.speedup_vs_tree
            );
            failed = true;
        }
        if hbe.label_disagreement > 0.01 {
            eprintln!(
                "GATE FAIL: hbe at d=64 disagrees on {:.3}% of labels (cap 1%)",
                100.0 * hbe.label_disagreement
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "gate ok: hbe at d=64 is {:.2}x tree qps at {:.3}% disagreement",
            hbe.speedup_vs_tree,
            100.0 * hbe.label_disagreement
        );
    }
}
