//! Fig. 16 (Appendix B): lesion analysis on the 4-d tmy3 dataset —
//! remove one optimization at a time from the complete tKDC and report
//! throughput plus kernel evaluations per point.
//!
//! Paper shape to reproduce: removing the threshold rule erases nearly
//! all the gains; removing any other single optimization costs a smaller
//! but visible factor — no optimization is redundant.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig16
//!         [--scale F] [--queries Q]`

use tkdc::{Classifier, ExecPolicy, Optimizations, Params, QueryScratch};
use tkdc_bench::{fmt_qps, print_table, time, BenchArgs};
use tkdc_common::Rng;
use tkdc_data::{DatasetKind, DatasetSpec};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let n = args.scaled_n(40_000);
    let queries = args.queries();
    let data = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n,
        seed,
    }
    .generate()
    .expect("generate") // INVARIANT: bench tooling fails fast
    .prefix_columns(4)
    .expect("prefix"); // INVARIANT: bench tooling fails fast

    let all = Optimizations::all();
    let stages: [(&str, Optimizations); 5] = [
        ("Complete", all),
        (
            "-Threshold",
            Optimizations {
                threshold_rule: false,
                ..all
            },
        ),
        (
            "-Tolerance",
            Optimizations {
                tolerance_rule: false,
                ..all
            },
        ),
        (
            "-Equiwidth",
            Optimizations {
                equiwidth_split: false,
                ..all
            },
        ),
        ("-Grid", Optimizations { grid: false, ..all }),
    ];

    println!("Fig. 16: lesion analysis, tmy3 d=4, n={n} (query phase)\n");
    let mut rng = Rng::seed_from(seed ^ 0x16);
    let query_set = data.sample_rows(queries.min(n), &mut rng);
    let mut rows = Vec::new();
    for (name, opts) in stages {
        let params = Params::default().with_seed(seed).with_opts(opts);
        let clf = Classifier::fit_with(&data, &params, ExecPolicy::with_threads(args.threads()))
            .expect("fit"); // INVARIANT: bench tooling fails fast
        let mut scratch = QueryScratch::new();
        let (_, t_query) = time(|| {
            for q in query_set.iter_rows() {
                clf.classify_with(q, &mut scratch).expect("classify"); // INVARIANT: bench tooling fails fast
            }
        });
        let qps = query_set.rows() as f64 / t_query.as_secs_f64().max(1e-12);
        rows.push(vec![
            name.into(),
            fmt_qps(qps),
            format!("{:.1}", scratch.stats.kernels_per_query()),
        ]);
    }
    print_table(&["lesion", "points/s", "kernel evals/pt"], &rows);
}
