//! §5 related-work comparison: tKDC against the alternative outlier
//! detectors the paper discusses (kNN distance, LOF, DBSCAN, one-class
//! SVM), on a planted-outlier task.
//!
//! Quantifies two of the paper's §5 claims:
//!
//! 1. One-class SVM training is drastically more expensive than KDE-based
//!    classification (O(n²)–O(n³) vs tKDC's near-linear training) — the
//!    training-time column.
//! 2. The alternatives detect outliers but produce no statistically
//!    interpretable densities — only tKDC's threshold corresponds to a
//!    quantile of a normalized probability density.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin related_work
//!         [--scale F] [--outlier-rate R]`

use tkdc::{Classifier, ExecPolicy, Label, Params};
use tkdc_alternatives::{
    dbscan, DbscanLabel, DbscanParams, KnnOutlierModel, LofModel, OneClassSvm, SvmParams,
};
use tkdc_bench::{print_table, time, BenchArgs};
use tkdc_common::stats::BinaryScore;
use tkdc_common::Rng;
use tkdc_data::shuttle;

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let n = args.scaled_n(4_000);
    let rate = args.get_f64("outlier-rate", 0.02);

    // Task: shuttle-analog body (2-d projection) plus planted uniform
    // background outliers at the given rate.
    let body = shuttle::generate(n, seed)
        .select_columns(&[3, 5])
        .expect("projection"); // INVARIANT: bench tooling fails fast
    let (mins, maxs) = body.column_bounds();
    let n_out = ((n as f64 * rate) as usize).max(5); // CAST: n is far below 2^53, and the product is nonnegative
    let mut rng = Rng::seed_from(seed ^ 0x0DD);
    let mut data = body.clone();
    let mut truth = vec![false; n]; // true = planted outlier
    truth.extend(std::iter::repeat_n(true, n_out));
    for _ in 0..n_out {
        let margin_x = 0.5 * (maxs[0] - mins[0]);
        let margin_y = 0.5 * (maxs[1] - mins[1]);
        data.push_row(&[
            rng.uniform(mins[0] - margin_x, maxs[0] + margin_x),
            rng.uniform(mins[1] - margin_y, maxs[1] + margin_y),
        ])
        .expect("push"); // INVARIANT: bench tooling fails fast
    }
    let total = data.rows();
    let flag_rate = n_out as f64 / total as f64;
    println!(
        "planted-outlier detection: n={n} body + {n_out} planted ({:.1}%), flag rate matched per method\n",
        100.0 * flag_rate
    );

    let mut rows = Vec::new();

    // tKDC: threshold at the planted rate.
    {
        let params = Params::default().with_p(flag_rate).with_seed(seed);
        let (clf, t_train) = time(|| Classifier::fit(&data, &params).expect("fit")); // INVARIANT: bench tooling fails fast
        let (labels, _) = clf
            .classify_batch_with(&data, ExecPolicy::Serial)
            .expect("classify"); // INVARIANT: bench tooling fails fast
        let predicted: Vec<bool> = labels.iter().map(|&l| l == Label::Low).collect();
        let f1 = BinaryScore::from_labels(&truth, &predicted).f1();
        rows.push(vec![
            "tkdc".into(),
            format!("{t_train:.2?}"),
            format!("{f1:.3}"),
            "normalized probability density + quantile threshold".into(),
        ]);
    }

    // kNN distance.
    {
        let (model, t_train) = time(|| KnnOutlierModel::fit(&data, 10).expect("fit")); // INVARIANT: bench tooling fails fast
        let t = model.threshold_for_rate(flag_rate).expect("threshold"); // INVARIANT: bench tooling fails fast
        let predicted: Vec<bool> = data
            .iter_rows()
            .map(|r| model.score_excluding_self(r).expect("score") > t) // INVARIANT: bench tooling fails fast
            .collect();
        let f1 = BinaryScore::from_labels(&truth, &predicted).f1();
        rows.push(vec![
            "knn-dist".into(),
            format!("{t_train:.2?}"),
            format!("{f1:.3}"),
            "raw distances, no densities".into(),
        ]);
    }

    // LOF.
    {
        let (model, t_train) = time(|| LofModel::fit(&data, 10).expect("fit")); // INVARIANT: bench tooling fails fast
        let mut scores = model.training_scores();
        let t = {
            let mut s = scores.clone();
            // INVARIANT: bench tooling fails fast
            tkdc_common::order::quantile_in_place(&mut s, 1.0 - flag_rate).expect("quantile")
        };
        // training_scores is in tree order; rescore in input order.
        scores = data
            .iter_rows()
            .map(|r| model.score(r).expect("score")) // INVARIANT: bench tooling fails fast
            .collect();
        let predicted: Vec<bool> = scores.iter().map(|&s| s > t).collect();
        let f1 = BinaryScore::from_labels(&truth, &predicted).f1();
        rows.push(vec![
            "lof".into(),
            format!("{t_train:.2?}"),
            format!("{f1:.3}"),
            "relative local densities, no absolute scale".into(),
        ]);
    }

    // DBSCAN (noise = outliers); eps tuned to the body scale.
    {
        let (result, t_train) = time(|| {
            dbscan(
                &data,
                &DbscanParams {
                    eps: 0.15,
                    min_pts: 8,
                },
            )
            .expect("dbscan") // INVARIANT: bench tooling fails fast
        });
        let (labels, clusters) = result;
        let predicted: Vec<bool> = labels.iter().map(|&l| l == DbscanLabel::Noise).collect();
        let f1 = BinaryScore::from_labels(&truth, &predicted).f1();
        rows.push(vec![
            format!("dbscan ({clusters} cl.)"),
            format!("{t_train:.2?}"),
            format!("{f1:.3}"),
            "labels only, knob-sensitive".into(),
        ]);
    }

    // One-class SVM at matched ν; cap n (O(n²) memory!) and report
    // scaling behavior explicitly.
    {
        let cap = 3_000.min(total);
        let sample = data.head(cap);
        let params = SvmParams {
            nu: flag_rate.max(0.01),
            ..SvmParams::default()
        };
        let (svm, t_train) = time(|| OneClassSvm::fit(&sample, &params).expect("fit")); // INVARIANT: bench tooling fails fast
        let predicted: Vec<bool> = data
            .iter_rows()
            .map(|r| !svm.is_inlier(r).expect("decision")) // INVARIANT: bench tooling fails fast
            .collect();
        let f1 = BinaryScore::from_labels(&truth, &predicted).f1();
        rows.push(vec![
            format!("ocsvm (n={cap})"),
            format!("{t_train:.2?}"),
            format!("{f1:.3}"),
            format!("{} SVs; O(n²) kernel matrix", svm.n_support()),
        ]);
    }

    print_table(&["method", "train time", "F1", "notes"], &rows);

    // The §5 training-cost claim, head to head across n.
    println!("\ntraining-time scaling (one-class SVM vs tKDC):");
    let mut scale_rows = Vec::new();
    for m in [500usize, 1000, 2000, 4000] {
        if m > total {
            break;
        }
        let sub = data.head(m);
        let (_, t_svm) = time(|| OneClassSvm::fit(&sub, &SvmParams::default()).expect("fit")); // INVARIANT: bench tooling fails fast
        let (_, t_tkdc) =
            time(|| Classifier::fit(&sub, &Params::default().with_seed(seed)).expect("fit")); // INVARIANT: bench tooling fails fast
        scale_rows.push(vec![
            m.to_string(),
            format!("{t_svm:.2?}"),
            format!("{t_tkdc:.2?}"),
            format!(
                "{:.1}x",
                t_svm.as_secs_f64() / t_tkdc.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    print_table(&["n", "ocsvm train", "tkdc train", "ratio"], &scale_rows);
}
