//! Fig. 12: cumulative factor analysis on the 4-d tmy3 dataset — add
//! the optimizations one at a time (baseline → +threshold → +tolerance →
//! +equiwidth → +grid) and report throughput plus kernel evaluations per
//! point.
//!
//! Paper shape to reproduce: the threshold rule delivers the bulk of the
//! order-of-magnitude gains; each later optimization contributes an
//! incremental improvement; the baseline tree traversal is slower than a
//! simple loop.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig12
//!         [--scale F] [--queries Q]`

use tkdc::{Classifier, ExecPolicy, Optimizations, Params, QueryScratch};
use tkdc_bench::{fmt_qps, print_table, time, BenchArgs};
use tkdc_common::Rng;
use tkdc_data::{DatasetKind, DatasetSpec};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    // Paper uses 500k rows of 4-d tmy3.
    let n = args.scaled_n(40_000);
    let queries = args.queries();
    let data = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n,
        seed,
    }
    .generate()
    .expect("generate") // INVARIANT: bench tooling fails fast
    .prefix_columns(4)
    .expect("prefix"); // INVARIANT: bench tooling fails fast

    let stages: [(&str, Optimizations); 5] = [
        ("Baseline", Optimizations::none()),
        (
            "+Threshold",
            Optimizations {
                threshold_rule: true,
                ..Optimizations::none()
            },
        ),
        (
            "+Tolerance",
            Optimizations {
                threshold_rule: true,
                tolerance_rule: true,
                ..Optimizations::none()
            },
        ),
        (
            "+Equiwidth",
            Optimizations {
                threshold_rule: true,
                tolerance_rule: true,
                equiwidth_split: true,
                grid: false,
            },
        ),
        ("+Grid", Optimizations::all()),
    ];

    println!("Fig. 12: cumulative factor analysis, tmy3 d=4, n={n} (query phase)\n");
    let mut rng = Rng::seed_from(seed ^ 0x51);
    let query_set = data.sample_rows(queries.min(n), &mut rng);
    let mut rows = Vec::new();
    for (name, opts) in stages {
        let params = Params::default().with_seed(seed).with_opts(opts);
        let clf = Classifier::fit_with(&data, &params, ExecPolicy::with_threads(args.threads()))
            .expect("fit"); // INVARIANT: bench tooling fails fast
        let mut scratch = QueryScratch::new();
        let (_, t_query) = time(|| {
            for q in query_set.iter_rows() {
                clf.classify_with(q, &mut scratch).expect("classify"); // INVARIANT: bench tooling fails fast
            }
        });
        let qps = query_set.rows() as f64 / t_query.as_secs_f64().max(1e-12);
        rows.push(vec![
            name.into(),
            fmt_qps(qps),
            format!("{:.1}", scratch.stats.kernels_per_query()),
        ]);
    }
    print_table(&["optimization", "points/s", "kernel evals/pt"], &rows);
}
