//! Fig. 10: query-throughput scaling over dataset size on the
//! 27-dimensional hep dataset (training excluded).
//!
//! Paper shape to reproduce: tKDC remains asymptotically faster than the
//! O(n)-per-query algorithms, but the gap grows more slowly than in d=2
//! (its exponent is (d−1)/d = 26/27 here).
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig10
//!         [--scale F] [--queries Q] [--max-n N]`

use tkdc_bench::{fmt_qps, print_table, run_throughput, Algo, BenchArgs};
use tkdc_data::{DatasetKind, DatasetSpec};

fn main() {
    let args = BenchArgs::parse();
    let queries = args.queries().min(500);
    let seed = args.seed();
    let max_n = args.get_usize("max-n", args.scaled_n(100_000));

    let mut sizes = Vec::new();
    let mut n = 10_000usize.min(max_n);
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }

    println!("Fig. 10: throughput vs dataset size, hep d=27 (query phase only)\n");
    let algos = [Algo::Tkdc, Algo::Simple, Algo::Rkde];
    let mut rows = Vec::new();
    for &n in &sizes {
        let data = DatasetSpec {
            kind: DatasetKind::Hep,
            n,
            seed,
        }
        .generate()
        .expect("generate"); // INVARIANT: bench tooling fails fast
        let mut row = vec![n.to_string()];
        for algo in algos {
            let r = run_throughput(algo, &data, 0.01, queries, seed, args.threads());
            row.push(fmt_qps(r.query_qps));
        }
        rows.push(row);
    }
    print_table(&["n", "tkdc", "simple", "rkde"], &rows);
    println!("\n(theory: tkdc per-query cost O(n^(26/27)); simple/rkde O(n))");
}
