//! Fig. 15 (Appendix B): throughput over the quantile threshold
//! parameter `p` on the 4-d tmy3 dataset.
//!
//! Paper shape to reproduce: tKDC is fastest at extreme quantiles (few
//! points near the threshold) and slowest mid-range, but always beats
//! the p-independent sklearn/naive lines. The runtime analysis
//! (Appendix A) predicts cost proportional to the density of points near
//! the threshold, q'(t).
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig15
//!         [--scale F] [--queries Q]`

use tkdc_bench::{fmt_qps, print_table, run_throughput, Algo, BenchArgs};
use tkdc_data::{DatasetKind, DatasetSpec};

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let n = args.scaled_n(40_000);
    let queries = args.queries();
    let data = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n,
        seed,
    }
    .generate()
    .expect("generate") // INVARIANT: bench tooling fails fast
    .prefix_columns(4)
    .expect("prefix"); // INVARIANT: bench tooling fails fast

    println!("Fig. 15: throughput vs quantile threshold p, tmy3 d=4, n={n}\n");
    let mut rows = Vec::new();
    for p in [0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let r = run_throughput(Algo::Tkdc, &data, p, queries, seed, args.threads());
        rows.push(vec![
            format!("{p:.2}"),
            fmt_qps(r.total_qps),
            format!("{:.0}", r.kernels_per_query),
        ]);
    }
    print_table(&["p", "tkdc queries/s", "kernels/query"], &rows);

    // p-independent reference lines.
    let simple = run_throughput(Algo::Simple, &data, 0.5, queries.min(300), seed, 1);
    let sklearn = run_throughput(Algo::Sklearn, &data, 0.5, queries, seed, 1);
    println!(
        "\nreference: simple {} q/s, sklearn {} q/s (independent of p)",
        fmt_qps(simple.total_qps),
        fmt_qps(sklearn.total_qps)
    );
}
