//! Fig. 14 (Appendix B): mnist dimensionality sweep — throughput as the
//! mnist analog is PCA-reduced to d ∈ {1, 2, 4, …, 256} plus the raw 784
//! pixels.
//!
//! Paper shape to reproduce: tKDC is competitive up to ~d=100 but loses
//! its advantage on this small (70k) dataset at very high dimensions,
//! while never degrading below the naive loop. Bandwidths are scaled 3×
//! for the PCA variants (underflow mitigation, per the appendix) and a
//! large fixed factor at d=784.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig14
//!         [--scale F] [--queries Q]`

use tkdc::{Classifier, ExecPolicy, Label, Params, QueryScratch};
use tkdc_baselines::{DensityEstimator, NaiveKde};
use tkdc_bench::{fmt_qps, print_table, time, BenchArgs};
use tkdc_common::{Matrix, Rng};
use tkdc_data::{mnist, DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;
use tkdc_linalg::Pca;

fn measure(data: &Matrix, b: f64, queries: usize, seed: u64, threads: usize) -> (f64, f64) {
    let mut rng = Rng::seed_from(seed ^ 0x14);
    let query_set = data.sample_rows(queries.min(data.rows()), &mut rng);
    // tKDC query throughput.
    let params = Params::default().with_seed(seed).with_bandwidth_factor(b);
    let clf = Classifier::fit_with(data, &params, ExecPolicy::with_threads(threads)).expect("fit"); // INVARIANT: bench tooling fails fast
    let mut scratch = QueryScratch::new();
    let (_, t_tkdc) = time(|| {
        for q in query_set.iter_rows() {
            // INVARIANT: bench tooling fails fast
            let _ = clf.classify_with(q, &mut scratch).expect("classify") == Label::High;
        }
    });
    // Naive throughput on the same queries.
    let naive = NaiveKde::fit(data, KernelKind::Gaussian, b).expect("fit"); // INVARIANT: bench tooling fails fast
    let t_naive = time(|| {
        for q in query_set.iter_rows() {
            naive.density(q).expect("density"); // INVARIANT: bench tooling fails fast
        }
    })
    .1;
    let q = query_set.rows() as f64;
    (
        q / t_tkdc.as_secs_f64().max(1e-12),
        q / t_naive.as_secs_f64().max(1e-12),
    )
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let n = args.scaled_n(5_000); // paper: 70k
    let queries = args.queries().min(500);

    let raw = DatasetSpec {
        kind: DatasetKind::Mnist { pca_dims: None },
        n,
        seed,
    }
    .generate()
    .expect("generate"); // INVARIANT: bench tooling fails fast

    println!("Fig. 14: throughput vs dimension, mnist analog n={n}\n");
    let dims = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut rows = Vec::new();
    // One truncated PCA at the largest k, sliced down for smaller dims.
    let max_k = *dims.iter().max().unwrap(); // INVARIANT: dims is a non-empty const list
    let pca = Pca::fit_truncated(&raw, max_k.min(raw.cols()), 30, seed ^ 0xFACE).expect("pca"); // INVARIANT: bench tooling fails fast
    let projected = pca.transform(&raw).expect("transform"); // INVARIANT: bench tooling fails fast
    for &d in &dims {
        if d > projected.cols() {
            continue;
        }
        let data = projected.prefix_columns(d).expect("prefix"); // INVARIANT: bench tooling fails fast
                                                                 // 3× Scott bandwidth for PCA variants (appendix note).
        let (tkdc_qps, naive_qps) = measure(&data, 3.0, queries, seed, args.threads());
        rows.push(vec![d.to_string(), fmt_qps(tkdc_qps), fmt_qps(naive_qps)]);
    }
    // Raw 784 pixels with a large fixed bandwidth factor (paper: b=1000).
    let (tkdc_qps, naive_qps) = measure(&raw, 1000.0, queries, seed, args.threads());
    rows.push(vec![
        mnist::DIM.to_string(),
        fmt_qps(tkdc_qps),
        fmt_qps(naive_qps),
    ]);
    print_table(&["d", "tkdc", "simple"], &rows);
}
