//! Diagnostic: stage-by-stage timing of one `run_throughput`-style pass,
//! used to investigate harness stalls at larger scales.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin probe -- --n 200000 --d 1`

use tkdc::{Classifier, Params};
use tkdc_bench::{time, BenchArgs};
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_index::{KdTree, SplitRule};
use tkdc_kernel::{scotts_rule, Kernel, KernelKind};

fn main() {
    let args = BenchArgs::parse();
    let n = args.get_usize("n", 200_000);
    let d = args.get_usize("d", 1);
    let seed = args.seed();

    let (data, t) = time(|| {
        DatasetSpec {
            kind: DatasetKind::Hep,
            n,
            seed,
        }
        .generate()
        .expect("generate") // INVARIANT: bench tooling fails fast
        .prefix_columns(d)
        .expect("prefix") // INVARIANT: bench tooling fails fast
    });
    eprintln!("generate: {t:.2?}");

    let (tree, t) = time(|| KdTree::build(&data, 32, SplitRule::TrimmedMidpoint).expect("build")); // INVARIANT: bench tooling fails fast
    eprintln!("kd-tree build: {t:.2?} ({} nodes)", tree.node_count());
    let h = scotts_rule(&data, 1.0).expect("bandwidth"); // INVARIANT: bench tooling fails fast
    let kernel = Kernel::new(KernelKind::Gaussian, h).expect("kernel"); // INVARIANT: bench tooling fails fast
    drop(kernel);

    let (bounds, t) = time(|| {
        tkdc::threshold::bound_threshold(&data, &Params::default().with_seed(seed))
            .expect("bootstrap") // INVARIANT: bench tooling fails fast
    });
    eprintln!("bootstrap: {t:.2?} (rounds {:?})", bounds.1.rounds);

    let (clf, t) =
        time(|| Classifier::fit(&data, &Params::default().with_seed(seed)).expect("fit")); // INVARIANT: bench tooling fails fast
    eprintln!("full fit: {t:.2?} (threshold {:.3e})", clf.threshold());

    for algo in [
        tkdc_bench::Algo::Tkdc,
        tkdc_bench::Algo::Sklearn,
        tkdc_bench::Algo::Rkde,
        tkdc_bench::Algo::Simple,
    ] {
        let (r, t) =
            time(|| tkdc_bench::run_throughput(algo, &data, 0.01, 200, seed, args.threads()));
        eprintln!("{}: wall {t:.2?}, qps {:.1}", algo.name(), r.total_qps);
    }
}
