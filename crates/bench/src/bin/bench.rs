//! Machine-readable perf baseline: fit + serial + parallel batch
//! throughput per thread count and dataset, written to
//! `BENCH_batch.json` so future changes can diff against a recorded
//! trajectory instead of anecdotes.
//!
//! ```text
//! cargo run --release -p tkdc-bench --bin bench -- \
//!     [--scale F] [--queries Q] [--threads-list 1,2,4,8] \
//!     [--repeats R] [--seed S] [--gate] [--out BENCH_batch.json]
//! ```
//!
//! Schema `tkdc-bench-batch/v2`. Per dataset:
//! * `parallel`: each thread count measured twice — through the
//!   classifier's **persistent pool** (`ExecPolicy::Parallel`, workers
//!   parked between batches) and through **per-batch scoped spawn**
//!   (`ExecPolicy::ScopedSpawn`). `pool_vs_spawn` > 1 means the pool's
//!   reuse beats respawning; every wall figure is the best of
//!   `--repeats` runs so the pool's one-time spawn cost lands in the
//!   warmup, which is exactly the serve steady state.
//! * `leaf_sum`: SoA-vs-row-major leaf ablation — the same query
//!   sample summed over every tree leaf with `Kernel::sum_block`
//!   (row-major) and `Kernel::sum_block_soa` (dimension-major), with a
//!   checksum cross-check.
//! * `skewed` (gauss_d2 only): a worst-case batch whose expensive
//!   near-threshold queries sit in one contiguous block, comparing the
//!   static-chunked scheduler against work stealing — the workload
//!   static chunking loses on by design. `--gate` turns
//!   "stealing ≥ 0.95× static" into a hard exit code for CI.
//!
//! All numbers are wall-clock on whatever machine runs the binary;
//! `threads_available` is recorded and `degraded` is set (with a loud
//! warning) when the machine has fewer cores than the largest requested
//! thread count, so a 1-core CI runner's flat speedups aren't mistaken
//! for a regression.

use std::fmt::Write as _;

use tkdc::{Classifier, ExecPolicy, Params, QueryStats};
use tkdc_bench::{time, BenchArgs};
use tkdc_common::{Matrix, Rng};
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_sync::Arc;

/// JSON float: non-finite values have no JSON literal, emit null.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Runs `f` `repeats` times; returns the last output and the best
/// (minimum) wall-clock in seconds. The first run doubles as warmup —
/// for the pool scheduler that is where lazy worker spawn lands.
fn bench_runs<T>(repeats: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, t0) = time(&mut f);
    let mut best = t0.as_secs_f64();
    for _ in 1..repeats.max(1) {
        let (o, t) = time(&mut f);
        out = o;
        best = best.min(t.as_secs_f64());
    }
    (out, best)
}

struct ThreadPoint {
    threads: usize,
    /// Persistent pool (`ExecPolicy::Parallel`): workers parked between
    /// batches, so steady-state cost is wakeup + steal, not spawn.
    pool_wall_s: f64,
    pool_qps: f64,
    pool_speedup: f64,
    /// Per-batch scoped spawn (`ExecPolicy::ScopedSpawn`): the old
    /// scheduler, kept as the ablation baseline.
    spawn_wall_s: f64,
    spawn_qps: f64,
    spawn_speedup: f64,
    /// spawn_wall / pool_wall: > 1 means pool reuse pays.
    pool_vs_spawn: f64,
}

struct SkewPoint {
    threads: usize,
    static_qps: f64,
    stealing_qps: f64,
}

struct LeafSumAblation {
    leaves: usize,
    /// Total training rows across all leaves (one pass = `queries` x this).
    rows: usize,
    queries: usize,
    row_major_ns_per_row: f64,
    soa_ns_per_row: f64,
    /// row_major / soa: > 1 means the dimension-major layout wins.
    soa_speedup: f64,
    /// Relative checksum divergence between the two layouts (FP
    /// accumulation order differs; anything near 1e-12 is bit noise).
    max_rel_diff: f64,
}

struct DatasetReport {
    name: String,
    /// `"large"` marks the configuration the CI perf gate reads;
    /// everything else is `"standard"`.
    config: String,
    n: usize,
    d: usize,
    fit_serial_s: f64,
    fit_parallel_s: f64,
    fit_threads: usize,
    threshold: f64,
    serial_qps: f64,
    /// Engine counters from the serial reference run — thread-count
    /// independent, so the recorded work mix is machine-stable.
    serial_stats: QueryStats,
    parallel: Vec<ThreadPoint>,
    leaf_sum: LeafSumAblation,
    skewed: Option<(usize, Vec<SkewPoint>)>,
}

/// A worst case for static chunking: the first eighth of the batch is
/// near-threshold (expensive, every pruning rule fails until deep in the
/// tree) and contiguous, the rest is far-tail (one node expansion). For a
/// 2-d standard gaussian KDE the density at radius `r` is about
/// `exp(-r²/2)/2π`, so the threshold circle sits at `r² = -2·ln(2π·t)`.
fn skewed_queries(threshold: f64, total: usize, seed: u64) -> (Matrix, usize) {
    let mut m = Matrix::with_cols(2);
    let hard = (total / 8).max(1);
    let r_sq = (-2.0 * (2.0 * std::f64::consts::PI * threshold).ln()).max(0.25);
    let r = r_sq.sqrt();
    let mut rng = Rng::seed_from(seed ^ 0x5EED);
    for i in 0..total {
        if i < hard {
            // On the threshold circle, jittered within a bandwidth or so.
            let angle = rng.uniform(0.0, 2.0 * std::f64::consts::PI);
            let rr = r + rng.normal(0.0, 0.05);
            m.push_row(&[rr * angle.cos(), rr * angle.sin()]).unwrap(); // INVARIANT: bench tooling fails fast
        } else {
            // Far tail: certain LOW after one bound evaluation.
            m.push_row(&[rng.uniform(12.0, 13.0), rng.uniform(12.0, 13.0)])
                .unwrap(); // INVARIANT: bench tooling fails fast
        }
    }
    (m, hard)
}

/// Times a full leaf sweep (every leaf of the fitted tree, `nq` query
/// points) through the row-major and SoA leaf kernels.
fn leaf_sum_ablation(clf: &Classifier, query_set: &Matrix, repeats: usize) -> LeafSumAblation {
    // INVARIANT: the ablation only runs on tree-backend fits (bench builds them).
    let tree = clf.tree().expect("leaf ablation requires the tree backend");
    let kernel = clf.kernel();
    let d = query_set.cols();
    let leaves: Vec<u32> = (0..tree.node_count() as u32) // CAST: node count fits u32 by construction
        .filter(|&id| tree.is_leaf(id))
        .collect();
    let rows: usize = leaves.iter().map(|&id| tree.node_block(id).len() / d).sum();
    let nq = query_set.rows().clamp(1, 32);

    let (row_sum, row_wall) = bench_runs(repeats, || {
        let mut acc = 0.0;
        for qi in 0..nq {
            let x = query_set.row(qi);
            for &id in &leaves {
                acc += kernel.sum_block(x, tree.node_block(id));
            }
        }
        acc
    });
    let (soa_sum, soa_wall) = bench_runs(repeats, || {
        let mut acc = 0.0;
        for qi in 0..nq {
            let x = query_set.row(qi);
            for &id in &leaves {
                let block = tree.node_block_soa(id);
                acc += kernel.sum_block_soa(x, block, block.len() / d);
            }
        }
        acc
    });

    let total_rows = (nq * rows) as f64;
    LeafSumAblation {
        leaves: leaves.len(),
        rows,
        queries: nq,
        row_major_ns_per_row: row_wall * 1e9 / total_rows.max(1.0),
        soa_ns_per_row: soa_wall * 1e9 / total_rows.max(1.0),
        soa_speedup: row_wall / soa_wall.max(1e-12),
        max_rel_diff: (row_sum - soa_sum).abs() / row_sum.abs().max(1e-300),
    }
}

struct MeasureCfg<'a> {
    name: &'a str,
    config: &'a str,
    queries: usize,
    threads_list: &'a [usize],
    seed: u64,
    repeats: usize,
    with_skew: bool,
}

fn measure_dataset(data: &Matrix, cfg: &MeasureCfg<'_>) -> DatasetReport {
    let max_threads = cfg.threads_list.iter().copied().max().unwrap_or(1);
    let params = Params::default().with_seed(cfg.seed);
    let (_, fit_serial) = time(|| Classifier::fit(data, &params).expect("fit")); // INVARIANT: bench tooling fails fast
    let (clf, fit_parallel) = time(|| {
        // INVARIANT: bench tooling fails fast
        Classifier::fit_with(data, &params, ExecPolicy::with_threads(max_threads)).expect("fit")
    });

    let q = cfg.queries.min(data.rows()).max(1);
    let mut rng = Rng::seed_from(cfg.seed ^ 0x9E37);
    // One Arc for the whole run: pool batches share the matrix zero-copy,
    // exactly like a serve request.
    let query_set = Arc::new(data.sample_rows(q, &mut rng));

    let ((_, serial_stats), serial_wall) = bench_runs(cfg.repeats, || {
        clf.classify_batch_with(&query_set, ExecPolicy::Serial)
            .expect("classify") // INVARIANT: bench tooling fails fast
    });
    let serial_qps = q as f64 / serial_wall.max(1e-12);

    let parallel = cfg
        .threads_list
        .iter()
        .map(|&threads| {
            let (_, pool_wall_s) = bench_runs(cfg.repeats, || {
                clf.classify_batch_shared(Arc::clone(&query_set), ExecPolicy::with_threads(threads))
                    .expect("classify") // INVARIANT: bench tooling fails fast
            });
            let (_, spawn_wall_s) = bench_runs(cfg.repeats, || {
                clf.classify_batch_with(
                    &query_set,
                    ExecPolicy::ScopedSpawn {
                        threads: Some(threads),
                    },
                )
                .expect("classify") // INVARIANT: bench tooling fails fast
            });
            ThreadPoint {
                threads,
                pool_wall_s,
                pool_qps: q as f64 / pool_wall_s.max(1e-12),
                pool_speedup: serial_wall / pool_wall_s.max(1e-12),
                spawn_wall_s,
                spawn_qps: q as f64 / spawn_wall_s.max(1e-12),
                spawn_speedup: serial_wall / spawn_wall_s.max(1e-12),
                pool_vs_spawn: spawn_wall_s / pool_wall_s.max(1e-12),
            }
        })
        .collect();

    let leaf_sum = leaf_sum_ablation(&clf, &query_set, cfg.repeats);

    let skewed = cfg.with_skew.then(|| {
        let (skew_set, _hard) = skewed_queries(clf.threshold(), q, cfg.seed);
        let skew_set = Arc::new(skew_set);
        let points = cfg
            .threads_list
            .iter()
            .filter(|&&t| t > 1)
            .map(|&threads| {
                let (_, static_wall) = bench_runs(cfg.repeats, || {
                    clf.classify_batch_with(
                        &skew_set,
                        ExecPolicy::StaticChunked {
                            threads: Some(threads),
                        },
                    )
                    .expect("classify") // INVARIANT: bench tooling fails fast
                });
                let (_, steal_wall) = bench_runs(cfg.repeats, || {
                    clf.classify_batch_shared(
                        Arc::clone(&skew_set),
                        ExecPolicy::with_threads(threads),
                    )
                    .expect("classify") // INVARIANT: bench tooling fails fast
                });
                SkewPoint {
                    threads,
                    static_qps: q as f64 / static_wall.max(1e-12),
                    stealing_qps: q as f64 / steal_wall.max(1e-12),
                }
            })
            .collect();
        (q, points)
    });

    DatasetReport {
        name: cfg.name.to_string(),
        config: cfg.config.to_string(),
        n: data.rows(),
        d: data.cols(),
        fit_serial_s: fit_serial.as_secs_f64(),
        fit_parallel_s: fit_parallel.as_secs_f64(),
        fit_threads: max_threads,
        threshold: clf.threshold(),
        serial_qps,
        serial_stats,
        parallel,
        leaf_sum,
        skewed,
    }
}

fn render_json(
    reports: &[DatasetReport],
    scale: f64,
    queries: usize,
    seed: u64,
    repeats: usize,
    threads_available: usize,
    degraded: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"tkdc-bench-batch/v2\",");
    let _ = writeln!(s, "  \"threads_available\": {threads_available},");
    let _ = writeln!(s, "  \"degraded\": {degraded},");
    let _ = writeln!(s, "  \"scale\": {},", jf(scale));
    let _ = writeln!(s, "  \"queries\": {queries},");
    let _ = writeln!(s, "  \"repeats\": {repeats},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"datasets\": [\n");
    for (di, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"config\": \"{}\",", r.config);
        let _ = writeln!(s, "      \"n\": {},", r.n);
        let _ = writeln!(s, "      \"d\": {},", r.d);
        let _ = writeln!(s, "      \"threshold\": {},", jf(r.threshold));
        let _ = writeln!(s, "      \"fit_serial_s\": {},", jf(r.fit_serial_s));
        let _ = writeln!(s, "      \"fit_parallel_s\": {},", jf(r.fit_parallel_s));
        let _ = writeln!(s, "      \"fit_threads\": {},", r.fit_threads);
        let _ = writeln!(s, "      \"serial_qps\": {},", jf(r.serial_qps));
        let counters: Vec<String> = r
            .serial_stats
            .named_counters()
            .iter()
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        let _ = writeln!(s, "      \"engine_counters\": {{{}}},", counters.join(", "));
        s.push_str("      \"parallel\": [\n");
        for (i, p) in r.parallel.iter().enumerate() {
            let comma = if i + 1 < r.parallel.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"threads\": {}, \"pool_wall_s\": {}, \"pool_qps\": {}, \
                 \"pool_speedup\": {}, \"spawn_wall_s\": {}, \"spawn_qps\": {}, \
                 \"spawn_speedup\": {}, \"pool_vs_spawn\": {}}}{comma}",
                p.threads,
                jf(p.pool_wall_s),
                jf(p.pool_qps),
                jf(p.pool_speedup),
                jf(p.spawn_wall_s),
                jf(p.spawn_qps),
                jf(p.spawn_speedup),
                jf(p.pool_vs_spawn)
            );
        }
        s.push_str("      ],\n");
        let ls = &r.leaf_sum;
        let _ = writeln!(
            s,
            "      \"leaf_sum\": {{\"leaves\": {}, \"rows\": {}, \"queries\": {}, \
             \"row_major_ns_per_row\": {}, \"soa_ns_per_row\": {}, \
             \"soa_speedup\": {}, \"max_rel_diff\": {}}}",
            ls.leaves,
            ls.rows,
            ls.queries,
            jf(ls.row_major_ns_per_row),
            jf(ls.soa_ns_per_row),
            jf(ls.soa_speedup),
            jf(ls.max_rel_diff)
        );
        if let Some((skew_q, points)) = &r.skewed {
            s.push_str(",\n      \"skewed\": {\n");
            let _ = writeln!(s, "        \"queries\": {skew_q},");
            let _ = writeln!(s, "        \"hard_fraction\": 0.125,");
            s.push_str("        \"per_threads\": [\n");
            for (i, p) in points.iter().enumerate() {
                let comma = if i + 1 < points.len() { "," } else { "" };
                let _ = writeln!(
                    s,
                    "          {{\"threads\": {}, \"static_qps\": {}, \"stealing_qps\": {}, \
                     \"stealing_vs_static\": {}}}{comma}",
                    p.threads,
                    jf(p.static_qps),
                    jf(p.stealing_qps),
                    jf(p.stealing_qps / p.static_qps.max(1e-12))
                );
            }
            s.push_str("        ]\n      }\n");
        }
        let comma = if di + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

/// `--gate`: work stealing must hold ≥ 0.95× static chunking on the
/// skewed workload at every thread count (satellite gate for the CI
/// bench-smoke job). Returns false — after printing every failing
/// point — when the bar is missed.
fn stealing_gate(reports: &[DatasetReport]) -> bool {
    let mut ok = true;
    for r in reports {
        let Some((_, points)) = &r.skewed else {
            continue;
        };
        for p in points {
            let ratio = p.stealing_qps / p.static_qps.max(1e-12);
            if ratio < 0.95 {
                eprintln!(
                    "GATE FAIL {}: threads={} stealing {:.0} q/s < 0.95 x static {:.0} q/s \
                     (ratio {:.3})",
                    r.name, p.threads, p.stealing_qps, p.static_qps, ratio
                );
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let queries = args.get_usize("queries", 100_000);
    let repeats = args.get_usize("repeats", 3).max(1);
    let out = args
        .get_str("out")
        .unwrap_or("BENCH_batch.json")
        .to_string();
    let threads_available = tkdc_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads_list: Vec<usize> = args
        .get_str("threads-list")
        .unwrap_or("1,2,4")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&t| t >= 1)
        .collect();
    let threads_list = if threads_list.is_empty() {
        vec![1, 2, 4]
    } else {
        threads_list
    };
    let max_requested = threads_list.iter().copied().max().unwrap_or(1);
    let degraded = threads_available < max_requested;
    if degraded {
        eprintln!("================================================================");
        eprintln!(
            "WARNING: this machine exposes {threads_available} hardware thread(s) but the run \
             requests up to {max_requested}."
        );
        eprintln!("Parallel speedups below are NOT meaningful scaling numbers;");
        eprintln!("the baseline is marked \"degraded\": true in {out}.");
        eprintln!("================================================================");
    }

    let mut reports = Vec::new();
    let run = |name: &str,
               kind: DatasetKind,
               n: usize,
               queries: usize,
               config: &str,
               with_skew: bool,
               reports: &mut Vec<DatasetReport>| {
        let data = DatasetSpec { kind, n, seed }
            .generate()
            .expect("generate dataset"); // INVARIANT: bench tooling fails fast
        let data = if name.starts_with("tmy3") {
            let d = data.cols().min(8);
            data.prefix_columns(d).expect("prefix") // INVARIANT: bench tooling fails fast
        } else {
            data
        };
        eprintln!(
            "{name}: n={}, d={}, queries={}",
            data.rows(),
            data.cols(),
            queries.min(data.rows())
        );
        reports.push(measure_dataset(
            &data,
            &MeasureCfg {
                name,
                config,
                queries,
                threads_list: &threads_list,
                seed,
                repeats,
                with_skew,
            },
        ));
    };

    // The tentpole configuration the CI perf gate reads: ≥1M points,
    // ≥100k queries at scale 1. The d∈{8,64} twins exercise the SoA
    // kernels where dimensionality actually stresses the layout.
    run(
        "gauss_d2",
        DatasetKind::Gauss { d: 2 },
        args.scaled_n(1_000_000),
        queries,
        "large",
        true,
        &mut reports,
    );
    run(
        "gauss_d8",
        DatasetKind::Gauss { d: 8 },
        args.scaled_n(250_000),
        (queries / 2).max(1),
        "standard",
        false,
        &mut reports,
    );
    run(
        "gauss_d64",
        DatasetKind::Gauss { d: 64 },
        args.scaled_n(50_000),
        (queries / 5).max(1),
        "standard",
        false,
        &mut reports,
    );
    run(
        "tmy3_d8",
        DatasetKind::Tmy3,
        args.scaled_n(50_000),
        (queries / 2).max(1),
        "standard",
        false,
        &mut reports,
    );

    let json = render_json(
        &reports,
        args.scale(),
        queries,
        seed,
        repeats,
        threads_available,
        degraded,
    );
    std::fs::write(&out, &json).expect("write baseline"); // INVARIANT: bench tooling fails fast
    for r in &reports {
        eprintln!(
            "{} [{}]: fit {:.2}s (serial) / {:.2}s ({} threads), serial {:.0} q/s",
            r.name, r.config, r.fit_serial_s, r.fit_parallel_s, r.fit_threads, r.serial_qps
        );
        for p in &r.parallel {
            eprintln!(
                "  threads={}: pool {:.0} q/s ({:.2}x), spawn {:.0} q/s ({:.2}x), pool/spawn {:.2}x",
                p.threads, p.pool_qps, p.pool_speedup, p.spawn_qps, p.spawn_speedup, p.pool_vs_spawn
            );
        }
        eprintln!(
            "  leaf_sum: {} leaves / {} rows, row-major {:.2} ns/row, soa {:.2} ns/row ({:.2}x)",
            r.leaf_sum.leaves,
            r.leaf_sum.rows,
            r.leaf_sum.row_major_ns_per_row,
            r.leaf_sum.soa_ns_per_row,
            r.leaf_sum.soa_speedup
        );
    }
    eprintln!("baseline written to {out}");

    if args.has("gate") {
        if stealing_gate(&reports) {
            eprintln!("gate: ok (stealing >= 0.95x static on every skewed point)");
        } else {
            std::process::exit(1);
        }
    }
}
