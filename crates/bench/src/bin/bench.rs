//! Machine-readable perf baseline: fit + serial + parallel batch
//! throughput per thread count and dataset, written to
//! `BENCH_batch.json` so future changes can diff against a recorded
//! trajectory instead of anecdotes.
//!
//! ```text
//! cargo run --release -p tkdc-bench --bin bench -- \
//!     [--scale F] [--queries Q] [--threads-list 1,2,4,8] \
//!     [--seed S] [--out BENCH_batch.json]
//! ```
//!
//! Two workloads per dataset:
//! * `parallel`: the full query sample through the work-stealing
//!   engine at each thread count, with speedup relative to serial;
//! * `skewed` (gaussian only): a worst-case batch whose expensive
//!   near-threshold queries sit in one contiguous block, comparing the
//!   static-chunked scheduler against work stealing — the workload
//!   static chunking loses on by design.
//!
//! All numbers are wall-clock on whatever machine runs the binary;
//! `threads_available` is recorded so a 1-core CI runner's flat
//! speedups aren't mistaken for a regression.

use std::fmt::Write as _;

use tkdc::{Classifier, ExecPolicy, Params, QueryStats};
use tkdc_bench::{time, BenchArgs};
use tkdc_common::{Matrix, Rng};
use tkdc_data::{DatasetKind, DatasetSpec};

/// JSON float: non-finite values have no JSON literal, emit null.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

struct ThreadPoint {
    threads: usize,
    wall_s: f64,
    qps: f64,
    speedup: f64,
}

struct SkewPoint {
    threads: usize,
    static_qps: f64,
    stealing_qps: f64,
}

struct DatasetReport {
    name: String,
    n: usize,
    d: usize,
    fit_serial_s: f64,
    fit_parallel_s: f64,
    fit_threads: usize,
    threshold: f64,
    serial_qps: f64,
    /// Engine counters from the serial reference run — thread-count
    /// independent, so the recorded work mix is machine-stable.
    serial_stats: QueryStats,
    parallel: Vec<ThreadPoint>,
    skewed: Option<(usize, Vec<SkewPoint>)>,
}

/// A worst case for static chunking: the first eighth of the batch is
/// near-threshold (expensive, every pruning rule fails until deep in the
/// tree) and contiguous, the rest is far-tail (one node expansion). For a
/// 2-d standard gaussian KDE the density at radius `r` is about
/// `exp(-r²/2)/2π`, so the threshold circle sits at `r² = -2·ln(2π·t)`.
fn skewed_queries(threshold: f64, total: usize, seed: u64) -> (Matrix, usize) {
    let mut m = Matrix::with_cols(2);
    let hard = (total / 8).max(1);
    let r_sq = (-2.0 * (2.0 * std::f64::consts::PI * threshold).ln()).max(0.25);
    let r = r_sq.sqrt();
    let mut rng = Rng::seed_from(seed ^ 0x5EED);
    for i in 0..total {
        if i < hard {
            // On the threshold circle, jittered within a bandwidth or so.
            let angle = rng.uniform(0.0, 2.0 * std::f64::consts::PI);
            let rr = r + rng.normal(0.0, 0.05);
            m.push_row(&[rr * angle.cos(), rr * angle.sin()]).unwrap(); // INVARIANT: bench tooling fails fast
        } else {
            // Far tail: certain LOW after one bound evaluation.
            m.push_row(&[rng.uniform(12.0, 13.0), rng.uniform(12.0, 13.0)])
                .unwrap(); // INVARIANT: bench tooling fails fast
        }
    }
    (m, hard)
}

fn measure_dataset(
    name: &str,
    data: &Matrix,
    queries: usize,
    threads_list: &[usize],
    seed: u64,
    with_skew: bool,
) -> DatasetReport {
    let max_threads = threads_list.iter().copied().max().unwrap_or(1);
    let params = Params::default().with_seed(seed);
    let (_, fit_serial) = time(|| Classifier::fit(data, &params).expect("fit")); // INVARIANT: bench tooling fails fast
    let (clf, fit_parallel) =
        time(|| Classifier::fit_with_threads(data, &params, max_threads).expect("fit")); // INVARIANT: bench tooling fails fast

    let q = queries.min(data.rows()).max(1);
    let mut rng = Rng::seed_from(seed ^ 0x9E37);
    let query_set = data.sample_rows(q, &mut rng);

    let ((_, serial_stats), t_serial) = time(|| {
        clf.classify_batch_with(&query_set, ExecPolicy::Serial)
            .expect("classify") // INVARIANT: bench tooling fails fast
    });
    let serial_qps = q as f64 / t_serial.as_secs_f64().max(1e-12);

    let parallel = threads_list
        .iter()
        .map(|&threads| {
            let (_, t) = time(|| {
                clf.classify_batch_with(&query_set, ExecPolicy::with_threads(threads))
                    .expect("classify") // INVARIANT: bench tooling fails fast
            });
            let wall_s = t.as_secs_f64();
            ThreadPoint {
                threads,
                wall_s,
                qps: q as f64 / wall_s.max(1e-12),
                speedup: t_serial.as_secs_f64() / wall_s.max(1e-12),
            }
        })
        .collect();

    let skewed = with_skew.then(|| {
        let (skew_set, _hard) = skewed_queries(clf.threshold(), q, seed);
        let points = threads_list
            .iter()
            .filter(|&&t| t > 1)
            .map(|&threads| {
                let (_, t_static) = time(|| {
                    clf.classify_batch_with(
                        &skew_set,
                        ExecPolicy::StaticChunked {
                            threads: Some(threads),
                        },
                    )
                    .expect("classify") // INVARIANT: bench tooling fails fast
                });
                let (_, t_steal) = time(|| {
                    clf.classify_batch_with(&skew_set, ExecPolicy::with_threads(threads))
                        .expect("classify") // INVARIANT: bench tooling fails fast
                });
                SkewPoint {
                    threads,
                    static_qps: q as f64 / t_static.as_secs_f64().max(1e-12),
                    stealing_qps: q as f64 / t_steal.as_secs_f64().max(1e-12),
                }
            })
            .collect();
        (q, points)
    });

    DatasetReport {
        name: name.to_string(),
        n: data.rows(),
        d: data.cols(),
        fit_serial_s: fit_serial.as_secs_f64(),
        fit_parallel_s: fit_parallel.as_secs_f64(),
        fit_threads: max_threads,
        threshold: clf.threshold(),
        serial_qps,
        serial_stats,
        parallel,
        skewed,
    }
}

fn render_json(
    reports: &[DatasetReport],
    scale: f64,
    queries: usize,
    seed: u64,
    threads_available: usize,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"tkdc-bench-batch/v1\",");
    let _ = writeln!(s, "  \"threads_available\": {threads_available},");
    let _ = writeln!(s, "  \"scale\": {},", jf(scale));
    let _ = writeln!(s, "  \"queries\": {queries},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"datasets\": [\n");
    for (di, r) in reports.iter().enumerate() {
        s.push_str("    {\n");
        let _ = writeln!(s, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(s, "      \"n\": {},", r.n);
        let _ = writeln!(s, "      \"d\": {},", r.d);
        let _ = writeln!(s, "      \"threshold\": {},", jf(r.threshold));
        let _ = writeln!(s, "      \"fit_serial_s\": {},", jf(r.fit_serial_s));
        let _ = writeln!(s, "      \"fit_parallel_s\": {},", jf(r.fit_parallel_s));
        let _ = writeln!(s, "      \"fit_threads\": {},", r.fit_threads);
        let _ = writeln!(s, "      \"serial_qps\": {},", jf(r.serial_qps));
        let counters: Vec<String> = r
            .serial_stats
            .named_counters()
            .iter()
            .map(|(name, value)| format!("\"{name}\": {value}"))
            .collect();
        let _ = writeln!(s, "      \"engine_counters\": {{{}}},", counters.join(", "));
        s.push_str("      \"parallel\": [\n");
        for (i, p) in r.parallel.iter().enumerate() {
            let comma = if i + 1 < r.parallel.len() { "," } else { "" };
            let _ = writeln!(
                s,
                "        {{\"threads\": {}, \"wall_s\": {}, \"qps\": {}, \"speedup\": {}}}{comma}",
                p.threads,
                jf(p.wall_s),
                jf(p.qps),
                jf(p.speedup)
            );
        }
        s.push_str("      ]");
        if let Some((skew_q, points)) = &r.skewed {
            s.push_str(",\n      \"skewed\": {\n");
            let _ = writeln!(s, "        \"queries\": {skew_q},");
            let _ = writeln!(s, "        \"hard_fraction\": 0.125,");
            s.push_str("        \"per_threads\": [\n");
            for (i, p) in points.iter().enumerate() {
                let comma = if i + 1 < points.len() { "," } else { "" };
                let _ = writeln!(
                    s,
                    "          {{\"threads\": {}, \"static_qps\": {}, \"stealing_qps\": {}}}{comma}",
                    p.threads,
                    jf(p.static_qps),
                    jf(p.stealing_qps)
                );
            }
            s.push_str("        ]\n      }\n");
        } else {
            s.push('\n');
        }
        let comma = if di + 1 < reports.len() { "," } else { "" };
        let _ = writeln!(s, "    }}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let queries = args.queries();
    let out = args
        .get_str("out")
        .unwrap_or("BENCH_batch.json")
        .to_string();
    let threads_available = tkdc_sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads_list: Vec<usize> = args
        .get_str("threads-list")
        .unwrap_or("1,2,4")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&t| t >= 1)
        .collect();
    let threads_list = if threads_list.is_empty() {
        vec![1, 2, 4]
    } else {
        threads_list
    };

    let mut reports = Vec::new();

    let gauss = DatasetSpec {
        kind: DatasetKind::Gauss { d: 2 },
        n: args.scaled_n(100_000),
        seed,
    }
    .generate()
    .expect("generate gauss"); // INVARIANT: bench tooling fails fast
    eprintln!("gauss_d2: n={}, queries={}", gauss.rows(), queries);
    reports.push(measure_dataset(
        "gauss_d2",
        &gauss,
        queries,
        &threads_list,
        seed,
        true,
    ));

    let tmy3 = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n: args.scaled_n(50_000),
        seed,
    }
    .generate()
    .expect("generate tmy3"); // INVARIANT: bench tooling fails fast
    let d = tmy3.cols().min(8);
    let tmy3 = tmy3.prefix_columns(d).expect("prefix"); // INVARIANT: bench tooling fails fast
    eprintln!("tmy3_d{d}: n={}, queries={}", tmy3.rows(), queries);
    reports.push(measure_dataset(
        &format!("tmy3_d{d}"),
        &tmy3,
        queries,
        &threads_list,
        seed,
        false,
    ));

    let json = render_json(&reports, args.scale(), queries, seed, threads_available);
    std::fs::write(&out, &json).expect("write baseline"); // INVARIANT: bench tooling fails fast
    for r in &reports {
        eprintln!(
            "{}: fit {:.2}s (serial) / {:.2}s ({} threads), serial {:.0} q/s",
            r.name, r.fit_serial_s, r.fit_parallel_s, r.fit_threads, r.serial_qps
        );
        for p in &r.parallel {
            eprintln!(
                "  threads={}: {:.0} q/s ({:.2}x)",
                p.threads, p.qps, p.speedup
            );
        }
    }
    eprintln!("baseline written to {out}");
}
