//! Load generator for the `tkdc-serve` daemon.
//!
//! Drives `Classify` micro-batches at several concurrency levels and
//! reports throughput plus client-observed p50/p99 latency per level as
//! `BENCH_serve.json` (schema `tkdc-bench-serve/v3`). Before shutting
//! the daemon down it also fetches the server's own `Stats` snapshot —
//! the log2-µs latency histogram (both the since-start total and the
//! sliding-window view) and the folded `engine.*` pruning counters —
//! and embeds it as the report's `"server"` object, so one file carries
//! both the client-observed and server-observed views.
//!
//! Two modes:
//!
//! * **Self-hosted** (default): trains a small model in-process, spawns
//!   the server on an ephemeral port, benchmarks it, and shuts it down.
//!   This is how the committed `BENCH_serve.json` is produced.
//! * **External** (`--addr HOST:PORT`): benchmarks an already-running
//!   `tkdc serve` daemon (used by the CI smoke job). Pass `--shutdown`
//!   to send a `Shutdown` request when done.
//!
//! Flags: `--levels 1,4,16` (client concurrency levels), `--batch 64`
//! (points per request), `--requests 50` (requests per client),
//! `--dims 2` (query dimensionality, external mode), `--seed`,
//! `--scale` (training-set size multiplier, self-hosted mode),
//! `--timeout-ms 10000`, `--out BENCH_serve.json`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use tkdc::{Classifier, ExecPolicy, Params};
use tkdc_bench::BenchArgs;
use tkdc_common::{Matrix, Rng};
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_serve::{Client, ServeConfig, Server, StatsSnapshot};

/// JSON float: non-finite values have no JSON literal, emit null.
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

struct LevelReport {
    concurrency: usize,
    requests: usize,
    points: usize,
    errors: usize,
    wall_s: f64,
    rps: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

/// Client-side percentile over the merged latency sample (exact, not
/// histogram-bucketed — this is the ground truth the server's own
/// `Stats` histogram approximates).
fn percentile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()); // CAST: bounded by len
    sorted[rank - 1] as f64 // CAST: micros fit f64 exactly below 2^53
}

/// Deterministic standard-normal query batch (matches the self-hosted
/// training distribution; for an external server it simply exercises a
/// realistic mix of prunable and near-threshold points).
fn query_batch(dims: usize, batch: usize, rng: &mut Rng) -> Matrix {
    let mut m = Matrix::with_cols(dims);
    let mut row = vec![0.0; dims];
    for _ in 0..batch {
        for v in row.iter_mut() {
            *v = rng.normal(0.0, 1.0);
        }
        m.push_row(&row).expect("push query row"); // INVARIANT: bench tooling fails fast
    }
    m
}

/// Runs one concurrency level: `concurrency` clients, each issuing
/// `requests` Classify batches over its own connection.
fn run_level(
    addr: &str,
    concurrency: usize,
    requests: usize,
    batch: usize,
    dims: usize,
    seed: u64,
    timeout: Duration,
) -> LevelReport {
    let start = Instant::now();
    let mut latencies: Vec<u64> = Vec::with_capacity(concurrency * requests);
    let mut errors = 0usize;
    tkdc_sync::thread::scope(|s| {
        let handles: Vec<_> = (0..concurrency)
            .map(|c| {
                s.spawn(move || {
                    let mut lats = Vec::with_capacity(requests);
                    let mut errs = 0usize;
                    let mut rng =
                        Rng::seed_from(seed ^ (c as u64).wrapping_mul(0x9E3779B97F4A7C15)); // CAST: client index widens losslessly
                    let mut client = match Client::connect_with_timeout(addr, timeout) {
                        Ok(c) => c,
                        Err(_) => return (lats, requests), // whole connection failed
                    };
                    for _ in 0..requests {
                        let points = query_batch(dims, batch, &mut rng);
                        let t = Instant::now();
                        match client.classify(&points) {
                            Ok(labels) if labels.len() == batch => {
                                lats.push(t.elapsed().as_micros() as u64) // CAST: < 2^64 µs
                            }
                            _ => errs += 1,
                        }
                    }
                    (lats, errs)
                })
            })
            .collect();
        for h in handles {
            let (lats, errs) = h.join().expect("client thread"); // INVARIANT: bench tooling fails fast
            latencies.extend(lats);
            errors += errs;
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let done = latencies.len();
    LevelReport {
        concurrency,
        requests: done,
        points: done * batch,
        errors,
        wall_s,
        rps: done as f64 / wall_s.max(1e-12),
        qps: (done * batch) as f64 / wall_s.max(1e-12),
        p50_us: percentile_us(&latencies, 0.50),
        p99_us: percentile_us(&latencies, 0.99),
    }
}

/// Histogram buckets as `[le_us | null, count]` pairs (null = the
/// unbounded last bucket).
fn render_buckets(buckets: &[(f64, u64)]) -> String {
    let pairs: Vec<String> = buckets
        .iter()
        .map(|&(le, count)| {
            let le = if le.is_finite() {
                format!("{le}")
            } else {
                "null".to_string()
            };
            format!("[{le}, {count}]")
        })
        .collect();
    pairs.join(", ")
}

/// Renders the server's own `Stats` snapshot: backend provenance,
/// transport counters, the log2-µs latency histogram (since-start
/// total and the sliding-window view, each as `[le_us | null, count]`
/// pairs), and the engine's pruning counters.
fn render_server_stats(s: &mut String, snap: &StatsSnapshot) {
    s.push_str("  \"server\": {\n");
    let _ = writeln!(s, "    \"backend\": \"{}\",", snap.backend);
    let _ = writeln!(s, "    \"bound_kind\": \"{}\",", snap.bound_kind);
    let _ = writeln!(s, "    \"requests_total\": {},", snap.requests_total);
    let _ = writeln!(s, "    \"errors_total\": {},", snap.errors_total);
    let _ = writeln!(s, "    \"classifies\": {},", snap.classifies);
    let _ = writeln!(s, "    \"points_classified\": {},", snap.points_classified);
    let _ = writeln!(s, "    \"timeouts\": {},", snap.timeouts);
    let _ = writeln!(
        s,
        "    \"rejected_over_capacity\": {},",
        snap.rejected_over_capacity
    );
    let _ = writeln!(s, "    \"p50_us\": {},", jf(snap.latency_quantile_us(0.50)));
    let _ = writeln!(s, "    \"p99_us\": {},", jf(snap.latency_quantile_us(0.99)));
    let _ = writeln!(s, "    \"window_seconds\": {},", snap.window_seconds);
    let _ = writeln!(
        s,
        "    \"window_p50_us\": {},",
        jf(snap.window_latency_quantile_us(0.50))
    );
    let _ = writeln!(
        s,
        "    \"window_p99_us\": {},",
        jf(snap.window_latency_quantile_us(0.99))
    );
    let _ = writeln!(
        s,
        "    \"latency_buckets\": [{}],",
        render_buckets(&snap.latency_buckets)
    );
    let _ = writeln!(
        s,
        "    \"window_latency_buckets\": [{}],",
        render_buckets(&snap.window_latency_buckets)
    );
    let counters: Vec<String> = snap
        .engine_counters
        .iter()
        .map(|(name, value)| format!("\"{name}\": {value}"))
        .collect();
    let _ = writeln!(s, "    \"engine_counters\": {{{}}}", counters.join(", "));
    s.push_str("  },\n");
}

fn render_json(
    addr: &str,
    self_hosted: bool,
    batch: usize,
    requests: usize,
    seed: u64,
    server: Option<&StatsSnapshot>,
    levels: &[LevelReport],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"tkdc-bench-serve/v3\",");
    let _ = writeln!(s, "  \"addr\": \"{addr}\",");
    let _ = writeln!(s, "  \"self_hosted\": {self_hosted},");
    let _ = writeln!(s, "  \"batch\": {batch},");
    let _ = writeln!(s, "  \"requests_per_client\": {requests},");
    let _ = writeln!(s, "  \"seed\": {seed},");
    if let Some(snap) = server {
        render_server_stats(&mut s, snap);
    }
    s.push_str("  \"levels\": [\n");
    for (i, l) in levels.iter().enumerate() {
        let comma = if i + 1 < levels.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"concurrency\": {}, \"requests\": {}, \"points\": {}, \"errors\": {}, \
             \"wall_s\": {}, \"rps\": {}, \"qps\": {}, \"p50_us\": {}, \"p99_us\": {}}}{comma}",
            l.concurrency,
            l.requests,
            l.points,
            l.errors,
            jf(l.wall_s),
            jf(l.rps),
            jf(l.qps),
            jf(l.p50_us),
            jf(l.p99_us)
        );
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let batch = args.get_usize("batch", 64);
    let requests = args.get_usize("requests", 50);
    let timeout = Duration::from_millis(args.get_usize("timeout-ms", 10_000) as u64); // CAST: flag value
    let out = args
        .get_str("out")
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let levels_spec: Vec<usize> = args
        .get_str("levels")
        .unwrap_or("1,4,16")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&c| c >= 1)
        .collect();
    let levels_spec = if levels_spec.is_empty() {
        vec![1, 4, 16]
    } else {
        levels_spec
    };

    // External mode benchmarks a running daemon; self-hosted mode
    // trains, spawns, benchmarks, and drains its own.
    let (addr, dims, self_hosted, handle) = match args.get_str("addr") {
        Some(addr) => (addr.to_string(), args.get_usize("dims", 2), false, None),
        None => {
            let n = args.scaled_n(20_000);
            eprintln!("self-hosted: training on {n} gaussian rows …");
            let data = DatasetSpec {
                kind: DatasetKind::Gauss { d: 2 },
                n,
                seed,
            }
            .generate()
            .expect("generate training data"); // INVARIANT: bench tooling fails fast
            let params = Params::default().with_seed(seed);
            let clf = Classifier::fit(&data, &params).expect("fit"); // INVARIANT: bench tooling fails fast

            // Sanity: one served batch must match the local engine.
            let mut rng = Rng::seed_from(seed ^ 0xC0FFEE);
            let probe = query_batch(2, batch, &mut rng);
            let (local, _) = clf
                .classify_batch_with(&probe, ExecPolicy::parallel())
                .expect("local classify"); // INVARIANT: bench tooling fails fast

            let server = Server::bind(ServeConfig::default(), clf).expect("bind ephemeral port"); // INVARIANT: bench tooling fails fast
            let addr = server.local_addr().expect("local addr").to_string(); // INVARIANT: bench tooling fails fast
            let handle = server.spawn();

            let mut client = Client::connect_with_timeout(&addr, timeout).expect("probe connect"); // INVARIANT: bench tooling fails fast
            let served = client.classify(&probe).expect("probe classify"); // INVARIANT: bench tooling fails fast
            assert_eq!(served, local, "served labels diverged from local engine");
            (addr, 2, true, Some(handle))
        }
    };

    let mut reports = Vec::new();
    for &concurrency in &levels_spec {
        eprintln!("level: {concurrency} clients × {requests} requests × {batch} points …");
        let report = run_level(&addr, concurrency, requests, batch, dims, seed, timeout);
        eprintln!(
            "  {:.0} req/s, {:.0} points/s, p50 {} µs, p99 {} µs, {} errors",
            report.rps, report.qps, report.p50_us, report.p99_us, report.errors
        );
        reports.push(report);
    }

    // Fetch the server's own view BEFORE shutdown drains it.
    let server_stats = Client::connect_with_timeout(&addr, timeout)
        .and_then(|mut c| c.stats())
        .ok();
    if server_stats.is_none() {
        eprintln!("warning: could not fetch server stats; report will omit \"server\"");
    }

    if self_hosted || args.has("shutdown") {
        let mut client = Client::connect_with_timeout(&addr, timeout).expect("shutdown connect"); // INVARIANT: bench tooling fails fast
        client.shutdown().expect("shutdown request"); // INVARIANT: bench tooling fails fast
    }
    if let Some(handle) = handle {
        handle.join().expect("server drain"); // INVARIANT: bench tooling fails fast
    }

    let json = render_json(
        &addr,
        self_hosted,
        batch,
        requests,
        seed,
        server_stats.as_ref(),
        &reports,
    );
    std::fs::write(&out, &json).expect("write report"); // INVARIANT: bench tooling fails fast
    eprintln!("wrote {out}");
}
