//! Prints Table 3 (the dataset inventory) and per-dataset generation
//! sanity statistics at the harness's working scale.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin datasets [--scale F]`

use tkdc_bench::{print_table, BenchArgs};
use tkdc_common::stats;
use tkdc_data::{DatasetKind, DatasetSpec, PAPER_TABLE3};

fn main() {
    let args = BenchArgs::parse();
    println!("Table 3: datasets used in evaluation (paper sizes)\n");
    let rows: Vec<Vec<String>> = PAPER_TABLE3
        .iter()
        .map(|&(name, d, n)| vec![name.to_string(), d.to_string(), format!("{n}")])
        .collect();
    print_table(&["name", "d", "n (paper)"], &rows);

    println!(
        "\nGenerated analogs at harness scale (--scale {}):\n",
        args.scale()
    );
    let specs = [
        DatasetSpec {
            kind: DatasetKind::Gauss { d: 2 },
            n: args.scaled_n(100_000),
            seed: args.seed(),
        },
        DatasetSpec {
            kind: DatasetKind::Tmy3,
            n: args.scaled_n(50_000),
            seed: args.seed(),
        },
        DatasetSpec {
            kind: DatasetKind::Home,
            n: args.scaled_n(50_000),
            seed: args.seed(),
        },
        DatasetSpec {
            kind: DatasetKind::Hep,
            n: args.scaled_n(50_000),
            seed: args.seed(),
        },
        DatasetSpec {
            kind: DatasetKind::Sift { d: 64 },
            n: args.scaled_n(20_000),
            seed: args.seed(),
        },
        DatasetSpec {
            kind: DatasetKind::Mnist { pca_dims: Some(64) },
            n: args.scaled_n(5_000),
            seed: args.seed(),
        },
        DatasetSpec {
            kind: DatasetKind::Shuttle,
            n: args.scaled_n(43_500),
            seed: args.seed(),
        },
    ];
    let mut rows = Vec::new();
    for spec in specs {
        let m = spec.generate().expect("generate"); // INVARIANT: bench tooling fails fast
        let stds = stats::column_stds(&m);
        let mean_std = stds.iter().sum::<f64>() / stds.len() as f64;
        rows.push(vec![
            spec.name(),
            m.cols().to_string(),
            m.rows().to_string(),
            format!("{mean_std:.3}"),
        ]);
    }
    print_table(&["analog", "d", "n (generated)", "mean column std"], &rows);
}
