//! Fig. 7: end-to-end throughput (training amortized) across the eight
//! dataset panels and all six algorithms of Table 2.
//!
//! Paper shape to reproduce: tKDC wins by orders of magnitude on every
//! low/moderate-dimensional panel; `ks` beats it only on the 2-d gauss
//! panel; everything converges on the small high-dimensional mnist data.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig7
//!         [--scale F] [--queries Q] [--p P] [--list-algos]`

use tkdc_bench::{fmt_qps, print_table, run_throughput, Algo, BenchArgs};
use tkdc_data::{DatasetKind, DatasetSpec};

fn main() {
    let args = BenchArgs::parse();
    if args.has("list-algos") {
        println!("Table 2: algorithms used in evaluation\n");
        print_table(
            &["name", "description"],
            &[
                vec![
                    "tkdc".into(),
                    "density classification w/ threshold pruning".into(),
                ],
                vec![
                    "simple".into(),
                    "naive algorithm, iterates through every point".into(),
                ],
                vec!["sklearn".into(), "k-d tree approximation (rtol 0.1)".into()],
                vec!["ks".into(), "binning approximation (d <= 4)".into()],
                vec!["rkde".into(), "contribution from only nearby points".into()],
                vec![
                    "nocut".into(),
                    "tkdc w/ threshold rule and grid disabled".into(),
                ],
            ],
        );
        return;
    }
    let p = args.get_f64("p", 0.01);
    let queries = args.queries();
    let seed = args.seed();

    // Laptop-scale defaults preserving the paper's panel ordering; the
    // paper's sizes are in the panel titles it prints.
    let panels: Vec<(DatasetSpec, &str, Option<usize>)> = vec![
        (
            DatasetSpec {
                kind: DatasetKind::Gauss { d: 2 },
                n: args.scaled_n(100_000),
                seed,
            },
            "gauss d=2",
            None,
        ),
        (
            DatasetSpec {
                kind: DatasetKind::Tmy3,
                n: args.scaled_n(50_000),
                seed,
            },
            "tmy3 d=4",
            Some(4),
        ),
        (
            DatasetSpec {
                kind: DatasetKind::Tmy3,
                n: args.scaled_n(50_000),
                seed,
            },
            "tmy3 d=8",
            None,
        ),
        (
            DatasetSpec {
                kind: DatasetKind::Home,
                n: args.scaled_n(40_000),
                seed,
            },
            "home d=10",
            None,
        ),
        (
            DatasetSpec {
                kind: DatasetKind::Hep,
                n: args.scaled_n(30_000),
                seed,
            },
            "hep d=27",
            None,
        ),
        (
            DatasetSpec {
                kind: DatasetKind::Sift { d: 64 },
                n: args.scaled_n(10_000),
                seed,
            },
            "sift d=64",
            None,
        ),
        (
            DatasetSpec {
                kind: DatasetKind::Mnist { pca_dims: Some(64) },
                n: args.scaled_n(4_000),
                seed,
            },
            "mnist d=64",
            None,
        ),
        (
            DatasetSpec {
                kind: DatasetKind::Mnist {
                    pca_dims: Some(256),
                },
                n: args.scaled_n(2_000),
                seed,
            },
            "mnist d=256",
            None,
        ),
    ];

    println!("Fig. 7: end-to-end throughput (queries/s, training amortized)\n");
    for (spec, title, dim_prefix) in panels {
        let mut data = spec.generate().expect("generate"); // INVARIANT: bench tooling fails fast
        if let Some(d) = dim_prefix {
            data = data.prefix_columns(d).expect("prefix"); // INVARIANT: bench tooling fails fast
        }
        println!("\n{title}, n={}, d={}", data.rows(), data.cols());
        let mut rows = Vec::new();
        for algo in Algo::ALL {
            if !algo.supports_dim(data.cols()) {
                rows.push(vec![
                    algo.name().into(),
                    "(unsupported d)".into(),
                    String::new(),
                ]);
                continue;
            }
            let r = run_throughput(algo, &data, p, queries, seed, args.threads());
            rows.push(vec![
                algo.name().into(),
                fmt_qps(r.total_qps),
                format!("{:.0}", r.kernels_per_query),
            ]);
        }
        print_table(&["algo", "queries/s", "kernels/query"], &rows);
    }
}
