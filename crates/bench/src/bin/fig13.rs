//! Fig. 13 (Appendix B): rkde radius sweep on the 4-d tmy3 dataset —
//! throughput of the radial baseline as a function of the cutoff radius
//! (in bandwidth multiples), against tKDC's throughput line.
//!
//! Paper shape to reproduce: smaller radii speed rkde up at the cost of
//! accuracy, but even tiny radii stay orders of magnitude slower than
//! tKDC; densities become unreliable around r <= 1.2.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig13
//!         [--scale F] [--queries Q]`

use tkdc_baselines::{DensityEstimator, NaiveKde, RadialKde};
use tkdc_bench::{fmt_qps, print_table, run_throughput, time, Algo, BenchArgs};
use tkdc_common::Rng;
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;

fn main() {
    let args = BenchArgs::parse();
    let seed = args.seed();
    let n = args.scaled_n(40_000);
    let queries = args.queries();
    let data = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n,
        seed,
    }
    .generate()
    .expect("generate") // INVARIANT: bench tooling fails fast
    .prefix_columns(4)
    .expect("prefix"); // INVARIANT: bench tooling fails fast
    let mut rng = Rng::seed_from(seed ^ 0x13);
    let query_set = data.sample_rows(queries.min(n), &mut rng);

    // Reference densities (for the error column) from the exact KDE on
    // the query subsample.
    let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).expect("fit"); // INVARIANT: bench tooling fails fast
    let reference: Vec<f64> = query_set
        .iter_rows()
        .map(|q| naive.density(q).expect("density")) // INVARIANT: bench tooling fails fast
        .collect();
    let t_ref = naive
        .estimate_threshold(&query_set, 0.01)
        .expect("threshold"); // INVARIANT: bench tooling fails fast

    println!("Fig. 13: rkde throughput and error vs cutoff radius, tmy3 d=4, n={n}\n");
    let mut rows = Vec::new();
    for radius in [0.5, 1.0, 1.2, 1.5, 2.0, 3.0, 4.0, 5.0] {
        let rkde =
            RadialKde::fit_with_radius(&data, KernelKind::Gaussian, 1.0, radius).expect("fit"); // INVARIANT: bench tooling fails fast
        let (densities, t_query) = time(|| {
            query_set
                .iter_rows()
                .map(|q| rkde.density(q).expect("density")) // INVARIANT: bench tooling fails fast
                .collect::<Vec<f64>>()
        });
        let qps = query_set.rows() as f64 / t_query.as_secs_f64().max(1e-12);
        // Max relative-to-threshold error across the sample.
        let max_err = densities
            .iter()
            .zip(&reference)
            .map(|(a, b)| (b - a).abs() / t_ref)
            .fold(0.0f64, f64::max);
        rows.push(vec![
            format!("{radius:.1}"),
            fmt_qps(qps),
            format!("{max_err:.2}"),
        ]);
    }
    print_table(
        &["radius (bandwidths)", "queries/s", "max |err| / t"],
        &rows,
    );

    let tkdc = run_throughput(Algo::Tkdc, &data, 0.01, queries, seed, args.threads());
    println!(
        "\ntkdc reference: {} queries/s (guaranteed eps=0.01)",
        fmt_qps(tkdc.query_qps)
    );
}
