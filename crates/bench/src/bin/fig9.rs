//! Fig. 9: query-throughput scaling over dataset size on the 2-d gauss
//! dataset (training excluded), with the `O(n^{-1/2})` and `O(n^{-1})`
//! reference slopes.
//!
//! Paper shape to reproduce: tKDC degrades like ~n^{-1/2} (or better)
//! while simple/sklearn/rkde degrade like n^{-1}.
//!
//! Usage: `cargo run --release -p tkdc-bench --bin fig9
//!         [--scale F] [--queries Q] [--max-n N]`

use tkdc_bench::{fmt_qps, print_table, run_throughput, Algo, BenchArgs};
use tkdc_data::{DatasetKind, DatasetSpec};

fn main() {
    let args = BenchArgs::parse();
    let queries = args.queries();
    let seed = args.seed();
    let max_n = args.get_usize("max-n", args.scaled_n(400_000));

    // Geometric size sweep: 10k, 20k, 40k, ... up to max_n.
    let mut sizes = Vec::new();
    let mut n = 10_000usize.min(max_n);
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }

    println!("Fig. 9: throughput vs dataset size, gauss d=2 (query phase only)\n");
    let algos = [Algo::Tkdc, Algo::Sklearn, Algo::Simple, Algo::Rkde];
    let mut rows = Vec::new();
    for &n in &sizes {
        let data = DatasetSpec {
            kind: DatasetKind::Gauss { d: 2 },
            n,
            seed,
        }
        .generate()
        .expect("generate"); // INVARIANT: bench tooling fails fast
        let mut row = vec![n.to_string()];
        for algo in algos {
            let r = run_throughput(algo, &data, 0.01, queries, seed, args.threads());
            row.push(fmt_qps(r.query_qps));
        }
        rows.push(row);
    }
    print_table(&["n", "tkdc", "sklearn", "simple", "rkde"], &rows);

    // Fitted log-log slopes vs the theory lines.
    println!("\nfitted log-log slope of throughput vs n (theory: tkdc >= -0.5, naive = -1.0):");
    for (i, algo) in algos.iter().enumerate() {
        let pts: Vec<(f64, f64)> = sizes
            .iter()
            .zip(&rows)
            .map(|(&n, row)| {
                let v = parse_qps(&row[i + 1]);
                ((n as f64).ln(), v.ln())
            })
            .collect();
        println!("  {:8} slope = {:+.3}", algo.name(), slope(&pts));
    }
}

fn parse_qps(s: &str) -> f64 {
    if let Some(v) = s.strip_suffix('M') {
        v.parse::<f64>().unwrap() * 1e6 // INVARIANT: bench tooling fails fast
    } else if let Some(v) = s.strip_suffix('k') {
        v.parse::<f64>().unwrap() * 1e3 // INVARIANT: bench tooling fails fast
    } else {
        s.parse().unwrap() // INVARIANT: bench tooling fails fast
    }
}

/// Least-squares slope of y over x.
fn slope(pts: &[(f64, f64)]) -> f64 {
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}
