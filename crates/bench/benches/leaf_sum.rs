//! Criterion microbench: the blocked leaf fast paths — row-major
//! `Kernel::sum_block` and dimension-major `Kernel::sum_block_soa` —
//! against the per-point `eval_pair` fold they replaced in the
//! traversal's leaf evaluation, across leaf sizes, dimensionalities,
//! and both kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc_common::Rng;
use tkdc_kernel::{Kernel, KernelKind};

fn leaf_block(rows: usize, d: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from(seed);
    (0..rows * d).map(|_| rng.normal(0.0, 1.0)).collect()
}

/// Transposes a row-major leaf block into the tree's dimension-major
/// (SoA) layout: `soa[j * rows + i] = block[i * d + j]`.
fn to_soa(block: &[f64], rows: usize, d: usize) -> Vec<f64> {
    let mut soa = vec![0.0; rows * d];
    for i in 0..rows {
        for j in 0..d {
            soa[j * rows + i] = block[i * d + j];
        }
    }
    soa
}

fn bench_leaf_sum(c: &mut Criterion) {
    for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
        for d in [2usize, 8, 64] {
            let kernel = Kernel::new(kind, vec![0.8; d]).unwrap();
            let x = vec![0.1; d];
            let mut group = c.benchmark_group(format!("leaf_sum_{kind:?}_d{d}"));
            for leaf in [16usize, 64, 256] {
                let block = leaf_block(leaf, d, 7 + leaf as u64);
                let soa = to_soa(&block, leaf, d);
                group.bench_with_input(BenchmarkId::new("sum_block", leaf), &block, |b, block| {
                    b.iter(|| black_box(kernel.sum_block(&x, block)))
                });
                group.bench_with_input(BenchmarkId::new("sum_block_soa", leaf), &soa, |b, soa| {
                    b.iter(|| black_box(kernel.sum_block_soa(&x, soa, leaf)))
                });
                group.bench_with_input(BenchmarkId::new("eval_pair", leaf), &block, |b, block| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for p in block.chunks_exact(d) {
                            acc += kernel.eval_pair(&x, p);
                        }
                        black_box(acc)
                    })
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_leaf_sum);
criterion_main!(benches);
