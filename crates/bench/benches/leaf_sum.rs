//! Criterion microbench: the blocked leaf fast path (`Kernel::sum_block`)
//! against the per-point `eval_pair` fold it replaced in the traversal's
//! leaf evaluation, across leaf sizes, dimensionalities, and both kernels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc_common::Rng;
use tkdc_kernel::{Kernel, KernelKind};

fn leaf_block(rows: usize, d: usize, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from(seed);
    (0..rows * d).map(|_| rng.normal(0.0, 1.0)).collect()
}

fn bench_leaf_sum(c: &mut Criterion) {
    for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
        for d in [2usize, 8, 64] {
            let kernel = Kernel::new(kind, vec![0.8; d]).unwrap();
            let x = vec![0.1; d];
            let mut group = c.benchmark_group(format!("leaf_sum_{kind:?}_d{d}"));
            for leaf in [16usize, 64, 256] {
                let block = leaf_block(leaf, d, 7 + leaf as u64);
                group.bench_with_input(BenchmarkId::new("sum_block", leaf), &block, |b, block| {
                    b.iter(|| black_box(kernel.sum_block(&x, block)))
                });
                group.bench_with_input(BenchmarkId::new("eval_pair", leaf), &block, |b, block| {
                    b.iter(|| {
                        let mut acc = 0.0;
                        for p in block.chunks_exact(d) {
                            acc += kernel.eval_pair(&x, p);
                        }
                        black_box(acc)
                    })
                });
            }
            group.finish();
        }
    }
}

criterion_group!(benches, bench_leaf_sum);
criterion_main!(benches);
