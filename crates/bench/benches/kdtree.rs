//! Criterion microbench: k-d tree construction and bound computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_index::{KdTree, SplitRule};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree_build");
    group.sample_size(10);
    for n in [10_000usize, 50_000] {
        let data = DatasetSpec {
            kind: DatasetKind::Gauss { d: 4 },
            n,
            seed: 1,
        }
        .generate()
        .unwrap();
        for rule in [SplitRule::TrimmedMidpoint, SplitRule::Median] {
            group.bench_with_input(BenchmarkId::new(format!("{rule:?}"), n), &n, |b, _| {
                b.iter(|| black_box(KdTree::build(&data, 32, rule).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_dist_bounds(c: &mut Criterion) {
    let data = DatasetSpec {
        kind: DatasetKind::Gauss { d: 8 },
        n: 20_000,
        seed: 2,
    }
    .generate()
    .unwrap();
    let tree = KdTree::build(&data, 32, SplitRule::TrimmedMidpoint).unwrap();
    let inv_h = vec![2.0; 8];
    let q = vec![0.25; 8];
    c.bench_function("kdtree_dist_bounds_d8", |b| {
        b.iter(|| {
            // Touch a spread of nodes, as a traversal would.
            let mut acc = 0.0;
            for id in (0..tree.node_count() as u32).step_by(37) {
                let (lo, hi) = tree.scaled_sq_dist_bounds(id, black_box(&q), &inv_h);
                acc += lo + hi;
            }
            black_box(acc)
        })
    });
}

fn bench_range_query(c: &mut Criterion) {
    let data = DatasetSpec {
        kind: DatasetKind::Gauss { d: 2 },
        n: 100_000,
        seed: 3,
    }
    .generate()
    .unwrap();
    let tree = KdTree::build(&data, 32, SplitRule::Median).unwrap();
    let inv_h = vec![1.0; 2];
    c.bench_function("kdtree_range_query_r0.5_d2", |b| {
        b.iter(|| {
            let mut count = 0usize;
            tree.for_each_in_scaled_radius(black_box(&[0.0, 0.0]), &inv_h, 0.5, |_| count += 1);
            black_box(count)
        })
    });
}

criterion_group!(benches, bench_build, bench_dist_bounds, bench_range_query);
criterion_main!(benches);
