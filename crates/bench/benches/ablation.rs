//! Criterion microbench: design-choice ablations called out in DESIGN.md —
//! split-rule choice (trimmed-midpoint vs median) and kernel family
//! (Gaussian vs compact-support Epanechnikov) under the full tKDC
//! pipeline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc::{Classifier, ExecPolicy, Optimizations, Params, QueryScratch};
use tkdc_common::Rng;
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;

fn bench_split_rule(c: &mut Criterion) {
    let data = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n: 20_000,
        seed: 1,
    }
    .generate()
    .unwrap()
    .prefix_columns(4)
    .unwrap();
    let mut rng = Rng::seed_from(2);
    let queries = data.sample_rows(256, &mut rng);
    let mut group = c.benchmark_group("split_rule");
    group.sample_size(20);
    for (name, equiwidth) in [("trimmed_midpoint", true), ("median", false)] {
        let opts = Optimizations {
            equiwidth_split: equiwidth,
            ..Optimizations::all()
        };
        let clf = Classifier::fit(&data, &Params::default().with_seed(3).with_opts(opts)).unwrap();
        let mut scratch = QueryScratch::new();
        group.bench_with_input(BenchmarkId::new(name, "tmy3_d4"), name, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.row(i % queries.rows());
                i += 1;
                black_box(clf.classify_with(q, &mut scratch).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_kernel_family(c: &mut Criterion) {
    let data = DatasetSpec {
        kind: DatasetKind::Gauss { d: 2 },
        n: 30_000,
        seed: 4,
    }
    .generate()
    .unwrap();
    let mut rng = Rng::seed_from(5);
    let queries = data.sample_rows(256, &mut rng);
    let mut group = c.benchmark_group("kernel_family");
    group.sample_size(20);
    for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
        let mut params = Params::default().with_seed(6);
        params.kernel = kind;
        let clf = Classifier::fit(&data, &params).unwrap();
        let mut scratch = QueryScratch::new();
        group.bench_with_input(
            BenchmarkId::new(format!("{kind:?}"), "gauss_d2"),
            &kind,
            |b, _| {
                let mut i = 0;
                b.iter(|| {
                    let q = queries.row(i % queries.rows());
                    i += 1;
                    black_box(clf.classify_with(q, &mut scratch).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_dual_tree(c: &mut Criterion) {
    // Two query regimes: clustered (dense center — groups certify) and
    // dispersed (tail-heavy — per-query pruning already cheap).
    let data = DatasetSpec {
        kind: DatasetKind::Gauss { d: 2 },
        n: 30_000,
        seed: 7,
    }
    .generate()
    .unwrap();
    let clf = Classifier::fit(&data, &Params::default().with_seed(8)).unwrap();
    let mut clustered = tkdc_common::Matrix::with_cols(2);
    for i in 0..32 {
        for j in 0..32 {
            clustered
                .push_row(&[-0.4 + i as f64 * 0.025, -0.4 + j as f64 * 0.025])
                .unwrap();
        }
    }
    let mut rng = Rng::seed_from(9);
    let dispersed = data.sample_rows(1024, &mut rng);

    let mut group = c.benchmark_group("dual_tree_vs_serial");
    group.sample_size(20);
    for (name, queries) in [("clustered", &clustered), ("dispersed", &dispersed)] {
        group.bench_with_input(BenchmarkId::new("serial", name), name, |b, _| {
            b.iter(|| {
                black_box(
                    clf.classify_batch_with(queries, ExecPolicy::Serial)
                        .unwrap()
                        .0
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("dual", name), name, |b, _| {
            b.iter(|| {
                black_box(
                    tkdc::classify_batch_dual(&clf, queries, &tkdc::DualTreeConfig::default())
                        .unwrap()
                        .0
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_split_rule,
    bench_kernel_family,
    bench_dual_tree
);
criterion_main!(benches);
