//! Criterion microbench: binned-KDE smoothing — direct truncated stencil
//! vs FFT convolution (the Silverman-1982 method the `ks` package uses),
//! across grid resolutions.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc_baselines::{BinnedKde, ConvolutionMethod};
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;

fn bench_convolution_methods(c: &mut Criterion) {
    let data = DatasetSpec {
        kind: DatasetKind::Gauss { d: 2 },
        n: 20_000,
        seed: 1,
    }
    .generate()
    .unwrap();
    let mut group = c.benchmark_group("binned_fit_2d");
    group.sample_size(10);
    for nodes in [64usize, 151, 301] {
        for (name, method) in [
            ("direct", ConvolutionMethod::Direct),
            ("fft", ConvolutionMethod::Fft),
        ] {
            group.bench_with_input(BenchmarkId::new(name, nodes), &nodes, |b, &nodes| {
                b.iter(|| {
                    black_box(
                        BinnedKde::fit_with_method(&data, KernelKind::Gaussian, 1.0, nodes, method)
                            .unwrap()
                            .grid_nodes(),
                    )
                })
            });
        }
    }
    group.finish();
}

fn bench_binned_query(c: &mut Criterion) {
    let data = DatasetSpec {
        kind: DatasetKind::Gauss { d: 2 },
        n: 20_000,
        seed: 2,
    }
    .generate()
    .unwrap();
    let kde = BinnedKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
    use tkdc_baselines::DensityEstimator;
    c.bench_function("binned_query_2d", |b| {
        b.iter(|| black_box(kde.density(black_box(&[0.3, -0.7])).unwrap()))
    });
}

criterion_group!(benches, bench_convolution_methods, bench_binned_query);
criterion_main!(benches);
