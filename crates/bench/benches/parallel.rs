//! Criterion microbench: parallel batch classification scaling — the
//! "embarrassingly parallel queries" extension beyond the paper's
//! single-threaded evaluation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc::{Classifier, ExecPolicy, Params};
use tkdc_common::Rng;
use tkdc_data::{DatasetKind, DatasetSpec};

fn bench_parallel_batch(c: &mut Criterion) {
    let data = DatasetSpec {
        kind: DatasetKind::Tmy3,
        n: 30_000,
        seed: 1,
    }
    .generate()
    .unwrap()
    .prefix_columns(4)
    .unwrap();
    let clf = Classifier::fit(&data, &Params::default().with_seed(2)).unwrap();
    let mut rng = Rng::seed_from(3);
    let queries = data.sample_rows(4096, &mut rng);

    let mut group = c.benchmark_group("parallel_batch_4096_queries");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                black_box(
                    clf.classify_batch_with(&queries, ExecPolicy::with_threads(t))
                        .unwrap()
                        .0
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_batch);
criterion_main!(benches);
