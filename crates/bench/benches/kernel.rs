//! Criterion microbench: kernel evaluation throughput — the innermost
//! hot loop of every KDE algorithm in the workspace.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc_common::Rng;
use tkdc_kernel::{Kernel, KernelKind};

fn bench_kernel_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_eval_pair");
    for d in [2usize, 8, 27, 64] {
        let mut rng = Rng::seed_from(1);
        let h: Vec<f64> = (0..d).map(|_| rng.uniform(0.1, 2.0)).collect();
        let x: Vec<f64> = (0..d).map(|_| rng.standard_normal()).collect();
        let y: Vec<f64> = (0..d).map(|_| rng.standard_normal()).collect();
        for kind in [KernelKind::Gaussian, KernelKind::Epanechnikov] {
            let k = Kernel::new(kind, h.clone()).unwrap();
            group.bench_with_input(BenchmarkId::new(format!("{kind:?}"), d), &d, |b, _| {
                b.iter(|| black_box(k.eval_pair(black_box(&x), black_box(&y))))
            });
        }
    }
    group.finish();
}

fn bench_kernel_batch(c: &mut Criterion) {
    // A leaf-scan-sized batch: 32 points summed, as the traversal does.
    let d = 8;
    let mut rng = Rng::seed_from(2);
    let h: Vec<f64> = vec![0.5; d];
    let k = Kernel::gaussian(h).unwrap();
    let q: Vec<f64> = (0..d).map(|_| rng.standard_normal()).collect();
    let pts: Vec<f64> = (0..32 * d).map(|_| rng.standard_normal()).collect();
    c.bench_function("kernel_leaf_scan_32pts_d8", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for p in pts.chunks_exact(d) {
                acc += k.eval_pair(black_box(&q), p);
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_kernel_eval, bench_kernel_batch);
criterion_main!(benches);
