//! Criterion microbench: per-query classification cost for tKDC and the
//! naive baseline — the microbench view of the paper's throughput story.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tkdc::{Classifier, Params, QueryScratch};
use tkdc_baselines::{DensityEstimator, NaiveKde};
use tkdc_common::Rng;
use tkdc_data::{DatasetKind, DatasetSpec};
use tkdc_kernel::KernelKind;

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify_query");
    group.sample_size(20);
    for (kind, d, n) in [
        (DatasetKind::Gauss { d: 2 }, 2usize, 50_000usize),
        (DatasetKind::Tmy3, 8, 20_000),
        (DatasetKind::Hep, 27, 10_000),
    ] {
        let data = DatasetSpec { kind, n, seed: 1 }.generate().unwrap();
        let clf = Classifier::fit(&data, &Params::default().with_seed(5)).unwrap();
        let naive = NaiveKde::fit(&data, KernelKind::Gaussian, 1.0).unwrap();
        let mut rng = Rng::seed_from(9);
        let queries = data.sample_rows(256, &mut rng);
        let mut scratch = QueryScratch::new();
        let label = format!("d{d}_n{n}");

        group.bench_with_input(BenchmarkId::new("tkdc", &label), &label, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.row(i % queries.rows());
                i += 1;
                black_box(clf.classify_with(q, &mut scratch).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("naive", &label), &label, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = queries.row(i % queries.rows());
                i += 1;
                black_box(naive.density(q).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
