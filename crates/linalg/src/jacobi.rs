//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! For the small `d×d` covariance matrices in this workspace (d ≤ ~800 for
//! the mnist analog), Jacobi rotations are simple, numerically robust, and
//! produce orthonormal eigenvectors to machine precision — a good trade
//! against implementing a full symmetric QR pipeline.

use tkdc_common::error::{invalid_param, Error, Result};
use tkdc_common::Matrix;

/// Eigendecomposition result of a symmetric matrix `A = V Λ Vᵀ`.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted descending.
    pub values: Vec<f64>,
    /// Eigenvectors as rows of a `d×d` matrix, `vectors.row(k)` pairing
    /// with `values[k]`.
    pub vectors: Matrix,
}

/// Decomposes a symmetric matrix with the cyclic Jacobi method.
///
/// Sweeps rotate away each off-diagonal element in turn until the
/// Frobenius norm of the off-diagonal part falls below `1e-12` relative to
/// the matrix norm (or 100 sweeps elapse — far more than the typical
/// 6–10 needed).
///
/// # Errors
/// Fails when the matrix is not square or not symmetric (tolerance 1e-9
/// relative).
pub fn eigen_symmetric(a: &Matrix) -> Result<Eigen> {
    let d = a.rows();
    if d == 0 {
        return Err(Error::EmptyInput("eigendecomposition input"));
    }
    if a.cols() != d {
        return Err(Error::DimensionMismatch {
            expected: d,
            actual: a.cols(),
        });
    }
    let scale: f64 = a
        .as_slice()
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
        .max(1e-300);
    for i in 0..d {
        for j in (i + 1)..d {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-9 * scale {
                return Err(invalid_param(
                    "a",
                    format!("matrix not symmetric at ({i},{j})"),
                ));
            }
        }
    }

    // Work on a mutable copy; accumulate rotations into V (row-major d×d).
    let mut m: Vec<f64> = a.as_slice().to_vec();
    let mut v = vec![0.0; d * d];
    for i in 0..d {
        v[i * d + i] = 1.0;
    }

    let off_norm = |m: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..d {
            for j in (i + 1)..d {
                s += m[i * d + j] * m[i * d + j];
            }
        }
        (2.0 * s).sqrt()
    };
    let total_norm: f64 = m.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-300);

    for _sweep in 0..100 {
        if off_norm(&m) <= 1e-12 * total_norm {
            break;
        }
        for p in 0..d {
            for q in (p + 1)..d {
                let apq = m[p * d + q];
                // Rotation is the identity only for an exactly-zero
                // off-diagonal; bit-exact compare intended.
                // tkdc-lint: allow(float-eq)
                if apq == 0.0 {
                    continue;
                }
                let app = m[p * d + p];
                let aqq = m[q * d + q];
                // Stable rotation computation (Golub & Van Loan §8.5).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A ← Jᵀ A J applied to rows/cols p and q.
                for k in 0..d {
                    let akp = m[k * d + p];
                    let akq = m[k * d + q];
                    m[k * d + p] = c * akp - s * akq;
                    m[k * d + q] = s * akp + c * akq;
                }
                for k in 0..d {
                    let apk = m[p * d + k];
                    let aqk = m[q * d + k];
                    m[p * d + k] = c * apk - s * aqk;
                    m[q * d + k] = s * apk + c * aqk;
                }
                // V ← V J (accumulate as rows: row k of V is eigvec k ⇒
                // update columns of Vᵀ, i.e. rows p,q of our row-major V).
                for k in 0..d {
                    let vpk = v[p * d + k];
                    let vqk = v[q * d + k];
                    v[p * d + k] = c * vpk - s * vqk;
                    v[q * d + k] = s * vpk + c * vqk;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, usize)> = (0..d).map(|i| (m[i * d + i], i)).collect();
    // Descending by eigenvalue; total_cmp keeps the sort NaN-safe.
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));

    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Matrix::zeros(d, d);
    for (k, &(_, src)) in pairs.iter().enumerate() {
        for j in 0..d {
            vectors.set(k, j, v[src * d + j]);
        }
    }
    Ok(Eigen { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 1.0, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
        // Eigenvector for λ=3 is ±(1,1)/√2.
        let v0 = e.vectors.row(0);
        assert_close(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10);
        assert_close(v0[0], v0[1], 1e-10);
    }

    fn random_symmetric(d: usize, rng: &mut Rng) -> Matrix {
        let mut a = Matrix::zeros(d, d);
        for i in 0..d {
            for j in i..d {
                let v = rng.normal(0.0, 1.0);
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        a
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let mut rng = Rng::seed_from(99);
        for d in [1usize, 2, 5, 12] {
            let a = random_symmetric(d, &mut rng);
            let e = eigen_symmetric(&a).unwrap();
            // Vᵀ V = I (rows are eigenvectors).
            for i in 0..d {
                for j in 0..d {
                    let dot: f64 = (0..d)
                        .map(|k| e.vectors.get(i, k) * e.vectors.get(j, k))
                        .sum();
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert_close(dot, expected, 1e-9);
                }
            }
            // A v_k = λ_k v_k.
            for k in 0..d {
                for i in 0..d {
                    let av: f64 = (0..d).map(|j| a.get(i, j) * e.vectors.get(k, j)).sum();
                    assert_close(av, e.values[k] * e.vectors.get(k, i), 1e-8);
                }
            }
            // Trace preserved.
            let trace: f64 = (0..d).map(|i| a.get(i, i)).sum();
            let sum: f64 = e.values.iter().sum();
            assert_close(trace, sum, 1e-9);
        }
    }

    #[test]
    fn values_sorted_descending() {
        let mut rng = Rng::seed_from(7);
        let a = random_symmetric(8, &mut rng);
        let e = eigen_symmetric(&a).unwrap();
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn rejects_non_symmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(eigen_symmetric(&a).is_err());
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![2.0, 1.0, 0.0]]).unwrap();
        assert!(eigen_symmetric(&a).is_err());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[vec![-4.0]]).unwrap();
        let e = eigen_symmetric(&a).unwrap();
        assert_close(e.values[0], -4.0, 1e-15);
        assert_close(e.vectors.get(0, 0).abs(), 1.0, 1e-15);
    }
}
