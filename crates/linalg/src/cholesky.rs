//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the synthetic data generators: sampling a correlated Gaussian
//! `N(μ, Σ)` reduces to `μ + L z` with `Σ = L Lᵀ` and `z` standard normal.

use tkdc_common::error::{Error, Result};
use tkdc_common::Matrix;

/// Computes the lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// # Errors
/// Fails when the matrix is not square or not (numerically) positive
/// definite.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let d = a.rows();
    if d == 0 {
        return Err(Error::EmptyInput("cholesky input"));
    }
    if a.cols() != d {
        return Err(Error::DimensionMismatch {
            expected: d,
            actual: a.cols(),
        });
    }
    let mut l = Matrix::zeros(d, d);
    for i in 0..d {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(Error::Numeric(format!(
                        "matrix not positive definite at pivot {i} (value {sum})"
                    )));
                }
                l.set(i, i, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    Ok(l)
}

/// Applies `y = L x` for a lower-triangular `L` (in-place friendly helper
/// for Gaussian sampling).
pub fn lower_tri_mul(l: &Matrix, x: &[f64]) -> Vec<f64> {
    let d = l.rows();
    assert_eq!(x.len(), d, "dimension mismatch in lower_tri_mul");
    let mut y = vec![0.0; d];
    for i in 0..d {
        let row = l.row(i);
        let mut acc = 0.0;
        for j in 0..=i {
            acc += row[j] * x[j];
        }
        y[i] = acc;
    }
    y
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn identity_factors_to_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let l = cholesky(&a).unwrap();
        assert_eq!(l, a);
    }

    #[test]
    fn known_factorization() {
        // A = [[4,2],[2,3]] ⇒ L = [[2,0],[1,√2]]
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let l = cholesky(&a).unwrap();
        assert_close(l.get(0, 0), 2.0, 1e-12);
        assert_close(l.get(1, 0), 1.0, 1e-12);
        assert_close(l.get(1, 1), 2f64.sqrt(), 1e-12);
        assert_eq!(l.get(0, 1), 0.0);
    }

    #[test]
    fn reconstructs_input() {
        let a = Matrix::from_rows(&[
            vec![6.0, 3.0, 4.0],
            vec![3.0, 6.0, 5.0],
            vec![4.0, 5.0, 10.0],
        ])
        .unwrap();
        let l = cholesky(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let v: f64 = (0..3).map(|k| l.get(i, k) * l.get(j, k)).sum();
                assert_close(v, a.get(i, j), 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]).unwrap();
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn lower_tri_mul_matches_dense() {
        let l = Matrix::from_rows(&[vec![2.0, 0.0], vec![1.0, 3.0]]).unwrap();
        let y = lower_tri_mul(&l, &[1.0, 2.0]);
        assert_eq!(y, vec![2.0, 7.0]);
    }
}
