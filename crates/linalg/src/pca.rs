//! Principal component analysis on top of the Jacobi eigendecomposition.
//!
//! The paper reduces the 784-dimensional mnist dataset to 64/256
//! dimensions via PCA before running tKDC (Fig. 7 and Fig. 14); this
//! module supplies that reduction without external dependencies.

use crate::jacobi::eigen_symmetric;
use tkdc_common::error::{invalid_param, Result};
use tkdc_common::{stats, Matrix};

/// A fitted PCA model: column means plus the leading principal axes.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f64>,
    /// `k×d` matrix whose rows are principal axes (descending variance).
    components: Matrix,
    /// Variance explained by each retained component.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a `k`-component PCA to the dataset.
    ///
    /// # Errors
    /// Fails when `k` is zero or exceeds the data dimensionality, or when
    /// the dataset has fewer than two rows.
    pub fn fit(data: &Matrix, k: usize) -> Result<Self> {
        let d = data.cols();
        if k == 0 || k > d {
            return Err(invalid_param(
                "k",
                format!("components must be in 1..={d}, got {k}"),
            ));
        }
        let cov = stats::covariance(data)?;
        let eig = eigen_symmetric(&cov)?;
        let mut components = Matrix::zeros(k, d);
        for i in 0..k {
            components.row_mut(i).copy_from_slice(eig.vectors.row(i));
        }
        Ok(Self {
            mean: stats::column_means(data),
            components,
            explained_variance: eig.values[..k].to_vec(),
        })
    }

    /// Fits a truncated `k`-component PCA via orthogonal (block power)
    /// iteration on the covariance matrix — `O(d²k)` per iteration
    /// instead of the full Jacobi's `O(d³)` sweeps, which matters for the
    /// 784-dimensional mnist analog.
    ///
    /// `iters` controls convergence (20–50 is ample for the fast-decaying
    /// spectra PCA targets); `seed` initializes the random subspace.
    ///
    /// # Errors
    /// Same domain checks as [`Pca::fit`].
    pub fn fit_truncated(data: &Matrix, k: usize, iters: usize, seed: u64) -> Result<Self> {
        let d = data.cols();
        if k == 0 || k > d {
            return Err(invalid_param(
                "k",
                format!("components must be in 1..={d}, got {k}"),
            ));
        }
        let cov = stats::covariance(data)?;
        // Random start, orthonormalized; Q is k×d row-major (rows = basis).
        let mut rng = tkdc_common::Rng::seed_from(seed);
        let mut q = Matrix::zeros(k, d);
        for i in 0..k {
            for j in 0..d {
                q.set(i, j, rng.standard_normal());
            }
        }
        orthonormalize_rows(&mut q);
        let mut z = Matrix::zeros(k, d);
        for _ in 0..iters.max(1) {
            // Z = Q · Cov (rows are basis vectors; Cov is symmetric).
            for i in 0..k {
                let qi = q.row(i);
                let zi = z.row_mut(i);
                for (c, out) in zi.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (j, &qv) in qi.iter().enumerate() {
                        acc += qv * cov.get(j, c);
                    }
                    *out = acc;
                }
            }
            std::mem::swap(&mut q, &mut z);
            orthonormalize_rows(&mut q);
        }
        // Rayleigh quotients give the eigenvalue estimates; sort rows by
        // decreasing variance.
        let mut pairs: Vec<(f64, usize)> = (0..k)
            .map(|i| {
                let qi = q.row(i);
                let mut acc = 0.0;
                for a in 0..d {
                    let mut cv = 0.0;
                    for b in 0..d {
                        cv += cov.get(a, b) * qi[b];
                    }
                    acc += qi[a] * cv;
                }
                (acc, i)
            })
            .collect();
        // Descending by explained variance; total_cmp keeps it NaN-safe.
        pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        for (out_row, &(val, src)) in pairs.iter().enumerate() {
            components.row_mut(out_row).copy_from_slice(q.row(src));
            explained.push(val);
        }
        Ok(Self {
            mean: stats::column_means(data),
            components,
            explained_variance: explained,
        })
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Input dimensionality the model was fitted on.
    pub fn input_dim(&self) -> usize {
        self.components.cols()
    }

    /// Variance captured by each retained component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Principal axes as rows of a `k×d` matrix.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Projects a single point into the component space.
    pub fn transform_point(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.input_dim() {
            return Err(tkdc_common::Error::DimensionMismatch {
                expected: self.input_dim(),
                actual: x.len(),
            });
        }
        let k = self.n_components();
        let mut out = vec![0.0; k];
        for (i, o) in out.iter_mut().enumerate() {
            let axis = self.components.row(i);
            let mut acc = 0.0;
            for j in 0..x.len() {
                acc += (x[j] - self.mean[j]) * axis[j];
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Projects an entire dataset, producing an `n×k` matrix.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::with_cols(self.n_components());
        for row in data.iter_rows() {
            out.push_row(&self.transform_point(row)?)?;
        }
        Ok(out)
    }

    /// Maps a point in component space back to the original space
    /// (least-squares reconstruction).
    pub fn inverse_transform_point(&self, z: &[f64]) -> Result<Vec<f64>> {
        if z.len() != self.n_components() {
            return Err(tkdc_common::Error::DimensionMismatch {
                expected: self.n_components(),
                actual: z.len(),
            });
        }
        let d = self.input_dim();
        let mut out = self.mean.clone();
        for (i, &zi) in z.iter().enumerate() {
            let axis = self.components.row(i);
            for j in 0..d {
                out[j] += zi * axis[j];
            }
        }
        Ok(out)
    }
}

/// Modified Gram–Schmidt over the rows of `q`, in place. Rows that
/// collapse to (near-)zero norm are re-seeded deterministically from the
/// row index to keep the basis full-rank.
fn orthonormalize_rows(q: &mut Matrix) {
    let (k, d) = (q.rows(), q.cols());
    for i in 0..k {
        // Subtract projections onto previous rows.
        for j in 0..i {
            let mut dot = 0.0;
            for c in 0..d {
                dot += q.get(i, c) * q.get(j, c);
            }
            for c in 0..d {
                let v = q.get(i, c) - dot * q.get(j, c);
                q.set(i, c, v);
            }
        }
        let norm: f64 = q.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for c in 0..d {
                q.set(i, c, q.get(i, c) / norm);
            }
        } else {
            // Degenerate direction: replace with a coordinate axis not yet
            // spanned (deterministic fallback).
            for c in 0..d {
                q.set(i, c, if c == i % d { 1.0 } else { 0.0 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkdc_common::Rng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    /// Data concentrated along the (1,1)/√2 axis in 2-d.
    fn correlated_data(n: usize, rng: &mut Rng) -> Matrix {
        let mut m = Matrix::with_cols(2);
        for _ in 0..n {
            let main = rng.normal(0.0, 3.0);
            let off = rng.normal(0.0, 0.1);
            m.push_row(&[main + off, main - off]).unwrap();
        }
        m
    }

    #[test]
    fn finds_dominant_axis() {
        let mut rng = Rng::seed_from(13);
        let data = correlated_data(2000, &mut rng);
        let pca = Pca::fit(&data, 2).unwrap();
        let axis = pca.components().row(0);
        // Dominant axis is ±(1,1)/√2.
        assert_close(axis[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 0.02);
        assert_close(axis[0], axis[1], 0.05);
        // Explained variance roughly 2·3² = 18 along the main axis.
        assert!(pca.explained_variance()[0] > 10.0);
        assert!(pca.explained_variance()[1] < 0.5);
    }

    #[test]
    fn transform_decorrelates() {
        let mut rng = Rng::seed_from(29);
        let data = correlated_data(2000, &mut rng);
        let pca = Pca::fit(&data, 2).unwrap();
        let z = pca.transform(&data).unwrap();
        let cov = stats::covariance(&z).unwrap();
        // Off-diagonal should vanish; diagonal matches explained variance.
        assert_close(cov.get(0, 1), 0.0, 0.05);
        assert_close(cov.get(0, 0), pca.explained_variance()[0], 0.5);
    }

    #[test]
    fn round_trip_reconstruction_full_rank() {
        let mut rng = Rng::seed_from(31);
        let data = correlated_data(100, &mut rng);
        let pca = Pca::fit(&data, 2).unwrap();
        for i in 0..10 {
            let z = pca.transform_point(data.row(i)).unwrap();
            let back = pca.inverse_transform_point(&z).unwrap();
            for (a, b) in back.iter().zip(data.row(i)) {
                assert_close(*a, *b, 1e-9);
            }
        }
    }

    #[test]
    fn truncated_reconstruction_error_small_on_lowrank_data() {
        let mut rng = Rng::seed_from(37);
        let data = correlated_data(500, &mut rng);
        let pca = Pca::fit(&data, 1).unwrap();
        let mut sq_err = 0.0;
        let mut sq_norm = 0.0;
        for i in 0..data.rows() {
            let z = pca.transform_point(data.row(i)).unwrap();
            let back = pca.inverse_transform_point(&z).unwrap();
            for (a, b) in back.iter().zip(data.row(i)) {
                sq_err += (a - b) * (a - b);
                sq_norm += b * b;
            }
        }
        assert!(
            sq_err / sq_norm < 0.01,
            "relative error {}",
            sq_err / sq_norm
        );
    }

    #[test]
    fn truncated_matches_exact_on_small_data() {
        let mut rng = Rng::seed_from(43);
        let data = correlated_data(1000, &mut rng);
        let exact = Pca::fit(&data, 2).unwrap();
        let trunc = Pca::fit_truncated(&data, 2, 40, 7).unwrap();
        for k in 0..2 {
            assert_close(
                trunc.explained_variance()[k],
                exact.explained_variance()[k],
                0.05 * exact.explained_variance()[0],
            );
            // Axes match up to sign.
            let dot: f64 = exact
                .components()
                .row(k)
                .iter()
                .zip(trunc.components().row(k))
                .map(|(a, b)| a * b)
                .sum();
            assert_close(dot.abs(), 1.0, 1e-3);
        }
    }

    #[test]
    fn truncated_components_orthonormal() {
        let mut rng = Rng::seed_from(53);
        // 10-d data with structure along a few directions.
        let mut m = Matrix::with_cols(10);
        for _ in 0..500 {
            let a = rng.normal(0.0, 3.0);
            let b = rng.normal(0.0, 2.0);
            let mut row = [0.0; 10];
            for (i, v) in row.iter_mut().enumerate() {
                *v = a * (i as f64 * 0.3).sin() + b * (i as f64 * 0.7).cos() + rng.normal(0.0, 0.1);
            }
            m.push_row(&row).unwrap();
        }
        let pca = Pca::fit_truncated(&m, 4, 30, 11).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = pca
                    .components()
                    .row(i)
                    .iter()
                    .zip(pca.components().row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert_close(dot, expect, 1e-8);
            }
        }
        // Explained variance sorted descending.
        for w in pca.explained_variance().windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn truncated_rejects_bad_k() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]]).unwrap();
        assert!(Pca::fit_truncated(&m, 0, 10, 1).is_err());
        assert!(Pca::fit_truncated(&m, 3, 10, 1).is_err());
    }

    #[test]
    fn rejects_bad_k() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]]).unwrap();
        assert!(Pca::fit(&m, 0).is_err());
        assert!(Pca::fit(&m, 3).is_err());
        assert!(Pca::fit(&m, 2).is_ok());
    }

    #[test]
    fn dimension_checks() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]]).unwrap();
        let pca = Pca::fit(&m, 1).unwrap();
        assert!(pca.transform_point(&[1.0, 2.0, 3.0]).is_err());
        assert!(pca.inverse_transform_point(&[1.0, 2.0]).is_err());
        assert_eq!(pca.n_components(), 1);
        assert_eq!(pca.input_dim(), 2);
    }
}
