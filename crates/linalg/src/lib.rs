#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # tkdc-linalg
//!
//! Small dense linear algebra built from scratch for the tKDC reproduction:
//!
//! * [`jacobi::eigen_symmetric`] — eigendecomposition of symmetric matrices
//!   via cyclic Jacobi rotations (robust, quadratically convergent, ideal
//!   for the modest `d×d` covariance matrices that appear here).
//! * [`pca::Pca`] — principal component analysis used to PCA-reduce the
//!   mnist-style dataset exactly as the paper does before running tKDC in
//!   64/256 dimensions.
//! * [`cholesky::cholesky`] — Cholesky factorization used by the data
//!   generators to sample correlated Gaussians.

pub mod cholesky;
pub mod jacobi;
pub mod pca;

pub use cholesky::cholesky;
pub use jacobi::eigen_symmetric;
pub use pca::Pca;
