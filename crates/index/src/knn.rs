//! k-nearest-neighbor search over the k-d tree.
//!
//! Best-first branch-and-bound: maintain a max-heap of the k best
//! candidates and prune any subtree whose bounding box lies farther than
//! the current k-th distance. Distances are bandwidth-scaled like every
//! other query in the workspace (pass unit `inv_h` for plain Euclidean).
//!
//! This substrate powers the related-work comparators of §5 of the tKDC
//! paper (kNN outlier scores, LOF, DBSCAN) implemented in
//! `tkdc-alternatives`.

use crate::bbox::min_scaled_sq_dist;
use crate::kdtree::KdTree;
use std::collections::BinaryHeap;

/// A neighbor hit: scaled squared distance plus the row offset in the
/// tree's reordered point order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Scaled squared distance to the query.
    pub sq_dist: f64,
    /// Row index into the tree's reordered point order (see
    /// [`KdTree::node_range`]; `tree.node_points(tree.root())` yields
    /// rows in this order).
    pub row: usize,
}

impl Eq for Neighbor {}
impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by distance: the worst current candidate sits on top.
        self.sq_dist
            .total_cmp(&other.sq_dist)
            .then_with(|| self.row.cmp(&other.row))
    }
}

/// Finds the `k` nearest neighbors of `x` in scaled space.
///
/// Returns hits sorted by ascending distance; fewer than `k` when the
/// tree holds fewer points. `skip_identical` excludes zero-distance hits
/// (used when querying a tree with its own training points, where each
/// point would otherwise be its own nearest neighbor — note this skips
/// *all* coincident duplicates, matching the "distance to the k-th other
/// point" semantics of kNN outlier detection).
pub fn k_nearest(
    tree: &KdTree,
    x: &[f64],
    inv_h: &[f64],
    k: usize,
    skip_identical: bool,
) -> Vec<Neighbor> {
    assert_eq!(x.len(), tree.dim(), "query dimensionality mismatch");
    if k == 0 {
        return Vec::new();
    }
    let mut best: BinaryHeap<Neighbor> = BinaryHeap::with_capacity(k + 1);
    // Depth-first, nearer child first, pruning on the current k-th best.
    fn visit(
        tree: &KdTree,
        node: u32,
        x: &[f64],
        inv_h: &[f64],
        k: usize,
        skip_identical: bool,
        best: &mut BinaryHeap<Neighbor>,
    ) {
        let lo = tree.box_lo(node);
        let hi = tree.box_hi(node);
        let box_dist = min_scaled_sq_dist(x, lo, hi, inv_h);
        // INVARIANT: len == k > 0
        if best.len() == k && box_dist >= best.peek().expect("non-empty").sq_dist {
            return;
        }
        match tree.children(node) {
            None => {
                let (start, _) = tree.node_range(node);
                for (offset, p) in tree.node_points(node).enumerate() {
                    let mut acc = 0.0;
                    for i in 0..x.len() {
                        let z = (x[i] - p[i]) * inv_h[i];
                        acc += z * z;
                    }
                    // acc is a sum of squares, so `<= 0.0` is exactly the
                    // zero-distance test without a bit-exact float compare.
                    if skip_identical && acc <= 0.0 {
                        continue;
                    }
                    if best.len() < k {
                        best.push(Neighbor {
                            sq_dist: acc,
                            row: start + offset,
                        });
                        // INVARIANT: len == k > 0
                    } else if acc < best.peek().expect("non-empty").sq_dist {
                        best.pop();
                        best.push(Neighbor {
                            sq_dist: acc,
                            row: start + offset,
                        });
                    }
                }
            }
            Some((l, r)) => {
                // Visit the closer child first so pruning bites sooner.
                let dl = min_scaled_sq_dist(x, tree.box_lo(l), tree.box_hi(l), inv_h);
                let dr = min_scaled_sq_dist(x, tree.box_lo(r), tree.box_hi(r), inv_h);
                let (first, second) = if dl <= dr { (l, r) } else { (r, l) };
                visit(tree, first, x, inv_h, k, skip_identical, best);
                visit(tree, second, x, inv_h, k, skip_identical, best);
            }
        }
    }
    visit(tree, tree.root(), x, inv_h, k, skip_identical, &mut best);
    let mut out = best.into_vec();
    out.sort_by(|a, b| a.sq_dist.total_cmp(&b.sq_dist).then(a.row.cmp(&b.row)));
    out
}

#[cfg(test)]
#[allow(clippy::float_cmp)] // exact-value asserts are deliberate in tests
mod tests {
    use super::*;
    use crate::kdtree::SplitRule;
    use tkdc_common::{Matrix, Rng};

    fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Rng::seed_from(seed);
        let mut m = Matrix::with_cols(d);
        let mut row = vec![0.0; d];
        for _ in 0..n {
            for v in &mut row {
                *v = rng.normal(0.0, 2.0);
            }
            m.push_row(&row).unwrap();
        }
        m
    }

    /// Brute-force reference for validation.
    fn brute_knn(tree: &KdTree, x: &[f64], inv_h: &[f64], k: usize, skip: bool) -> Vec<f64> {
        let mut dists: Vec<f64> = tree
            .node_points(tree.root())
            .map(|p| {
                let mut acc = 0.0;
                for i in 0..x.len() {
                    let z = (x[i] - p[i]) * inv_h[i];
                    acc += z * z;
                }
                acc
            })
            .filter(|&d| !(skip && d == 0.0))
            .collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        dists.truncate(k);
        dists
    }

    #[test]
    fn matches_brute_force() {
        let data = random_matrix(500, 3, 1);
        let tree = KdTree::build(&data, 8, SplitRule::TrimmedMidpoint).unwrap();
        let inv_h = [1.0, 0.5, 2.0];
        let mut rng = Rng::seed_from(2);
        for _ in 0..20 {
            let q = [
                rng.normal(0.0, 2.0),
                rng.normal(0.0, 2.0),
                rng.normal(0.0, 2.0),
            ];
            for k in [1usize, 5, 17] {
                let fast: Vec<f64> = k_nearest(&tree, &q, &inv_h, k, false)
                    .iter()
                    .map(|n| n.sq_dist)
                    .collect();
                let slow = brute_knn(&tree, &q, &inv_h, k, false);
                assert_eq!(fast.len(), slow.len());
                for (a, b) in fast.iter().zip(&slow) {
                    assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn neighbors_reference_correct_rows() {
        let data = random_matrix(200, 2, 3);
        let tree = KdTree::build(&data, 8, SplitRule::Median).unwrap();
        let inv_h = [1.0, 1.0];
        let q = [0.3, -0.7];
        let hits = k_nearest(&tree, &q, &inv_h, 5, false);
        let points: Vec<&[f64]> = tree.node_points(tree.root()).collect();
        for h in &hits {
            let p = points[h.row];
            let dx = q[0] - p[0];
            let dy = q[1] - p[1];
            assert!((h.sq_dist - (dx * dx + dy * dy)).abs() < 1e-12);
        }
    }

    #[test]
    fn skip_identical_excludes_self() {
        let data = random_matrix(100, 2, 5);
        let tree = KdTree::build(&data, 8, SplitRule::Median).unwrap();
        let inv_h = [1.0, 1.0];
        let q: Vec<f64> = tree.node_points(tree.root()).next().unwrap().to_vec();
        let with = k_nearest(&tree, &q, &inv_h, 3, false);
        let without = k_nearest(&tree, &q, &inv_h, 3, true);
        assert_eq!(with[0].sq_dist, 0.0);
        assert!(without[0].sq_dist > 0.0);
    }

    #[test]
    fn fewer_points_than_k() {
        let data = random_matrix(3, 2, 7);
        let tree = KdTree::build(&data, 8, SplitRule::Median).unwrap();
        let hits = k_nearest(&tree, &[0.0, 0.0], &[1.0, 1.0], 10, false);
        assert_eq!(hits.len(), 3);
        assert!(hits.windows(2).all(|w| w[0].sq_dist <= w[1].sq_dist));
    }

    #[test]
    fn k_zero_is_empty() {
        let data = random_matrix(10, 2, 9);
        let tree = KdTree::build(&data, 8, SplitRule::Median).unwrap();
        assert!(k_nearest(&tree, &[0.0, 0.0], &[1.0, 1.0], 0, false).is_empty());
    }
}
